"""Probabilistic Roadmap (PRM) planner.

The algorithm family behind the prior motion planning accelerators the
paper compares against (Murray et al., Lian et al.): sample a roadmap of
collision-free configurations once, connect k-nearest neighbors with
collision-checked edges, then answer queries with graph search.  Including
it lets the repository demonstrate the paper's scalability argument — the
roadmap's edge set (precomputed swept volumes in the accelerators) grows
quickly with environment/task complexity, which is what pushed those
designs to tens of MB of on-chip memory.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.planning.cspace import cspace_distance
from repro.planning.queries import CDQuery, drive_queries
from repro.planning.recorder import CDTraceRecorder


class PRMPlanner:
    """k-nearest-neighbor PRM with lazy start/goal attachment."""

    def __init__(
        self,
        recorder: CDTraceRecorder,
        n_samples: int = 200,
        k_neighbors: int = 8,
    ):
        if n_samples < 2:
            raise ValueError(f"n_samples must be >= 2, got {n_samples}")
        if k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
        self.recorder = recorder
        self.n_samples = n_samples
        self.k_neighbors = k_neighbors
        self._nodes: List[np.ndarray] = []
        self._adjacency: Dict[int, List[Tuple[int, float]]] = {}

    # ------------------------------------------------------------------
    # Roadmap construction
    # ------------------------------------------------------------------

    @property
    def roadmap_built(self) -> bool:
        return bool(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._adjacency.values()) // 2

    def build_roadmap(self, rng: np.random.Generator) -> None:
        """Sample free configurations and connect k-nearest neighbors.

        Each node's candidate edges are issued as *one* COMPLETE phase (a
        per-node edge batch): the planner needs every edge's verdict, so
        the phase is batch-shaped — a single vectorized dispatch under
        :class:`~repro.planning.engine.BatchedEngine`, and an inter-motion
        parallel work unit for SAS — while the recorded workload stream
        stays equivalent to the per-edge checks the PRM accelerators would
        precompute.
        """
        drive_queries(self.build_roadmap_steps(rng), self.recorder)

    def build_roadmap_steps(self, rng: np.random.Generator):
        """Generator form of :meth:`build_roadmap` (yields :class:`CDQuery`)."""
        checker = self.recorder.checker
        self._nodes = []
        self._adjacency = {}
        attempts = 0
        while len(self._nodes) < self.n_samples and attempts < 50 * self.n_samples:
            attempts += 1
            q = checker.robot.random_configuration(rng)
            if not checker.check_pose(q):
                self._nodes.append(q)
        for index in range(len(self._nodes)):
            self._adjacency[index] = []
        for index, q in enumerate(self._nodes):
            candidates = [
                neighbor
                for neighbor in self._nearest(q, self.k_neighbors + 1)
                if neighbor != index
                and not any(n == neighbor for n, _ in self._adjacency[index])
            ]
            flags = yield CDQuery.complete(
                [(q, self._nodes[neighbor]) for neighbor in candidates],
                "prm_edge",
            )
            for neighbor, collided in zip(candidates, flags):
                if collided:
                    continue
                weight = cspace_distance(q, self._nodes[neighbor])
                self._adjacency[index].append((neighbor, weight))
                self._adjacency[neighbor].append((index, weight))

    def _nearest(self, q, k: int) -> List[int]:
        stacked = np.asarray(self._nodes)
        deltas = stacked - np.asarray(q, dtype=float)
        distances = np.einsum("ij,ij->i", deltas, deltas)
        return list(np.argsort(distances)[:k])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def plan(
        self, q_start, q_goal, rng: np.random.Generator
    ) -> Optional[List[np.ndarray]]:
        """Answer a query against the roadmap (building it on first use)."""
        return drive_queries(self.plan_steps(q_start, q_goal, rng), self.recorder)

    def plan_steps(self, q_start, q_goal, rng: np.random.Generator):
        """Generator form of :meth:`plan` (yields :class:`CDQuery` steps)."""
        if not self.roadmap_built:
            yield from self.build_roadmap_steps(rng)
        if not self._nodes:
            return None
        start_links = yield from self._attach(q_start)
        goal_links = yield from self._attach(q_goal)
        if not start_links or not goal_links:
            return None
        start_costs = dict(start_links)
        goal_costs = dict(goal_links)
        node_path = self._shortest_path(start_costs, goal_costs)
        if node_path is None:
            return None
        return (
            [np.asarray(q_start, dtype=float)]
            + [self._nodes[i] for i in node_path]
            + [np.asarray(q_goal, dtype=float)]
        )

    def _attach(self, q):
        """Connect a query configuration to its reachable nearest nodes.

        All k candidate attachments form one COMPLETE phase (the same
        batch shape as roadmap edge construction).
        """
        candidates = self._nearest(q, self.k_neighbors)
        flags = yield CDQuery.complete(
            [(q, self._nodes[index]) for index in candidates], "prm_attach"
        )
        return [
            (index, cspace_distance(q, self._nodes[index]))
            for index, collided in zip(candidates, flags)
            if not collided
        ]

    def _shortest_path(self, start_costs, goal_costs) -> Optional[List[int]]:
        """Dijkstra from the start attachments to any goal attachment."""
        best: Dict[int, float] = {}
        parent: Dict[int, Optional[int]] = {}
        heap = []
        for node, cost in start_costs.items():
            heapq.heappush(heap, (cost, node))
            best[node] = cost
            parent[node] = None
        while heap:
            cost, node = heapq.heappop(heap)
            if cost > best.get(node, float("inf")):
                continue
            if node in goal_costs:
                path = []
                cursor: Optional[int] = node
                while cursor is not None:
                    path.append(cursor)
                    cursor = parent[cursor]
                return list(reversed(path))
            for neighbor, weight in self._adjacency.get(node, []):
                candidate = cost + weight
                if candidate < best.get(neighbor, float("inf")):
                    best[neighbor] = candidate
                    parent[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        return None
