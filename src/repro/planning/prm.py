"""Probabilistic Roadmap (PRM) planner.

The algorithm family behind the prior motion planning accelerators the
paper compares against (Murray et al., Lian et al.): sample a roadmap of
collision-free configurations once, connect k-nearest neighbors with
collision-checked edges, then answer queries with graph search.  Including
it lets the repository demonstrate the paper's scalability argument — the
roadmap's edge set (precomputed swept volumes in the accelerators) grows
quickly with environment/task complexity, which is what pushed those
designs to tens of MB of on-chip memory.

The roadmap is stored SoA-style: nodes live in a
:class:`~repro.planning.nodestore.NodeStore` (vectorized k-NN over the
live prefix), free configurations are sampled in stream-exact blocks
through one ``check_poses`` dispatch per block, and the edge set is
assembled as chronological half-edge index arrays finalized into a
CSR-style adjacency (``indptr``/``neighbors``/``weights``) — Dijkstra
iterates array slices instead of dict-of-list lookups.  Every transform
preserves the classical loop's rng stream, check order, and tie-breaking,
so fixed-seed roadmaps, phases, and paths are bit-identical to the
pre-SoA implementation (pinned by the engine-differential golden leg).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.planning.cspace import rowwise_distances
from repro.planning.nodestore import NodeStore, sample_configuration_block
from repro.planning.queries import CDQuery, drive_queries
from repro.planning.recorder import CDTraceRecorder


class PRMPlanner:
    """k-nearest-neighbor PRM with lazy start/goal attachment."""

    def __init__(
        self,
        recorder: CDTraceRecorder,
        n_samples: int = 200,
        k_neighbors: int = 8,
    ):
        if n_samples < 2:
            raise ValueError(f"n_samples must be >= 2, got {n_samples}")
        if k_neighbors < 1:
            raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
        self.recorder = recorder
        self.n_samples = n_samples
        self.k_neighbors = k_neighbors
        self._store: Optional[NodeStore] = None
        # Chronological half-edge arrays: edge acceptance appends the
        # (src -> dst) and (dst -> src) halves back to back, preserving the
        # per-node neighbor order the dict-of-lists layout produced.
        self._edge_src: List[int] = []
        self._edge_dst: List[int] = []
        self._edge_weight: List[float] = []
        self._neighbor_sets: List[Set[int]] = []
        # CSR adjacency, finalized after the build.
        self._csr_indptr: Optional[np.ndarray] = None
        self._csr_neighbors: Optional[np.ndarray] = None
        self._csr_weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Roadmap construction
    # ------------------------------------------------------------------

    @property
    def roadmap_built(self) -> bool:
        return self._store is not None and len(self._store) > 0

    @property
    def num_nodes(self) -> int:
        return 0 if self._store is None else len(self._store)

    @property
    def num_edges(self) -> int:
        return len(self._edge_src) // 2

    @property
    def _nodes(self) -> List[np.ndarray]:
        """Node configurations as a list of row views (legacy shape)."""
        if self._store is None:
            return []
        configurations = self._store.configurations
        return [configurations[i] for i in range(len(configurations))]

    @property
    def _adjacency(self) -> Dict[int, List[Tuple[int, float]]]:
        """The roadmap as the legacy dict-of-lists adjacency.

        Rebuilt from the chronological half-edges, so per-node neighbor
        order matches the pre-CSR implementation exactly.
        """
        adjacency: Dict[int, List[Tuple[int, float]]] = {
            index: [] for index in range(self.num_nodes)
        }
        for src, dst, weight in zip(
            self._edge_src, self._edge_dst, self._edge_weight
        ):
            adjacency[src].append((dst, weight))
        return adjacency

    def build_roadmap(self, rng: np.random.Generator) -> None:
        """Sample free configurations and connect k-nearest neighbors.

        Each node's candidate edges are issued as *one* COMPLETE phase (a
        per-node edge batch): the planner needs every edge's verdict, so
        the phase is batch-shaped — a single vectorized dispatch under
        :class:`~repro.planning.engine.BatchedEngine`, and an inter-motion
        parallel work unit for SAS — while the recorded workload stream
        stays equivalent to the per-edge checks the PRM accelerators would
        precompute.
        """
        drive_queries(self.build_roadmap_steps(rng), self.recorder)

    def build_roadmap_steps(self, rng: np.random.Generator):
        """Generator form of :meth:`build_roadmap` (yields :class:`CDQuery`)."""
        checker = self.recorder.checker
        robot = checker.robot
        store = NodeStore(
            robot.dof,
            capacity=max(2, self.n_samples),
            scratch=getattr(checker, "shared_scratch", None),
        )
        self._store = store
        self._edge_src = []
        self._edge_dst = []
        self._edge_weight = []
        self._csr_indptr = self._csr_neighbors = self._csr_weights = None

        # Block sampling, stream-exact: each block draws
        # min(nodes still needed, attempts left) samples — the classical
        # one-at-a-time loop could not have terminated inside that many
        # draws (it stops only once the node target is reached, and a
        # block never contains more frees than nodes needed), so the rng
        # stream, the check sequence, and the accepted set are identical.
        attempts = 0
        attempts_cap = 50 * self.n_samples
        while len(store) < self.n_samples and attempts < attempts_cap:
            block = min(self.n_samples - len(store), attempts_cap - attempts)
            samples = sample_configuration_block(robot, rng, block)
            attempts += block
            hits = checker.check_poses(samples)
            free = samples[~np.asarray(hits, dtype=bool)]
            if len(free):
                store.extend(free)

        self._neighbor_sets = [set() for _ in range(len(store))]
        for index in range(len(store)):
            q = store.configurations[index]
            neighbors = store.knn(q, self.k_neighbors + 1)
            linked = self._neighbor_sets[index]
            candidates = [
                neighbor
                for neighbor in neighbors.tolist()
                if neighbor != index and neighbor not in linked
            ]
            flags = yield CDQuery.complete(
                [(q, store.configurations[neighbor]) for neighbor in candidates],
                "prm_edge",
            )
            accepted = [
                neighbor
                for neighbor, collided in zip(candidates, flags)
                if not collided
            ]
            if not accepted:
                continue
            weights = rowwise_distances(store.configurations[accepted], q)
            for neighbor, weight in zip(accepted, weights.tolist()):
                self._edge_src.extend((index, neighbor))
                self._edge_dst.extend((neighbor, index))
                self._edge_weight.extend((weight, weight))
                self._neighbor_sets[index].add(neighbor)
                self._neighbor_sets[neighbor].add(index)
        self._finalize_csr()

    def _finalize_csr(self) -> None:
        """Assemble the CSR adjacency from the chronological half-edges.

        A *stable* argsort by source groups each node's half-edges while
        preserving their acceptance order, so iterating a CSR row visits
        neighbors exactly as the legacy per-node append lists did — graph
        search tie behavior is unchanged.
        """
        n = self.num_nodes
        src = np.asarray(self._edge_src, dtype=np.int64)
        order = np.argsort(src, kind="stable")
        self._csr_neighbors = np.asarray(self._edge_dst, dtype=np.int64)[order]
        self._csr_weights = np.asarray(self._edge_weight, dtype=float)[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        if len(src):
            np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        self._csr_indptr = indptr

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def plan(
        self, q_start, q_goal, rng: np.random.Generator
    ) -> Optional[List[np.ndarray]]:
        """Answer a query against the roadmap (building it on first use)."""
        return drive_queries(self.plan_steps(q_start, q_goal, rng), self.recorder)

    def plan_steps(self, q_start, q_goal, rng: np.random.Generator):
        """Generator form of :meth:`plan` (yields :class:`CDQuery` steps)."""
        if not self.roadmap_built:
            yield from self.build_roadmap_steps(rng)
        if self._store is None or len(self._store) == 0:
            return None
        start_links = yield from self._attach(q_start)
        goal_links = yield from self._attach(q_goal)
        if not start_links or not goal_links:
            return None
        start_costs = dict(start_links)
        goal_costs = dict(goal_links)
        node_path = self._shortest_path(start_costs, goal_costs)
        if node_path is None:
            return None
        return (
            [np.asarray(q_start, dtype=float)]
            + [self._store.configuration(i) for i in node_path]
            + [np.asarray(q_goal, dtype=float)]
        )

    def _attach(self, q):
        """Connect a query configuration to its reachable nearest nodes.

        All k candidate attachments form one COMPLETE phase (the same
        batch shape as roadmap edge construction).
        """
        store = self._store
        candidates = store.knn(q, self.k_neighbors).tolist()
        flags = yield CDQuery.complete(
            [(q, store.configurations[index]) for index in candidates],
            "prm_attach",
        )
        reachable = [
            index for index, collided in zip(candidates, flags) if not collided
        ]
        if not reachable:
            return []
        weights = rowwise_distances(store.configurations[reachable], q)
        return list(zip(reachable, weights.tolist()))

    def _shortest_path(self, start_costs, goal_costs) -> Optional[List[int]]:
        """Dijkstra from the start attachments to any goal attachment.

        Neighbor expansion iterates CSR row slices; per-row order equals
        the legacy adjacency lists, so path choice under cost ties is
        unchanged.
        """
        indptr = self._csr_indptr
        csr_neighbors = self._csr_neighbors
        csr_weights = self._csr_weights
        best: Dict[int, float] = {}
        parent: Dict[int, Optional[int]] = {}
        heap = []
        for node, cost in start_costs.items():
            heapq.heappush(heap, (cost, node))
            best[node] = cost
            parent[node] = None
        while heap:
            cost, node = heapq.heappop(heap)
            if cost > best.get(node, float("inf")):
                continue
            if node in goal_costs:
                path = []
                cursor: Optional[int] = node
                while cursor is not None:
                    path.append(cursor)
                    cursor = parent[cursor]
                return list(reversed(path))
            row = slice(indptr[node], indptr[node + 1])
            for neighbor, weight in zip(
                csr_neighbors[row].tolist(), csr_weights[row].tolist()
            ):
                candidate = cost + weight
                if candidate < best.get(neighbor, float("inf")):
                    best[neighbor] = candidate
                    parent[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        return None
