"""Shared SoA planner cores: the vectorized node store behind the planners.

VAMP ("Motions in Microseconds", Thomason et al.) gets its planner speed
from data layout, not just from vectorized collision checking: tree and
roadmap nodes live in struct-of-arrays form so every inner-loop primitive
— nearest neighbor, k-NN, distance fields — is one vectorized operation
over a contiguous prefix.  This module brings that structure to the
repository's planners.

A :class:`NodeStore` keeps live node configurations in one preallocated
``(capacity, dof)`` float array with parent/cost companion arrays, grown
by amortized doubling (the same discipline as
:class:`repro.collision.batch.SoAScratch`, including the pinned
``reallocations`` counter).  Appends are O(1); nearest-neighbor and k-NN
queries are a single subtract + ``einsum`` + ``argmin``/``argsort`` over
the live prefix view — replacing the ``np.asarray(list_of_arrays)``
re-stack the planners previously performed on every iteration.

**Determinism contract.**  The queries are bit-identical to the
list-of-ndarray implementations they replace: the prefix view is
C-contiguous, so ``configurations[:n] - target`` and
``einsum("ij,ij->i")`` produce exactly the floats the old
``np.asarray(nodes) - target`` path produced, and tie-breaking is pinned
explicitly (regression-tested in ``tests/test_nodestore.py``):

- :meth:`nearest` returns the *lowest index* among equidistant nodes
  (``np.argmin`` first-occurrence semantics);
- :meth:`knn` orders equidistant nodes by *ascending index*
  (``np.argsort(kind="stable")``).

An optional :class:`~repro.collision.batch.SoAScratch` — typically the
one owned by the checker's :class:`BatchPoseEvaluator`, via
``RobotEnvironmentChecker.shared_scratch`` — backs the per-query delta
and squared-distance temporaries, so steady-state nearest-neighbor
queries allocate nothing.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["NodeStore", "sample_configuration_block"]


def sample_configuration_block(robot, rng: np.random.Generator, n: int) -> np.ndarray:
    """``n`` uniform random configurations as one ``(n, dof)`` block.

    **Stream-exact:** one sized ``rng.uniform(lo, hi, size=(n, dof))`` draw
    consumes the generator stream exactly as ``n`` sequential
    ``robot.random_configuration(rng)`` calls do — the returned rows *and*
    the generator's final state are bit-identical (numpy fills sized
    uniform draws row-major from the same bit stream; pinned by
    ``tests/test_nodestore.py``).  The SoA planners use this to replace
    per-iteration scalar draws with block draws without perturbing any
    fixed seed.

    Lives here (rather than ``repro.planning.samplers``, which re-exports
    it) so the planner cores can import it without pulling in the neural
    stack.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    lo, hi = robot.joint_limits[:, 0], robot.joint_limits[:, 1]
    return rng.uniform(lo, hi, size=(n, robot.dof))


class NodeStore:
    """SoA storage for planner nodes: configurations + parents + costs.

    ``capacity`` is the initial preallocation; growth doubles (never less
    than the requested size), copying the live prefix.  ``scratch`` is an
    optional :class:`~repro.collision.batch.SoAScratch` used for query
    temporaries (named ``nodestore.*`` slots).
    """

    def __init__(self, dof: int, capacity: int = 64, scratch=None):
        if dof < 1:
            raise ValueError(f"dof must be >= 1, got {dof}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.dof = int(dof)
        self._configs = np.empty((int(capacity), self.dof), dtype=float)
        self._parents = np.full(int(capacity), -1, dtype=np.int64)
        self._costs = np.zeros(int(capacity), dtype=float)
        self._n = 0
        self._scratch = scratch
        #: How many times the buffers grew — tests pin steady-state 0,
        #: the same contract as ``SoAScratch.reallocations``.
        self.reallocations = 0

    # -- capacity ------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        return len(self._costs)

    def reserve(self, n: int) -> None:
        """Ensure room for ``n`` total nodes (one reallocation at most)."""
        if n > self.capacity:
            self._grow(n)

    def _grow(self, minimum: int) -> None:
        new_capacity = max(int(minimum), 2 * self.capacity)
        configs = np.empty((new_capacity, self.dof), dtype=float)
        parents = np.full(new_capacity, -1, dtype=np.int64)
        costs = np.zeros(new_capacity, dtype=float)
        n = self._n
        configs[:n] = self._configs[:n]
        parents[:n] = self._parents[:n]
        costs[:n] = self._costs[:n]
        self._configs, self._parents, self._costs = configs, parents, costs
        self.reallocations += 1

    def clear(self) -> None:
        """Drop all nodes but keep the warmed buffers (no reallocation)."""
        self._n = 0

    # -- append --------------------------------------------------------

    def append(self, q, parent: int = -1, cost: float = 0.0) -> int:
        """Add one node; returns its index.  Amortized O(1)."""
        n = self._n
        if n == self.capacity:
            self._grow(n + 1)
        self._configs[n] = q
        self._parents[n] = parent
        self._costs[n] = cost
        self._n = n + 1
        return n

    def extend(self, qs, parents=None, costs=None) -> np.ndarray:
        """Bulk-append an ``(m, dof)`` block; returns the new indices."""
        qs = np.asarray(qs, dtype=float)
        if qs.ndim == 1:
            qs = qs[None, :]
        m = len(qs)
        n = self._n
        if n + m > self.capacity:
            self._grow(n + m)
        self._configs[n : n + m] = qs
        if parents is not None:
            self._parents[n : n + m] = parents
        if costs is not None:
            self._costs[n : n + m] = costs
        self._n = n + m
        return np.arange(n, n + m)

    # -- views ---------------------------------------------------------

    @property
    def configurations(self) -> np.ndarray:
        """The live ``(n, dof)`` prefix view (C-contiguous, do not hold
        across appends — growth swaps the backing buffer)."""
        return self._configs[: self._n]

    @property
    def parents(self) -> np.ndarray:
        return self._parents[: self._n]

    @property
    def costs(self) -> np.ndarray:
        return self._costs[: self._n]

    def configuration(self, index: int) -> np.ndarray:
        """A *copy* of one node's configuration (safe to hold)."""
        return self._configs[int(index)].copy()

    # -- queries -------------------------------------------------------

    def squared_distances(self, target) -> np.ndarray:
        """Squared Euclidean distance from every live node to ``target``.

        Bit-identical to ``np.einsum("ij,ij->i", stacked - target, ...)``
        over the old re-stacked node list.  The returned array may be a
        scratch view — consume it before the next store query.
        """
        n = self._n
        configs = self._configs[:n]
        target = np.asarray(target, dtype=float)
        if self._scratch is not None:
            deltas = self._scratch.array("nodestore.deltas", n, (self.dof,))
            d2 = self._scratch.array("nodestore.d2", n, ())
            np.subtract(configs, target, out=deltas)
            np.einsum("ij,ij->i", deltas, deltas, out=d2)
            return d2
        deltas = configs - target
        return np.einsum("ij,ij->i", deltas, deltas)

    def nearest(self, target) -> int:
        """Index of the nearest live node (lowest index wins ties)."""
        if self._n == 0:
            raise ValueError("nearest() on an empty NodeStore")
        return int(np.argmin(self.squared_distances(target)))

    def knn(self, target, k: int) -> np.ndarray:
        """Indices of the ``k`` nearest live nodes, nearest first.

        Equidistant nodes order by ascending index (stable argsort) —
        the explicitly pinned tie-break that guards the SoA swap against
        silent ``argsort`` tie-order drift.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return np.argsort(self.squared_distances(target), kind="stable")[:k]

    # -- tree walk -----------------------------------------------------

    def path_to_root(self, index: int) -> List[np.ndarray]:
        """Configurations from ``index`` up to its root (inclusive).

        Returned arrays are copies, valid across later appends.
        """
        path: List[np.ndarray] = []
        cursor = int(index)
        while cursor >= 0:
            path.append(self._configs[cursor].copy())
            cursor = int(self._parents[cursor])
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NodeStore(dof={self.dof}, n={self._n}, "
            f"capacity={self.capacity}, reallocations={self.reallocations})"
        )
