"""Collision-query descriptors and the generator-planner protocol.

The serving layer (:mod:`repro.serving`) interleaves many in-flight
planning queries and coalesces their collision-detection phases into
single vectorized dispatches.  That requires planners to be *suspendable*
at CD-query boundaries without threads, so every planner exposes its
control flow as a generator (``plan_steps``) that **yields**
:class:`CDQuery` descriptors and receives the planner-facing answer back
through ``send()``:

    def plan_steps(self, q_start, q_goal, rng):
        ...
        free = yield CDQuery.steer(q_near, q_new, "rrt_extend")
        ...

The classic synchronous ``plan()`` API is a thin driver
(:func:`drive_queries`) over the *same* generator, answering each yielded
query immediately through the planner's own
:class:`~repro.planning.recorder.CDTraceRecorder`.  There is one control
flow, not two: a planner driven solo and the same planner driven by the
service (with answers computed in cross-request batches) make identical
decisions because each request's answers are identical — pinned by the
serving differential tests.

A :class:`CDQuery` is a *description* of a recorder call, not a phase: the
recorder still owns MotionRecord construction, the degenerate-input
contract, trace recording, and answer conversion
(:meth:`CDTraceRecorder.prepare` / :meth:`CDTraceRecorder.commit`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Tuple

__all__ = ["CDQuery", "QUERY_KINDS", "drive_queries"]

#: Recorder entry points a planner may request.
QUERY_KINDS = ("steer", "feasibility", "connectivity", "complete")


@dataclass(frozen=True)
class CDQuery:
    """One pending recorder call: kind + positional payload + label.

    ``args`` matches the corresponding recorder method's positional
    signature: ``(q_start, q_end)`` for steer, ``(path,)`` for
    feasibility, ``(q_anchor, targets)`` for connectivity, and
    ``(segments,)`` for complete.
    """

    kind: str
    args: Tuple[Any, ...]
    label: str

    def __post_init__(self):
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; valid choices: {list(QUERY_KINDS)}"
            )

    # -- constructors (mirror the recorder's planner-facing methods) ----

    @classmethod
    def steer(cls, q_start, q_end, label: str = "steer") -> "CDQuery":
        return cls("steer", (q_start, q_end), label)

    @classmethod
    def feasibility(cls, path, label: str = "feasibility") -> "CDQuery":
        return cls("feasibility", (path,), label)

    @classmethod
    def connectivity(cls, q_anchor, targets, label: str = "shortcut") -> "CDQuery":
        return cls("connectivity", (q_anchor, targets), label)

    @classmethod
    def complete(cls, segments, label: str = "complete") -> "CDQuery":
        return cls("complete", (segments,), label)


def drive_queries(gen: Generator, recorder) -> Any:
    """Run a ``plan_steps`` generator to completion against one recorder.

    Each yielded :class:`CDQuery` is answered immediately via
    ``recorder.ask`` — the exact call the pre-generator planners made —
    and the generator's return value becomes the result.  This is the
    synchronous single-client execution mode; the serving layer drives the
    same generators with deferred, batched answers instead.
    """
    try:
        value = None
        while True:
            query = gen.send(value)
            value = recorder.ask(query)
    except StopIteration as stop:
        return stop.value
