"""The CD trace recorder: the bridge between planners and the accelerator.

Planners do not call the collision checker directly for motions; they go
through this recorder, which both answers the query (using the early-exiting
sequential semantics a CPU implementation would have) and appends a
:class:`CDPhase` describing the work unit the controller would have shipped
to SAS.  Replaying the recorded phases through the SAS/MPAccel simulators
yields the runtime and energy numbers of Sections 7.1 and 7.4.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.collision.checker import RobotEnvironmentChecker
from repro.planning.motion import CDPhase, FunctionMode, MotionRecord


class CDTraceRecorder:
    """Records collision-detection phases issued by a planner."""

    def __init__(self, checker: RobotEnvironmentChecker, record: bool = True):
        self.checker = checker
        self.record = record
        self.phases: List[CDPhase] = []

    # ------------------------------------------------------------------
    # Planner-facing queries
    # ------------------------------------------------------------------

    def steer(self, q_start, q_end, label: str = "steer") -> bool:
        """Is the straight motion between two poses collision-free?

        Recorded as a single-motion FEASIBILITY phase.
        """
        motion = MotionRecord.from_endpoints(q_start, q_end, self.checker)
        self._append(CDPhase(FunctionMode.FEASIBILITY, [motion], label))
        return motion.is_collision_free()

    def feasibility(
        self, path: Sequence[np.ndarray], label: str = "feasibility"
    ) -> Optional[int]:
        """Check every segment of a path; returns the first infeasible
        segment index, or None when the whole path is collision-free.

        Recorded as one FEASIBILITY phase over all segments.
        """
        if len(path) < 2:
            return None
        motions = [
            MotionRecord.from_endpoints(path[i], path[i + 1], self.checker)
            for i in range(len(path) - 1)
        ]
        self._append(CDPhase(FunctionMode.FEASIBILITY, motions, label))
        for index, motion in enumerate(motions):
            if not motion.is_collision_free():
                return index
        return None

    def connectivity(
        self, q_anchor, targets: Sequence[np.ndarray], label: str = "shortcut"
    ) -> Optional[int]:
        """Find the first target reachable from ``q_anchor`` by a free motion.

        Recorded as one CONNECTIVITY phase; this is the shortcutting workload
        (Section 2.1), where the scheduler may stop at the first free motion.
        """
        if not len(targets):
            return None
        motions = [
            MotionRecord.from_endpoints(q_anchor, target, self.checker)
            for target in targets
        ]
        self._append(CDPhase(FunctionMode.CONNECTIVITY, motions, label))
        for index, motion in enumerate(motions):
            if motion.is_collision_free():
                return index
        return None

    def complete(self, segments: Sequence[tuple], label: str = "complete") -> List[bool]:
        """Evaluate every (start, end) motion; returns per-motion collision flags."""
        motions = [
            MotionRecord.from_endpoints(q_start, q_end, self.checker)
            for q_start, q_end in segments
        ]
        if motions:
            self._append(CDPhase(FunctionMode.COMPLETE, motions, label))
        return [not motion.is_collision_free() for motion in motions]

    # ------------------------------------------------------------------
    # Trace access
    # ------------------------------------------------------------------

    def _append(self, phase: CDPhase) -> None:
        if self.record:
            self.phases.append(phase)

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def total_motions(self) -> int:
        return sum(len(phase.motions) for phase in self.phases)

    @property
    def total_poses(self) -> int:
        return sum(phase.total_poses for phase in self.phases)

    def clear(self) -> None:
        self.phases.clear()

    def phases_by_label(self, label: str) -> List[CDPhase]:
        return [phase for phase in self.phases if phase.label == label]
