"""The CD trace recorder: the bridge between planners and the accelerator.

Planners do not call the collision checker directly for motions; they go
through this recorder, which records each query as a :class:`CDPhase` (the
work unit the controller would have shipped to SAS) and delegates
*answering* it to a pluggable :class:`~repro.planning.engine.QueryEngine`:

- the default :class:`~repro.planning.engine.SequentialEngine` reproduces
  the early-exiting sequential semantics a CPU implementation would have;
- :class:`~repro.planning.engine.BatchedEngine` answers each phase with one
  vectorized dispatch (bit-identical verdicts and stats, faster clock);
- :class:`~repro.planning.engine.SimulatedEngine` additionally runs every
  phase through SAS inline, producing cycle/energy numbers while planning.

Replaying the recorded phases through the SAS/MPAccel simulators yields the
runtime and energy numbers of Sections 7.1 and 7.4 (or, with the simulated
engine, they accumulate inline as the planner runs).

**Degenerate-input contract** (pinned by ``tests/test_planning_recorder.py``):
a query with no work in it — ``feasibility`` of a path with fewer than two
poses, ``connectivity`` with no targets, ``complete`` with no segments —
returns its trivial answer (``None``/``None``/``[]``), records *no* phase,
and consults neither the engine nor the checker.  Phases always contain at
least one motion.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.collision.checker import RobotEnvironmentChecker, interpolate_motion
from repro.planning.engine import PhaseAnswer, QueryEngine, SequentialEngine
from repro.planning.motion import CDPhase, FunctionMode, MotionRecord
from repro.planning.queries import CDQuery


class CDTraceRecorder:
    """Records collision-detection phases issued by a planner.

    ``engine`` selects the execution backend (default: a
    :class:`SequentialEngine` over ``checker``).  ``record=False`` keeps
    answering queries but retains no trace.
    """

    def __init__(
        self,
        checker: Optional[RobotEnvironmentChecker] = None,
        record: bool = True,
        engine: Optional[QueryEngine] = None,
    ):
        if engine is None:
            if checker is None:
                raise ValueError("CDTraceRecorder needs a checker or an engine")
            engine = SequentialEngine(checker)
        self.engine = engine
        self.checker = checker if checker is not None else engine.checker
        self.record = record
        self.phases: List[CDPhase] = []
        #: Per-phase engine answers, parallel to ``phases`` (when recording).
        self.answers: List[PhaseAnswer] = []

    # ------------------------------------------------------------------
    # Planner-facing queries
    # ------------------------------------------------------------------

    def steer(self, q_start, q_end, label: str = "steer") -> bool:
        """Is the straight motion between two poses collision-free?

        Recorded as a single-motion FEASIBILITY phase.
        """
        return self.ask(CDQuery.steer(q_start, q_end, label))

    def feasibility(
        self, path: Sequence[np.ndarray], label: str = "feasibility"
    ) -> Optional[int]:
        """Check every segment of a path; returns the first infeasible
        segment index, or None when the whole path is collision-free.

        Recorded as one FEASIBILITY phase over all segments.  A path with
        fewer than two poses is trivially feasible and records nothing.
        """
        return self.ask(CDQuery.feasibility(path, label))

    def connectivity(
        self, q_anchor, targets: Sequence[np.ndarray], label: str = "shortcut"
    ) -> Optional[int]:
        """Find the first target reachable from ``q_anchor`` by a free motion.

        Recorded as one CONNECTIVITY phase; this is the shortcutting workload
        (Section 2.1), where the scheduler may stop at the first free motion.
        An empty target set finds nothing and records nothing.
        """
        return self.ask(CDQuery.connectivity(q_anchor, targets, label))

    def complete(self, segments: Sequence[tuple], label: str = "complete") -> List[bool]:
        """Evaluate every (start, end) motion; returns per-motion collision flags.

        Recorded as one COMPLETE phase.  An empty segment list returns
        ``[]`` and records nothing.
        """
        return self.ask(CDQuery.complete(segments, label))

    # ------------------------------------------------------------------
    # The prepare / commit split (used by the serving batcher)
    # ------------------------------------------------------------------

    def prepare(self, query: CDQuery) -> Optional[CDPhase]:
        """Build the CD phase a query describes, or None when degenerate.

        Degenerate queries (feasibility of a sub-2-pose path, connectivity
        with no targets, complete with no segments) have no phase; their
        trivial answer comes from :meth:`trivial_result` and nothing is
        recorded — the same contract the planner-facing methods pin.

        Phases are assembled in the fused SoA layout: each segment is
        discretized with the same per-motion ``interpolate_motion`` call as
        before (the per-segment ``np.linspace`` association is part of the
        bit-identity contract), the blocks are concatenated into one
        ``stacked`` pose tensor, and every :class:`MotionRecord` holds a
        row-range view into it — so the batched engine can dispatch the
        whole phase without restacking a single pose.
        """
        kind = query.kind
        if kind == "steer":
            q_start, q_end = query.args
            return self._assemble_phase(
                FunctionMode.FEASIBILITY, [(q_start, q_end)], query.label
            )
        if kind == "feasibility":
            (path,) = query.args
            if len(path) < 2:
                return None
            segments = list(zip(path[:-1], path[1:]))
            return self._assemble_phase(
                FunctionMode.FEASIBILITY, segments, query.label
            )
        if kind == "connectivity":
            q_anchor, targets = query.args
            if not len(targets):
                return None
            segments = [(q_anchor, target) for target in targets]
            return self._assemble_phase(
                FunctionMode.CONNECTIVITY, segments, query.label
            )
        if kind == "complete":
            (segments,) = query.args
            if not len(segments):
                return None
            return self._assemble_phase(
                FunctionMode.COMPLETE, list(segments), query.label
            )
        raise ValueError(f"unknown query kind {kind!r}")

    def _assemble_phase(self, mode, segments, label: str) -> CDPhase:
        """Discretize segments and lay the phase out as one SoA pose block."""
        step = self.checker.motion_step
        blocks = [
            interpolate_motion(q_start, q_end, step) for q_start, q_end in segments
        ]
        counts = np.fromiter(
            (len(block) for block in blocks), dtype=np.int64, count=len(blocks)
        )
        offsets = np.zeros(len(blocks), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        stacked = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
        motions = [
            MotionRecord(stacked[offset : offset + count], self.checker)
            for offset, count in zip(offsets.tolist(), counts.tolist())
        ]
        return CDPhase(
            mode, motions, label, stacked=stacked, offsets=offsets, counts=counts
        )

    @staticmethod
    def trivial_result(query: CDQuery):
        """The planner-facing answer of a degenerate (phase-less) query."""
        return [] if query.kind == "complete" else None

    def commit(self, query: CDQuery, phase: CDPhase, answer: PhaseAnswer):
        """Record an externally answered phase; returns the planner-facing value.

        The serving batcher answers phases outside the recorder's engine
        (one coalesced dispatch for many requests); this folds the answer
        back into the trace and converts it exactly as the synchronous
        methods do.
        """
        if self.record:
            self.phases.append(phase)
            self.answers.append(answer)
        kind = query.kind
        if kind == "steer":
            return answer.outcomes[0] is False
        if kind == "feasibility":
            return answer.first_colliding()
        if kind == "connectivity":
            return answer.first_free()
        return answer.flags()

    def ask(self, query: CDQuery):
        """Answer one query synchronously through this recorder's engine."""
        phase = self.prepare(query)
        if phase is None:
            return self.trivial_result(query)
        return self.commit(query, phase, self.engine.answer(phase))

    # ------------------------------------------------------------------
    # Trace access
    # ------------------------------------------------------------------

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def total_motions(self) -> int:
        return sum(len(phase.motions) for phase in self.phases)

    @property
    def total_poses(self) -> int:
        return sum(phase.total_poses for phase in self.phases)

    def clear(self) -> None:
        self.phases.clear()
        self.answers.clear()

    def phases_by_label(self, label: str) -> List[CDPhase]:
        return [phase for phase in self.phases if phase.label == label]
