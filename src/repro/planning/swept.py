"""Swept-volume computation: the motion prefilter and the memory model.

Prior motion planning accelerators (Murray et al., Lian et al.) precompute
the *swept volume* of every roadmap motion — the union of all space the
robot occupies anywhere along the motion — and store it (as voxel sets or
octrees) for constant-time collision checks at runtime.  The paper's
scalability argument (Sections 1 and 8) is that those stores grow to tens
of MB as the roadmap grows, which is what MPAccel's on-the-fly OBB
generation avoids.

This module hosts two uses of swept volumes:

* :class:`SweptMotionPrefilter` — the *runtime* use: a conservative
  swept-sphere/swept-AABB broad phase (CAPT-style) that certifies whole
  motions collision-free against the octree from one batched FK pass,
  before any per-pose cascade runs.  The batched query engine consults it
  and skips the exact per-pose evaluation for certified motions.
* :func:`swept_voxels` / :func:`roadmap_memory_estimate` — the *memory
  model* use: materialized swept volumes priced as precomputed-roadmap
  storage, regenerating the paper's scalability argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.collision.checker import interpolate_motion
from repro.env.octree import NODE_BITS, Octree
from repro.env.voxel import VoxelGrid
from repro.geometry.aabb import AABB
from repro.robot.model import RobotModel


def swept_voxels(
    robot: RobotModel,
    q_start,
    q_end,
    grid: VoxelGrid,
    step: float = 0.05,
) -> Set[Tuple[int, int, int]]:
    """Voxel indices the robot touches anywhere along a motion.

    Conservative: a voxel is swept when its center lies within any link OBB
    expanded by half a voxel diagonal at any discretized pose.
    """
    swept: Set[Tuple[int, int, int]] = set()
    size = grid.voxel_size
    margin = 0.5 * size * np.sqrt(3.0)
    resolution = grid.resolution
    lo_bound = grid.bounds.minimum
    for pose in interpolate_motion(q_start, q_end, step):
        for obb in robot.link_obbs(pose):
            enclosing = obb.enclosing_aabb()
            lo = np.floor((enclosing.minimum - lo_bound) / size).astype(int)
            hi = np.ceil((enclosing.maximum - lo_bound) / size).astype(int)
            lo = np.clip(lo, 0, resolution)
            hi = np.clip(hi, 0, resolution)
            if np.any(hi <= lo):
                continue
            axes = [np.arange(lo[d], hi[d]) for d in range(3)]
            ii, jj, kk = np.meshgrid(*axes, indexing="ij")
            indices = np.stack([ii.ravel(), jj.ravel(), kk.ravel()], axis=1)
            centers = lo_bound + (indices + 0.5) * size
            local = (centers - obb.center) @ obb.rotation
            inside = np.all(np.abs(local) <= obb.half_extents + margin, axis=1)
            swept.update(map(tuple, indices[inside]))
    return swept


def swept_volume_grid(
    robot: RobotModel, q_start, q_end, bounds: AABB, resolution: int = 32,
    step: float = 0.05,
) -> VoxelGrid:
    """The swept volume as an occupancy grid (for octree compression)."""
    grid = VoxelGrid(bounds, resolution)
    for index in swept_voxels(robot, q_start, q_end, grid, step):
        grid.occupancy[index] = True
    return grid


@dataclass(frozen=True)
class SweptMemoryEstimate:
    """Storage cost of a precomputed-roadmap accelerator."""

    n_motions: int
    voxel_bits: int  # dense bitmap per motion (Murray et al. style)
    octree_bits: int  # octree-compressed per motion (Lian et al. style)

    @property
    def voxel_mb(self) -> float:
        return self.voxel_bits / 8 / 1e6

    @property
    def octree_mb(self) -> float:
        return self.octree_bits / 8 / 1e6


#: Absolute slack added to every conservative bound: covers the float
#: rounding differences between the bound arithmetic here (matvec + add)
#: and the exact path's 4x4 gemm / norm reductions.  Orders of magnitude
#: above double rounding error, orders below any link dimension.
_FLOAT_SLACK = 1e-9


def _split_spans(counts: np.ndarray, max_span: int):
    """Cut per-motion pose counts into spans of at most ``max_span`` poses.

    Returns ``(span_counts, spans_per_motion)``; span order is
    motion-major, so the spans tile the motions' concatenated rows.
    """
    span_counts: List[int] = []
    spans_per_motion = np.empty(len(counts), dtype=np.int64)
    for m, count in enumerate(counts.tolist()):
        full, remainder = divmod(count, max_span)
        spans_per_motion[m] = full + (1 if remainder else 0)
        span_counts.extend([max_span] * full)
        if remainder:
            span_counts.append(remainder)
    return np.asarray(span_counts, dtype=np.int64), spans_per_motion


class SweptMotionPrefilter:
    """Conservative motion-level broad phase over the batched octree.

    For a batch of motions, one batched FK pass produces every pose's
    frames; per link the prefilter derives a *swept sphere* and *swept
    AABB* that provably enclose the link's **quantized** OBB at every
    discretized pose (the motion's ground truth is exactly that discrete
    pose set).  The bounds are then certified against the octree with
    :meth:`~repro.collision.batch.BatchOctreeCollider.certify_disjoint` —
    one octree query per (motion, link) instead of one per (pose, link).
    A certified motion is collision-free under the exact cascade by
    construction; a miss proves nothing and falls through to the exact
    batch pipeline.

    The enclosure accounts for every conservative gap between the cheap
    frame-level bound and the exact path's quantized OBBs:

    * half extents quantize by rounding *up* with a 1-LSB floor — padded
      by one position LSB per axis;
    * centers round to nearest — padded by half a position LSB per axis
      (sphere: half an LSB times sqrt(3));
    * rotation entries round to nearest in the finer rotation format —
      padded by half a rotation LSB times the half-extent L1 norm;
    * float evaluation-order differences — padded by :data:`_FLOAT_SLACK`.

    The padding assumes quantization does not *saturate* (link centers
    stay inside the fixed-point range), which holds for every preset robot
    by orders of magnitude.

    The prefilter reads the checker's current ``batch_evaluator`` on every
    call, so an octree swap (``checker.update_octree``) is picked up
    automatically — certification always runs against the live tree, the
    same epoch discipline the verdict cache follows.  Counters
    (:meth:`counters`) report the savings; nothing is ever charged to
    :class:`~repro.collision.stats.CollisionStats`, whose contents stay
    bit-identical to a prefilter-off run.
    """

    def __init__(self, checker):
        if getattr(checker, "backend", "scalar") != "batch":
            raise ValueError(
                "SweptMotionPrefilter needs a backend='batch' checker; got "
                f"backend={getattr(checker, 'backend', None)!r}"
            )
        self.checker = checker
        robot = checker.robot
        fmt = checker.fixed_point
        if fmt is not None:
            from repro.geometry.fixed_point import ROTATION_FORMAT

            lsb = fmt.resolution
            rot_half = ROTATION_FORMAT.resolution / 2.0
        else:
            lsb = 0.0
            rot_half = 0.0
        frame_index = []
        local_t = []
        extent_u = []
        sphere_r = []
        for link in robot.links:
            local = np.asarray(link.local.matrix, dtype=float)
            half = np.asarray(link.half_extents, dtype=float)
            padded_half = half + lsb
            # Per-axis world extent bound: |F_R| @ u with u in frame
            # coordinates.  The scalar pad rides inside u because every
            # row of |F_R| has L1 norm >= 1 (rows are unit vectors).
            pad = lsb / 2.0 + rot_half * (half.sum() + 3.0 * lsb) + _FLOAT_SLACK
            extent_u.append(np.abs(local[:3, :3]) @ padded_half + pad)
            frame_index.append(link.frame_index)
            local_t.append(local[:3, 3])
            sphere_r.append(
                float(np.linalg.norm(padded_half))
                + (np.sqrt(3.0) / 2.0) * lsb
                + _FLOAT_SLACK
            )
        self._frame_index = np.asarray(frame_index, dtype=np.int64)
        self._local_t = np.asarray(local_t, dtype=float)  # (L, 3)
        self._extent_u = np.asarray(extent_u, dtype=float)  # (L, 3)
        self._sphere_r = np.asarray(sphere_r, dtype=float)
        #: Savings counters (reported in bench artifacts, never in stats).
        self.phases = 0
        self.motions_tested = 0
        self.motions_certified = 0
        self.poses_tested = 0
        self.poses_certified = 0

    # -- bounds --------------------------------------------------------

    def link_bounds(self, poses: np.ndarray, counts: Sequence[int]):
        """Swept bounds for motions given as concatenated pose blocks.

        ``poses`` is ``(sum(counts), dof)`` with motion ``m`` occupying the
        ``m``-th contiguous block of ``counts[m]`` rows.  Returns
        ``(sphere_center, sphere_radius, lo, hi)`` with leading shape
        ``(M, L)`` — one conservative swept sphere and swept AABB per
        (motion, link), enclosing the quantized link OBB at every pose.
        """
        centers, extents = self._pose_link_bounds(poses)
        return self._segment_bounds(centers, extents, counts)

    def _pose_link_bounds(self, poses: np.ndarray):
        """Per-(pose, link) conservative center/extent arrays, ``(n, L, 3)``.

        One batched FK pass plus one gathered einsum over all (pose, link)
        pairs — no per-link loop.  ``center ± extent`` is a world AABB that
        encloses the link's quantized OBB at that pose (with the
        construction-time padding folded into ``_extent_u``).
        """
        from repro.collision.batch import batch_forward_kinematics

        checker = self.checker
        evaluator = checker.batch_evaluator
        frames = batch_forward_kinematics(
            checker.robot, poses, scratch=evaluator.scratch
        )
        link_frames = frames[:, self._frame_index]  # (n, L, 4, 4)
        rot = link_frames[:, :, :3, :3]
        centers = (
            np.einsum("nlij,lj->nli", rot, self._local_t)
            + link_frames[:, :, :3, 3]
        )
        extents = np.einsum("nlij,lj->nli", np.abs(rot), self._extent_u)
        return centers, extents

    def _segment_bounds(self, centers, extents, counts):
        """Reduce per-pose bounds into per-segment swept spheres/AABBs.

        Segments are the contiguous row blocks described by ``counts`` —
        whole motions or sub-motion spans; the reduction is the same.
        """
        counts = np.asarray(counts, dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
        lo = np.minimum.reduceat(centers - extents, offsets, axis=0)
        hi = np.maximum.reduceat(centers + extents, offsets, axis=0)
        center_lo = np.minimum.reduceat(centers, offsets, axis=0)
        center_hi = np.maximum.reduceat(centers, offsets, axis=0)
        sphere_center = 0.5 * (center_lo + center_hi)
        deviation = centers - np.repeat(sphere_center, counts, axis=0)
        distance = np.sqrt(np.einsum("plk,plk->pl", deviation, deviation))
        sphere_radius = (
            np.maximum.reduceat(distance, offsets, axis=0) + self._sphere_r
        )
        return sphere_center, sphere_radius, lo, hi

    def _certify_segments(self, centers, extents, counts) -> np.ndarray:
        """Per-segment certification verdicts (AND over links), ``(S,)``."""
        sphere_center, sphere_radius, lo, hi = self._segment_bounds(
            centers, extents, counts
        )
        n_segments, n_links = sphere_radius.shape
        free = self.checker.batch_evaluator.collider.certify_disjoint(
            sphere_center.reshape(-1, 3),
            sphere_radius.reshape(-1),
            lo.reshape(-1, 3),
            hi.reshape(-1, 3),
        )
        return free.reshape(n_segments, n_links).all(axis=1)

    # -- certification -------------------------------------------------

    def certify_motions(self, motions, stacked=None, counts=None) -> np.ndarray:
        """Certify each motion collision-free, or not (``(M,)`` bool).

        ``True`` is a proof: every discretized pose of the motion is
        collision-free under the exact quantized cascade.  ``False`` means
        only that the conservative bound touched an occupied FULL octant —
        the motion may still be free.  Counters accumulate per call.

        Fused phases pass their preassembled ``stacked`` pose block and
        per-motion ``counts`` (the motions' poses are views into it), so
        no re-concatenation happens on the hot path; both default to being
        rebuilt from the motions.
        """
        if not len(motions):
            return np.zeros(0, dtype=bool)
        if counts is None:
            counts = [m.num_poses for m in motions]
        if stacked is None:
            stacked = np.concatenate([m.poses for m in motions], axis=0)
        poses = stacked
        sphere_center, sphere_radius, lo, hi = self.link_bounds(poses, counts)
        n_motions, n_links = sphere_radius.shape
        free = self.checker.batch_evaluator.collider.certify_disjoint(
            sphere_center.reshape(-1, 3),
            sphere_radius.reshape(-1),
            lo.reshape(-1, 3),
            hi.reshape(-1, 3),
        )
        certified = free.reshape(n_motions, n_links).all(axis=1)
        self.phases += 1
        self.motions_tested += n_motions
        self.motions_certified += int(certified.sum())
        self.poses_tested += int(len(poses))
        self.poses_certified += int(np.asarray(counts)[certified].sum())
        return certified

    def certify_pose_spans(
        self, motions, stacked: np.ndarray, counts, max_span: int = 16
    ):
        """Segment-granular certification: ``(certified_rows, certified_motions)``.

        Certification is hierarchical: every motion is first tested with
        one whole-motion bound, and only the motions that fail are cut
        into contiguous spans of at most ``max_span`` poses, each with its
        own swept sphere/AABB — far tighter than the motion bound, so long
        motions that graze an obstacle still certify most of their poses.
        ``certified_rows`` flags each row of ``stacked`` whose span is
        proven collision-free (sound: a flagged pose passes the exact
        cascade by the same enclosure argument as
        :meth:`certify_motions`); ``certified_motions`` is the per-motion
        AND of its spans.  Counters advance with the same motion-level
        meaning as :meth:`certify_motions`, except ``poses_certified``
        counts certified *rows* (the poses a skip-mode engine can actually
        elide).
        """
        counts = np.asarray(counts, dtype=np.int64)
        n_motions = len(motions)
        if not n_motions:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=bool)
        # Hierarchical: one bound per whole motion first (an octree query
        # per (motion, link)), then span granularity only for the motions
        # the coarse bound could not clear — in free-leaning workloads the
        # span-level descent runs on a small residue instead of every span
        # of every motion.  Both levels are sound certificates, so mixing
        # them skips a superset of what span-only certification skipped.
        centers, extents = self._pose_link_bounds(stacked)
        certified_motions = self._certify_segments(centers, extents, counts)
        certified_rows = np.repeat(certified_motions, counts)
        if not certified_motions.all():
            residual = ~certified_motions
            row_mask = np.repeat(residual, counts)
            span_counts, spans_per_motion = _split_spans(
                counts[residual], max_span
            )
            span_certified = self._certify_segments(
                centers[row_mask], extents[row_mask], span_counts
            )
            certified_rows[row_mask] = np.repeat(span_certified, span_counts)
            span_offsets = np.zeros(len(spans_per_motion), dtype=np.int64)
            np.cumsum(spans_per_motion[:-1], out=span_offsets[1:])
            certified_motions = certified_motions.copy()
            certified_motions[residual] = np.minimum.reduceat(
                span_certified, span_offsets
            )
        self.phases += 1
        self.motions_tested += n_motions
        self.motions_certified += int(certified_motions.sum())
        self.poses_tested += int(len(stacked))
        self.poses_certified += int(certified_rows.sum())
        return certified_rows, certified_motions

    # -- introspection -------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of tested motions certified free."""
        return (
            self.motions_certified / self.motions_tested
            if self.motions_tested
            else 0.0
        )

    def counters(self) -> dict:
        return {
            "phases": self.phases,
            "motions_tested": self.motions_tested,
            "motions_certified": self.motions_certified,
            "poses_tested": self.poses_tested,
            "poses_certified": self.poses_certified,
            "hit_rate": self.hit_rate,
        }


def roadmap_memory_estimate(
    robot: RobotModel,
    motions: List[Tuple[np.ndarray, np.ndarray]],
    bounds: AABB,
    resolution: int = 32,
    step: float = 0.1,
) -> SweptMemoryEstimate:
    """Total swept-volume storage for a set of roadmap motions.

    ``voxel_bits`` stores each motion's swept set as a sparse voxel list
    (3 coordinates per voxel, log2(resolution) bits each, as the PRM chips
    do); ``octree_bits`` stores each swept volume octree-compressed.
    """
    coord_bits = 3 * max(1, int(np.ceil(np.log2(resolution))))
    voxel_bits = 0
    octree_bits = 0
    for q_start, q_end in motions:
        grid = swept_volume_grid(robot, q_start, q_end, bounds, resolution, step)
        voxel_bits += grid.occupied_count * coord_bits
        octree_bits += Octree.from_voxel_grid(grid).node_count * NODE_BITS
    return SweptMemoryEstimate(
        n_motions=len(motions),
        voxel_bits=voxel_bits,
        octree_bits=octree_bits,
    )
