"""Swept-volume computation and the PRM-accelerator memory model.

Prior motion planning accelerators (Murray et al., Lian et al.) precompute
the *swept volume* of every roadmap motion — the union of all space the
robot occupies anywhere along the motion — and store it (as voxel sets or
octrees) for constant-time collision checks at runtime.  The paper's
scalability argument (Sections 1 and 8) is that those stores grow to tens
of MB as the roadmap grows, which is what MPAccel's on-the-fly OBB
generation avoids.

This module computes swept volumes behaviorally and prices the
precomputed-roadmap memory so the argument can be regenerated as an
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.collision.checker import interpolate_motion
from repro.env.octree import NODE_BITS, Octree
from repro.env.voxel import VoxelGrid
from repro.geometry.aabb import AABB
from repro.robot.model import RobotModel


def swept_voxels(
    robot: RobotModel,
    q_start,
    q_end,
    grid: VoxelGrid,
    step: float = 0.05,
) -> Set[Tuple[int, int, int]]:
    """Voxel indices the robot touches anywhere along a motion.

    Conservative: a voxel is swept when its center lies within any link OBB
    expanded by half a voxel diagonal at any discretized pose.
    """
    swept: Set[Tuple[int, int, int]] = set()
    size = grid.voxel_size
    margin = 0.5 * size * np.sqrt(3.0)
    resolution = grid.resolution
    lo_bound = grid.bounds.minimum
    for pose in interpolate_motion(q_start, q_end, step):
        for obb in robot.link_obbs(pose):
            enclosing = obb.enclosing_aabb()
            lo = np.floor((enclosing.minimum - lo_bound) / size).astype(int)
            hi = np.ceil((enclosing.maximum - lo_bound) / size).astype(int)
            lo = np.clip(lo, 0, resolution)
            hi = np.clip(hi, 0, resolution)
            if np.any(hi <= lo):
                continue
            axes = [np.arange(lo[d], hi[d]) for d in range(3)]
            ii, jj, kk = np.meshgrid(*axes, indexing="ij")
            indices = np.stack([ii.ravel(), jj.ravel(), kk.ravel()], axis=1)
            centers = lo_bound + (indices + 0.5) * size
            local = (centers - obb.center) @ obb.rotation
            inside = np.all(np.abs(local) <= obb.half_extents + margin, axis=1)
            swept.update(map(tuple, indices[inside]))
    return swept


def swept_volume_grid(
    robot: RobotModel, q_start, q_end, bounds: AABB, resolution: int = 32,
    step: float = 0.05,
) -> VoxelGrid:
    """The swept volume as an occupancy grid (for octree compression)."""
    grid = VoxelGrid(bounds, resolution)
    for index in swept_voxels(robot, q_start, q_end, grid, step):
        grid.occupancy[index] = True
    return grid


@dataclass(frozen=True)
class SweptMemoryEstimate:
    """Storage cost of a precomputed-roadmap accelerator."""

    n_motions: int
    voxel_bits: int  # dense bitmap per motion (Murray et al. style)
    octree_bits: int  # octree-compressed per motion (Lian et al. style)

    @property
    def voxel_mb(self) -> float:
        return self.voxel_bits / 8 / 1e6

    @property
    def octree_mb(self) -> float:
        return self.octree_bits / 8 / 1e6


def roadmap_memory_estimate(
    robot: RobotModel,
    motions: List[Tuple[np.ndarray, np.ndarray]],
    bounds: AABB,
    resolution: int = 32,
    step: float = 0.1,
) -> SweptMemoryEstimate:
    """Total swept-volume storage for a set of roadmap motions.

    ``voxel_bits`` stores each motion's swept set as a sparse voxel list
    (3 coordinates per voxel, log2(resolution) bits each, as the PRM chips
    do); ``octree_bits`` stores each swept volume octree-compressed.
    """
    coord_bits = 3 * max(1, int(np.ceil(np.log2(resolution))))
    voxel_bits = 0
    octree_bits = 0
    for q_start, q_end in motions:
        grid = swept_volume_grid(robot, q_start, q_end, bounds, resolution, step)
        voxel_bits += grid.occupied_count * coord_bits
        octree_bits += Octree.from_voxel_grid(grid).node_count * NODE_BITS
    return SweptMemoryEstimate(
        n_motions=len(motions),
        voxel_bits=voxel_bits,
        octree_bits=octree_bits,
    )
