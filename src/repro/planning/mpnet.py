"""The MPNet-style learning-based motion planner (Qureshi et al.).

The algorithm the paper runs on MPAccel (Section 6): bidirectional neural
planning builds a candidate sequence of intermediate poses, lazy vertex
contraction (greedy shortcutting) smooths it, feasibility checking validates
every segment, and infeasible segments trigger neural replanning with an
RRT-Connect hybrid fallback.  Every collision query flows through the
recorder, so a plan leaves behind the exact CD phase stream MPAccel would
execute; the planner also counts neural inferences for the DNN-accelerator
timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.planning.cspace import cspace_distance, path_length
from repro.planning.queries import CDQuery, drive_queries
from repro.planning.recorder import CDTraceRecorder
from repro.planning.rrt_connect import RRTConnectPlanner
from repro.planning.shortcut import shortcut_steps


@dataclass
class PlanResult:
    """Outcome of one motion planning query."""

    success: bool
    path: List[np.ndarray] = field(default_factory=list)
    nn_inferences: int = 0
    encoder_inferences: int = 0
    fallback_used: bool = False
    replans: int = 0

    @property
    def length(self) -> float:
        return path_length(self.path)


class MPNetPlanner:
    """Learning-based planner with hybrid classical fallback."""

    def __init__(
        self,
        recorder: CDTraceRecorder,
        sampler,
        environment_points: np.ndarray,
        max_neural_steps: int = 40,
        max_replans: int = 6,
        fallback_iterations: int = 600,
        candidates_per_step: int = 1,
    ):
        if max_neural_steps < 2:
            raise ValueError(f"max_neural_steps must be >= 2, got {max_neural_steps}")
        if max_replans < 0:
            raise ValueError(f"max_replans must be >= 0, got {max_replans}")
        if candidates_per_step < 1:
            raise ValueError(
                f"candidates_per_step must be >= 1, got {candidates_per_step}"
            )
        self.recorder = recorder
        self.sampler = sampler
        self.environment_points = np.asarray(environment_points, dtype=float)
        self.max_neural_steps = max_neural_steps
        self.max_replans = max_replans
        self.fallback_iterations = fallback_iterations
        self.candidates_per_step = candidates_per_step

    def plan(self, q_start, q_goal, rng: np.random.Generator) -> PlanResult:
        """Plan a collision-free path from ``q_start`` to ``q_goal``."""
        return drive_queries(self.plan_steps(q_start, q_goal, rng), self.recorder)

    def plan_steps(self, q_start, q_goal, rng: np.random.Generator):
        """Generator form of :meth:`plan` (yields :class:`CDQuery` steps)."""
        robot = self.recorder.checker.robot
        q_start = robot.clamp(q_start)
        q_goal = robot.clamp(q_goal)
        result = PlanResult(success=False)

        latent = self.sampler.encode(self.environment_points, rng)
        result.encoder_inferences = 1

        path = yield from self._neural_plan(latent, q_start, q_goal, rng, result)
        if path is None:
            path = yield from self._fallback(q_start, q_goal, rng, result)
            if path is None:
                return result

        path = yield from shortcut_steps(self._prune_colliding(path), label="lvc")
        bad = yield CDQuery.feasibility(path, "feasibility")
        while bad is not None and result.replans < self.max_replans:
            result.replans += 1
            repaired = yield from self._replan_round(latent, path, rng, result)
            if repaired is None:
                return result
            repaired = self._prune_colliding(repaired)
            path = yield from shortcut_steps(repaired, label="lvc")
            bad = yield CDQuery.feasibility(path, "feasibility")

        if bad is not None:
            return result
        result.success = True
        result.path = path
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _neural_plan(self, latent, q_start, q_goal, rng, result: PlanResult):
        """Bidirectional neural planning: grow both ends toward each other."""
        forward = [np.asarray(q_start, dtype=float)]
        backward = [np.asarray(q_goal, dtype=float)]
        grow_forward = True
        for _ in range(self.max_neural_steps):
            tip_a = forward[-1] if grow_forward else backward[-1]
            tip_b = backward[-1] if grow_forward else forward[-1]
            q_new = self._propose(latent, tip_a, tip_b, rng, result)
            if grow_forward:
                forward.append(q_new)
            else:
                backward.append(q_new)
            if (yield CDQuery.steer(forward[-1], backward[-1], "neural_connect")):
                self.sampler.notify_success()
                return forward + backward[::-1]
            self.sampler.notify_failure()
            grow_forward = not grow_forward
        return None

    def _propose(self, latent, tip_a, tip_b, rng, result: PlanResult) -> np.ndarray:
        """One planner step: a single sample, or the best of a dropout batch.

        With ``candidates_per_step > 1`` the planner draws several
        dropout-diverse proposals and keeps the one that makes the most
        progress toward the target among those not in collision (each
        candidate costs one pose check and one NN inference).
        """
        n = self.candidates_per_step
        if n == 1:
            result.nn_inferences += 1
            return self.sampler.sample_next(latent, tip_a, tip_b, rng)
        candidates = self.sampler.sample_candidates(latent, tip_a, tip_b, rng, n)
        result.nn_inferences += n
        checker = self.recorder.checker
        best = None
        best_distance = float("inf")
        for candidate in candidates:
            distance = cspace_distance(candidate, tip_b)
            if distance < best_distance and not checker.check_pose(candidate):
                best = candidate
                best_distance = distance
        return best if best is not None else candidates[0]

    def _prune_colliding(self, path: List[np.ndarray]) -> List[np.ndarray]:
        """Drop intermediate waypoints that are themselves in collision.

        The neural sampler proposes states without checking them (lazy
        evaluation, as in MPNet); a colliding waypoint can never anchor a
        repair, so it is removed before contraction and replanning.  All
        interior waypoints are checked in one ``check_poses`` batch (every
        verdict is needed, so the call site is batch-shaped).
        """
        if len(path) <= 2:
            return list(path)
        checker = self.recorder.checker
        interior = np.stack([np.asarray(q, dtype=float) for q in path[1:-1]])
        hits = checker.check_poses(interior)
        kept = [path[0]]
        kept += [q for q, hit in zip(path[1:-1], hits) if not hit]
        kept.append(path[-1])
        return kept

    def _replan_round(self, latent, path: List[np.ndarray], rng, result: PlanResult):
        """One MPNet replanning round: walk the path and re-plan *every*
        consecutive pair that is not directly connectable, neurally first
        and with the RRT-Connect hybrid as fallback."""
        new_path: List[np.ndarray] = [path[0]]
        for index in range(len(path) - 1):
            seg_start, seg_end = path[index], path[index + 1]
            if (yield CDQuery.steer(seg_start, seg_end, "replan_check")):
                new_path.append(seg_end)
                continue
            sub = yield from self._neural_plan(latent, seg_start, seg_end, rng, result)
            if sub is not None and (
                (yield CDQuery.feasibility(sub, "replan_verify")) is not None
            ):
                # The neural patch connected its tips but left an infeasible
                # interior segment; escalate to the classical planner, whose
                # edges are verified by construction (hybrid replanning).
                # (One multi-motion FEASIBILITY phase instead of per-segment
                # steers: same early-exit verdict, a batch-shaped work unit.)
                sub = None
            if sub is None:
                sub = yield from self._fallback(seg_start, seg_end, rng, result)
                if sub is None:
                    return None
            new_path.extend(sub[1:])
        return new_path

    def _fallback(self, q_start, q_goal, rng, result: PlanResult):
        """Hybrid replanning: classical RRT-Connect on the same recorder."""
        result.fallback_used = True
        planner = RRTConnectPlanner(
            self.recorder, max_iterations=self.fallback_iterations, max_step=0.5
        )
        path = yield from planner.plan_steps(q_start, q_goal, rng)
        if path is not None and cspace_distance(path[0], q_start) > 1e-9:
            return None
        return path
