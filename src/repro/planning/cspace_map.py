"""C-space obstacle maps for 2-DOF robots (the Figure 2/3 picture).

The paper explains motion planning in the robot's configuration space:
workspace obstacles project into C-space regions ("C-obst") that paths
must avoid.  For a 2-DOF robot the C-space is a plane, so the projection
can be computed exactly by dense pose sampling and rendered as ASCII —
useful for teaching, debugging planners, and validating that paths stay
in free space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.collision.checker import RobotEnvironmentChecker

FREE_GLYPH = "."
COBST_GLYPH = "#"
PATH_GLYPH = "*"
ENDPOINT_GLYPH = "@"


@dataclass
class CSpaceMap:
    """A sampled C-space occupancy grid for a 2-DOF robot."""

    occupancy: np.ndarray  # (cells, cells) bool, True = colliding
    lower: np.ndarray  # (2,) joint lower bounds
    upper: np.ndarray  # (2,) joint upper bounds

    @property
    def cells(self) -> int:
        return self.occupancy.shape[0]

    @property
    def obstacle_fraction(self) -> float:
        """Fraction of C-space covered by C-obst."""
        return float(np.count_nonzero(self.occupancy)) / self.occupancy.size

    def index_of(self, q) -> tuple:
        """Grid cell of a configuration (clamped)."""
        q = np.asarray(q, dtype=float)
        rel = (q - self.lower) / (self.upper - self.lower)
        idx = np.clip((rel * self.cells).astype(int), 0, self.cells - 1)
        return int(idx[0]), int(idx[1])

    def is_colliding(self, q) -> bool:
        return bool(self.occupancy[self.index_of(q)])

    def render(self, path: Optional[Sequence[np.ndarray]] = None) -> str:
        """ASCII map: rows are joint 2 (top = max), columns joint 1.

        A piecewise-linear ``path`` overlays as ``*`` with ``@`` endpoints.
        """
        canvas = [
            [COBST_GLYPH if self.occupancy[i, j] else FREE_GLYPH for i in range(self.cells)]
            for j in range(self.cells)
        ]

        def plot(q, glyph):
            i, j = self.index_of(q)
            canvas[self.cells - 1 - j][i] = glyph

        if path is not None and len(path) > 0:
            for q_start, q_end in zip(path[:-1], path[1:]):
                q_start = np.asarray(q_start, dtype=float)
                q_end = np.asarray(q_end, dtype=float)
                steps = max(2, 2 * self.cells)
                for t in np.linspace(0.0, 1.0, steps):
                    plot(q_start + t * (q_end - q_start), PATH_GLYPH)
            plot(path[0], ENDPOINT_GLYPH)
            plot(path[-1], ENDPOINT_GLYPH)
        return "\n".join("".join(row) for row in canvas)


def build_cspace_map(
    checker: RobotEnvironmentChecker, cells: int = 48
) -> CSpaceMap:
    """Sample the checker over the 2-DOF joint box.

    Cell (i, j) holds the verdict at the cell's center configuration, so
    the map is a visualization aid, not a conservative planner input.
    """
    robot = checker.robot
    if robot.dof != 2:
        raise ValueError(f"C-space maps need a 2-DOF robot, got dof={robot.dof}")
    if cells < 2:
        raise ValueError(f"cells must be >= 2, got {cells}")
    lower = robot.joint_limits[:, 0].copy()
    upper = robot.joint_limits[:, 1].copy()
    occupancy = np.zeros((cells, cells), dtype=bool)
    q1s = lower[0] + (np.arange(cells) + 0.5) / cells * (upper[0] - lower[0])
    q2s = lower[1] + (np.arange(cells) + 0.5) / cells * (upper[1] - lower[1])
    for i, q1 in enumerate(q1s):
        for j, q2 in enumerate(q2s):
            occupancy[i, j] = checker.check_pose(np.array([q1, q2]))
    return CSpaceMap(occupancy=occupancy, lower=lower, upper=upper)


def path_stays_free(cspace_map: CSpaceMap, path: List[np.ndarray], steps: int = 200) -> bool:
    """Whether a densely sampled path avoids the mapped C-obst cells."""
    if len(path) < 2:
        return True
    for q_start, q_end in zip(path[:-1], path[1:]):
        q_start = np.asarray(q_start, dtype=float)
        q_end = np.asarray(q_end, dtype=float)
        for t in np.linspace(0.0, 1.0, steps):
            if cspace_map.is_colliding(q_start + t * (q_end - q_start)):
                return False
    return True
