"""Greedy shortcutting / lazy vertex contraction (path optimization).

Section 2.1: "in a greedy shortcutting algorithm, linear motions between p2
and {p3, ..., pN} are checked for collision.  If a motion from p2 to pi is
collision-free, poses p3..pi-1 are considered redundant."  Each anchor's
candidate set is recorded as one CONNECTIVITY phase, since the scheduler may
stop at the first collision-free motion — this is the workload that makes
the connectivity function mode useful (Section 7.1.1).  The fan-out is
already batch-shaped: under :class:`~repro.planning.engine.BatchedEngine`
each anchor's whole candidate set resolves in one vectorized dispatch, and
under :class:`~repro.planning.engine.SimulatedEngine` it is exactly the
inter-motion parallel phase SAS exploits.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.planning.queries import CDQuery, drive_queries
from repro.planning.recorder import CDTraceRecorder


def greedy_shortcut(
    path: List[np.ndarray],
    recorder: CDTraceRecorder,
    label: str = "shortcut",
) -> List[np.ndarray]:
    """Remove redundant intermediate poses by greedy contraction.

    For each anchor pose, candidate far-to-near connections are tested until
    one is collision-free; all poses between the anchor and the connected
    pose are dropped.  The input path is not modified.
    """
    return drive_queries(shortcut_steps(path, label=label), recorder)


def shortcut_steps(path: List[np.ndarray], label: str = "shortcut"):
    """Generator form of :func:`greedy_shortcut` (yields :class:`CDQuery`)."""
    if len(path) <= 2:
        # Trivial paths get the same per-waypoint normalization as the
        # general branch below — callers must never observe integer-dtype
        # (or otherwise unnormalized) waypoints just because the path was
        # too short to shortcut.
        return [np.asarray(q, dtype=float) for q in path]
    result = [np.asarray(q, dtype=float) for q in path]
    anchor = 0
    while anchor < len(result) - 2:
        # Candidates from the far end down to (but excluding) the neighbor.
        candidate_indices = list(range(len(result) - 1, anchor + 1, -1))
        targets = [result[k] for k in candidate_indices]
        found = yield CDQuery.connectivity(result[anchor], targets, label)
        if found is not None:
            connected = candidate_indices[found]
            if connected > anchor + 1:
                del result[anchor + 1 : connected]
        anchor += 1
    return result
