"""Path quality metrics.

MPNet's headline software claim is better paths as well as faster planning
("40% improvement in path quality", Section 1).  These metrics let the
repository compare planner outputs: C-space length, smoothness (direction
changes), and environment clearance sampled along the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.collision.checker import RobotEnvironmentChecker, interpolate_motion
from repro.planning.cspace import path_length, rowwise_norms


@dataclass(frozen=True)
class PathQuality:
    """Quality summary of one path."""

    length: float
    waypoints: int
    smoothness: float  # mean absolute turn angle (radians) at waypoints
    min_clearance: Optional[float]  # None when clearance was not sampled


def path_smoothness(path: List[np.ndarray]) -> float:
    """Mean turning angle at interior waypoints (0 = straight line).

    One vectorized ``diff``/norm/arccos pass over the whole path; each
    waypoint's angle is bit-identical to the per-waypoint scalar
    computation (same BLAS-ddot dot products and norms, same clip/arccos).
    """
    if len(path) < 3:
        return 0.0
    waypoints = np.asarray(path, dtype=float)
    diffs = np.diff(waypoints, axis=0)
    norms = rowwise_norms(diffs)
    dots = (diffs[:-1][:, None, :] @ diffs[1:][:, :, None])[:, 0, 0]
    valid = (norms[:-1] >= 1e-12) & (norms[1:] >= 1e-12)
    if not valid.any():
        return 0.0
    cosines = np.clip(
        dots[valid] / (norms[:-1][valid] * norms[1:][valid]), -1.0, 1.0
    )
    return float(np.mean(np.arccos(cosines)))


def workspace_clearance(
    checker: RobotEnvironmentChecker,
    q,
    probe_step: float = 0.02,
    max_probe: float = 0.3,
    collider=None,
) -> float:
    """Approximate clearance of a pose: how far the robot's links can grow
    before the octree reports a collision.

    Probed by inflating every link OBB uniformly; returns the largest
    inflation that stays collision-free (capped at ``max_probe``).  A pose
    already in collision has clearance 0.

    Pass ``collider`` (an ``OBBOctreeCollider`` over ``checker.octree``) to
    amortize its construction across poses; by default a fresh one is built
    per call.
    """
    from repro.collision.octree_cd import OBBOctreeCollider
    from repro.geometry.obb import OBB

    if collider is None:
        collider = OBBOctreeCollider(checker.octree, checker.collider.config)
    base_obbs = checker.link_obbs(q)
    if any(collider.collides(obb) for obb in base_obbs):
        return 0.0
    inflation = probe_step
    while inflation <= max_probe:
        grown = [
            OBB(obb.center, np.asarray(obb.half_extents) + inflation, obb.rotation)
            for obb in base_obbs
        ]
        if any(collider.collides(obb) for obb in grown):
            return inflation - probe_step
        inflation += probe_step
    return max_probe


def evaluate_path(
    path: List[np.ndarray],
    checker: Optional[RobotEnvironmentChecker] = None,
    clearance_samples: int = 5,
) -> PathQuality:
    """Quality summary; clearance is sampled when a checker is provided."""
    if not path:
        return PathQuality(length=0.0, waypoints=0, smoothness=0.0, min_clearance=None)
    min_clearance: Optional[float] = None
    if checker is not None and len(path) >= 2 and clearance_samples > 0:
        # Sample poses uniformly along the discretized path.
        poses = []
        for q_start, q_end in zip(path[:-1], path[1:]):
            poses.extend(interpolate_motion(q_start, q_end, checker.motion_step))
        if poses:
            from repro.collision.octree_cd import OBBOctreeCollider

            indices = np.linspace(0, len(poses) - 1, clearance_samples).astype(int)
            collider = OBBOctreeCollider(checker.octree, checker.collider.config)
            min_clearance = min(
                workspace_clearance(checker, poses[i], collider=collider)
                for i in indices
            )
    return PathQuality(
        length=path_length(path),
        waypoints=len(path),
        smoothness=path_smoothness(path),
        min_clearance=min_clearance,
    )
