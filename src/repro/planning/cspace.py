"""Configuration-space helpers (Section 2.1, Figure 2).

A robot's C-space has one dimension per degree of freedom; a point is a
pose, and the straight segment between two points is the short motion the
local planner produces by linear interpolation.
"""

from __future__ import annotations

from typing import List

import numpy as np


def cspace_distance(q_a, q_b) -> float:
    """Euclidean joint-space distance between two configurations."""
    return float(np.linalg.norm(np.asarray(q_b, dtype=float) - np.asarray(q_a, dtype=float)))


def path_length(path: List[np.ndarray]) -> float:
    """Total C-space length of a piecewise-linear path."""
    if len(path) < 2:
        return 0.0
    return float(
        sum(cspace_distance(path[i], path[i + 1]) for i in range(len(path) - 1))
    )


def straight_line_path(q_start, q_end, n_points: int = 2) -> List[np.ndarray]:
    """A trivial path of ``n_points`` poses along the straight segment."""
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    return [np.array(q) for q in np.linspace(q_start, q_end, n_points)]


def steer_toward(q_from, q_to, max_step: float) -> np.ndarray:
    """Move from ``q_from`` toward ``q_to`` by at most ``max_step``."""
    q_from = np.asarray(q_from, dtype=float)
    q_to = np.asarray(q_to, dtype=float)
    delta = q_to - q_from
    distance = float(np.linalg.norm(delta))
    if distance <= max_step or distance == 0.0:
        return q_to.copy()
    return q_from + delta * (max_step / distance)


def rowwise_norms(rows) -> np.ndarray:
    """Euclidean norm of every row, bit-identical to per-row ``np.linalg.norm``.

    ``np.linalg.norm`` on a 1-D vector is ``sqrt(dot(x, x))`` through BLAS;
    the stacked ``(N,1,D) @ (N,D,1)`` product runs the same ddot kernel per
    row, so the batch reproduces N scalar calls bit for bit (pinned by
    ``tests/test_nodestore.py``).
    """
    rows = np.asarray(rows, dtype=float)
    return np.sqrt((rows[:, None, :] @ rows[:, :, None])[:, 0, 0])


def rowwise_distances(qs, target) -> np.ndarray:
    """Per-row Euclidean distance to ``target``; the vectorized twin of
    calling :func:`cspace_distance` once per row."""
    qs = np.asarray(qs, dtype=float)
    return rowwise_norms(qs - np.asarray(target, dtype=float))


def steer_toward_batch(q_from, q_to, max_step: float) -> np.ndarray:
    """Row-wise :func:`steer_toward`: each output row is bit-identical to
    ``steer_toward(q_from[i], q_to[i], max_step)``.

    The per-row arithmetic replicates the scalar helper exactly: the same
    elementwise delta, the same BLAS-ddot norm (:func:`rowwise_norms`), the
    same scalar ``max_step / distance`` rescale applied only to rows beyond
    ``max_step``.
    """
    q_from = np.asarray(q_from, dtype=float)
    q_to = np.asarray(q_to, dtype=float)
    deltas = q_to - q_from
    distances = rowwise_norms(deltas)
    # Scalar near/degenerate branch (distance <= max_step or distance == 0
    # with max_step > 0) collapses to distance <= max_step.
    out = q_to.copy()
    far = distances > max_step
    if far.any():
        scale = max_step / distances[far]
        out[far] = q_from[far] + deltas[far] * scale[:, None]
    return out
