"""Configuration-space helpers (Section 2.1, Figure 2).

A robot's C-space has one dimension per degree of freedom; a point is a
pose, and the straight segment between two points is the short motion the
local planner produces by linear interpolation.
"""

from __future__ import annotations

from typing import List

import numpy as np


def cspace_distance(q_a, q_b) -> float:
    """Euclidean joint-space distance between two configurations."""
    return float(np.linalg.norm(np.asarray(q_b, dtype=float) - np.asarray(q_a, dtype=float)))


def path_length(path: List[np.ndarray]) -> float:
    """Total C-space length of a piecewise-linear path."""
    if len(path) < 2:
        return 0.0
    return float(
        sum(cspace_distance(path[i], path[i + 1]) for i in range(len(path) - 1))
    )


def straight_line_path(q_start, q_end, n_points: int = 2) -> List[np.ndarray]:
    """A trivial path of ``n_points`` poses along the straight segment."""
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    return [np.array(q) for q in np.linspace(q_start, q_end, n_points)]


def steer_toward(q_from, q_to, max_step: float) -> np.ndarray:
    """Move from ``q_from`` toward ``q_to`` by at most ``max_step``."""
    q_from = np.asarray(q_from, dtype=float)
    q_to = np.asarray(q_to, dtype=float)
    delta = q_to - q_from
    distance = float(np.linalg.norm(delta))
    if distance <= max_step or distance == 0.0:
        return q_to.copy()
    return q_from + delta * (max_step / distance)
