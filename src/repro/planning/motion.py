"""Motions, CD phases, and scheduler function modes.

A *motion* is the straight C-space segment between two adjacent poses,
discretized into the poses the collision detector checks (Figure 6a).  A
*phase* is the unit of work the controller hands to SAS: a group of motions
plus a function mode telling the scheduler when it may stop (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

import numpy as np

from repro.collision.checker import RobotEnvironmentChecker, interpolate_motion


class FunctionMode(Enum):
    """SAS function modes (Section 5.1)."""

    #: Are *all* motions collision-free?  Stop on the first colliding pose.
    FEASIBILITY = "feasibility"
    #: Is *at least one* motion collision-free?  Stop on the first free motion.
    CONNECTIVITY = "connectivity"
    #: Report the outcome of every motion.
    COMPLETE = "complete"


class MotionRecord:
    """One discretized motion with lazily computed ground-truth collisions.

    The simulator may probe poses in any order (that is the whole point of
    SAS), so per-pose outcomes are cached on first request rather than
    precomputed front to back.
    """

    def __init__(self, poses: np.ndarray, checker: Optional[RobotEnvironmentChecker]):
        poses = np.asarray(poses, dtype=float)
        if poses.ndim != 2 or len(poses) < 2:
            raise ValueError(f"a motion needs >= 2 poses, got shape {poses.shape}")
        self.poses = poses
        self._checker = checker
        self._outcomes: List[Optional[bool]] = [None] * len(poses)
        self._n_unevaluated = len(poses)

    @classmethod
    def from_endpoints(
        cls, q_start, q_end, checker: RobotEnvironmentChecker
    ) -> "MotionRecord":
        return cls(interpolate_motion(q_start, q_end, checker.motion_step), checker)

    @classmethod
    def from_precomputed(cls, poses: np.ndarray, outcomes: List[bool]) -> "MotionRecord":
        """A motion whose per-pose outcomes are already known.

        Used when replaying serialized traces (the artifact-style workflow):
        no collision substrate is needed, the stored ground truth answers
        every query.
        """
        motion = cls(poses, checker=None)
        if len(outcomes) != len(motion.poses):
            raise ValueError(
                f"need {len(motion.poses)} outcomes, got {len(outcomes)}"
            )
        motion._outcomes = [bool(o) for o in outcomes]
        motion._n_unevaluated = 0
        return motion

    def evaluate_all(self) -> List[bool]:
        """Force ground truth for every pose (used before serialization)."""
        return [self.pose_collides(i) for i in range(self.num_poses)]

    def unevaluated_indices(self) -> List[int]:
        """Pose indices whose ground truth has not been computed yet."""
        return [i for i, outcome in enumerate(self._outcomes) if outcome is None]

    @property
    def fully_unevaluated(self) -> bool:
        """True when no pose has cached ground truth yet (O(1)).

        The motion prefilter only targets such motions: a motion with any
        warm pose is left to the exact path, keeping the eligibility check
        off the per-pose hot loop.
        """
        return self._n_unevaluated == self.num_poses

    def set_pose_outcome(self, index: int, hit: bool) -> None:
        """Install externally computed ground truth for one pose.

        Used by :func:`repro.accel.sas.prime_phase` to fill the cache from
        one vectorized ``check_poses`` dispatch instead of N lazy
        ``check_pose`` calls.
        """
        if self._outcomes[index] is None:
            self._n_unevaluated -= 1
        self._outcomes[index] = bool(hit)

    def install_outcomes(self, hits) -> None:
        """Install ground truth for *every* pose from one dispatch block.

        The bulk twin of per-index :meth:`set_pose_outcome`, used by the
        fused batched engine: ``hits[i]`` is pose ``i``'s collision flag,
        typically a ``.tolist()`` slice of the phase-wide dispatch output.
        """
        hits = list(hits)
        if len(hits) != self.num_poses:
            raise ValueError(
                f"need {self.num_poses} outcomes, got {len(hits)}"
            )
        self._outcomes = [bool(hit) for hit in hits]
        self._n_unevaluated = 0

    def set_all_free(self) -> None:
        """Install collision-free ground truth for every pose at once.

        Only a *proof* justifies this call — the motion prefilter's
        certification is one (a certified motion's every discretized pose
        is collision-free under the exact cascade).  After this the motion
        behaves exactly as if each pose had been evaluated individually.
        """
        self._outcomes = [False] * self.num_poses
        self._n_unevaluated = 0

    @property
    def num_poses(self) -> int:
        return len(self.poses)

    @property
    def start(self) -> np.ndarray:
        return self.poses[0]

    @property
    def end(self) -> np.ndarray:
        return self.poses[-1]

    def pose_collides(self, index: int) -> bool:
        """Ground-truth collision outcome of pose ``index`` (cached)."""
        outcome = self._outcomes[index]
        if outcome is None:
            if self._checker is None:
                raise RuntimeError(
                    "motion has no checker and no precomputed outcome for "
                    f"pose {index}"
                )
            outcome = self._checker.check_pose(self.poses[index])
            self._outcomes[index] = outcome
            self._n_unevaluated -= 1
        return outcome

    def is_collision_free(self) -> bool:
        """Sequential ground truth for the whole motion (early exit)."""
        return self.first_collision() is None

    def first_collision(self) -> Optional[int]:
        """Index of the first colliding pose in sequential order, or None."""
        for index in range(self.num_poses):
            if self.pose_collides(index):
                return index
        return None

    def evaluated_count(self) -> int:
        """How many poses have ground truth cached (for test introspection)."""
        return sum(1 for outcome in self._outcomes if outcome is not None)


@dataclass
class CDPhase:
    """A scheduler work unit: motions + function mode + a provenance label.

    Phases assembled by :class:`~repro.planning.recorder.CDTraceRecorder`
    additionally carry the fused SoA layout: ``stacked`` is the phase's
    every pose as one contiguous ``(total_poses, dof)`` block (each
    motion's ``poses`` is a row-range view into it), with ``offsets`` /
    ``counts`` giving motion ``m`` the rows
    ``stacked[offsets[m] : offsets[m] + counts[m]]``.  The batched engine
    dispatches ``stacked`` directly — no per-pose re-marshalling — and the
    swept prefilter bounds it without re-concatenating.  Phases built
    elsewhere (tests, serialized-trace replay) may leave the layout fields
    ``None``; every consumer falls back to the per-motion view.
    """

    mode: FunctionMode
    motions: List[MotionRecord]
    label: str = ""
    stacked: Optional[np.ndarray] = field(default=None, compare=False, repr=False)
    offsets: Optional[np.ndarray] = field(default=None, compare=False, repr=False)
    counts: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if not self.motions:
            raise ValueError("a CD phase needs at least one motion")

    @property
    def total_poses(self) -> int:
        return sum(m.num_poses for m in self.motions)

    def sequential_reference(self) -> "SequentialOutcome":
        """Work and outcome of the early-exiting sequential evaluation.

        This is the work-efficiency baseline the paper compares every
        parallel schedule against: motions run one after another, poses in
        order, stopping as soon as the function mode allows.
        """
        tests = 0
        outcomes: List[Optional[bool]] = [None] * len(self.motions)
        for index, motion in enumerate(self.motions):
            collided = False
            for pose_index in range(motion.num_poses):
                tests += 1
                if motion.pose_collides(pose_index):
                    collided = True
                    break
            outcomes[index] = collided
            if self.mode is FunctionMode.FEASIBILITY and collided:
                break
            if self.mode is FunctionMode.CONNECTIVITY and not collided:
                break
        return SequentialOutcome(tests=tests, outcomes=outcomes)


@dataclass
class SequentialOutcome:
    """Reference sequential evaluation: test count and per-motion verdicts.

    ``outcomes[i]`` is None when the mode allowed stopping before motion i.
    """

    tests: int
    outcomes: List[Optional[bool]] = field(default_factory=list)
