"""Query engines: pluggable execution backends for planner CD phases.

Planners describe their collision workload as :class:`CDPhase`s (motions +
a scheduler function mode) and hand them to :class:`CDTraceRecorder`, which
delegates *answering* to a :class:`QueryEngine`.  Three interchangeable
backends implement the same semantics contract:

- :class:`SequentialEngine` — the early-exiting sequential reference a CPU
  implementation would run (motions in order, poses front to back, stop as
  soon as the function mode allows).  This is the default and the ground
  truth the other engines are differential-tested against.
- :class:`BatchedEngine` — answers a whole phase with **one** vectorized
  ``BatchPoseEvaluator`` dispatch over every undecided pose (the VAMP /
  pRRTC strategy), then charges the checker's :class:`CollisionStats` for
  exactly the pose prefix the sequential early exit would have executed.
  Verdicts *and* operation counts are bit-identical to the sequential
  engine; only wall-clock changes.  Requires a ``backend="batch"`` checker.
- :class:`SimulatedEngine` — routes each phase through an inline
  :class:`~repro.accel.sas.SASSimulator` run, so a planner run produces
  cycle/energy numbers and (optionally invariant-audited)
  :class:`~repro.accel.sas.SASResult`s *as it plans*, instead of via
  post-hoc trace replay.  Ground truth beyond the sequential prefix is
  resolved up front (vectorized with a batch checker, scalar otherwise)
  and its cost is diverted to ``shadow_stats`` so the planner-visible
  operation counts still match the sequential reference exactly.

The semantics guarantee all three share: for the same phase stream, the
per-motion verdicts (and therefore every planner decision, path, and the
checker's recorded ``CollisionStats``) are identical.  The engines differ
only in how the ground truth is *computed* (lazy scalar loop, one
vectorized dispatch, primed dispatch + cycle-accurate simulation) and in
what side products they leave behind (nothing, a warm outcome cache, a
stream of ``SASResult``s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.planning.motion import CDPhase, FunctionMode

if TYPE_CHECKING:  # import at runtime would cycle through repro.accel
    from repro.accel.telemetry import MetricsRegistry

__all__ = [
    "PhaseAnswer",
    "QueryEngine",
    "SequentialEngine",
    "BatchedEngine",
    "SimulatedEngine",
    "ENGINE_KINDS",
    "make_engine",
    "walk_warm_phase",
]


@dataclass
class PhaseAnswer:
    """What a query engine decided about one phase.

    ``outcomes[i]`` is True when motion ``i`` collides, False when it is
    collision-free, and None when the function mode allowed stopping before
    motion ``i`` was evaluated — the same convention as
    :class:`~repro.planning.motion.SequentialOutcome`.
    """

    outcomes: List[Optional[bool]] = field(default_factory=list)
    engine: str = "sequential"

    def first_colliding(self) -> Optional[int]:
        """Index of the first colliding motion, or None (FEASIBILITY answer)."""
        for index, outcome in enumerate(self.outcomes):
            if outcome is True:
                return index
        return None

    def first_free(self) -> Optional[int]:
        """Index of the first free motion, or None (CONNECTIVITY answer)."""
        for index, outcome in enumerate(self.outcomes):
            if outcome is False:
                return index
        return None

    @property
    def all_free(self) -> bool:
        return self.first_colliding() is None

    def flags(self) -> List[bool]:
        """Per-motion collision flags (COMPLETE answer; every motion decided)."""
        if any(outcome is None for outcome in self.outcomes):
            raise ValueError("undecided motions; flags() needs a COMPLETE answer")
        return [bool(outcome) for outcome in self.outcomes]


class QueryEngine:
    """Base class: telemetry wrapping around a backend's ``_answer``.

    ``answer`` wraps every phase in an ``engine.phase`` telemetry scope and
    maintains per-engine and per-function-mode counters
    (``engine.<name>.phases``, ``engine.mode.<mode>``, ``engine.motions``,
    ``engine.poses``); subclasses implement ``_answer``.
    """

    name = "base"

    def __init__(
        self,
        checker=None,
        telemetry: MetricsRegistry | None = None,
        fault_injector=None,
    ):
        self.checker = checker
        self.telemetry = telemetry
        # Optional repro.resilience.faults.FaultInjector: an answered phase
        # may raise TransientEngineFault/EngineTimeoutFault before the
        # backend runs (the runtime retries these with bounded backoff).
        # One predicate per answer when absent or disabled.
        self.fault_injector = fault_injector

    def answer(self, phase: CDPhase) -> PhaseAnswer:
        injector = self.fault_injector
        if injector is not None and injector.enabled:
            injector.engine_phase(phase.label or phase.mode.value)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            label = f"{self.name}:{phase.label or phase.mode.value}"
            with tel.scope("engine.phase", label):
                answer = self._answer(phase)
            tel.counter(f"engine.{self.name}.phases").inc()
            tel.counter(f"engine.mode.{phase.mode.value}").inc()
            tel.counter("engine.motions").inc(len(phase.motions))
            tel.counter("engine.poses").inc(phase.total_poses)
        else:
            answer = self._answer(phase)
        answer.engine = self.name
        return answer

    def _answer(self, phase: CDPhase) -> PhaseAnswer:
        raise NotImplementedError


class SequentialEngine(QueryEngine):
    """The early-exiting sequential reference (current CPU semantics).

    Delegates to :meth:`CDPhase.sequential_reference`, which evaluates
    motions in order and poses front to back through the lazy
    ``MotionRecord`` cache, stopping as soon as the function mode allows —
    so both the verdicts and the checker's recorded operation counts are
    exactly what the pre-engine recorder produced.
    """

    name = "sequential"

    def _answer(self, phase: CDPhase) -> PhaseAnswer:
        reference = phase.sequential_reference()
        return PhaseAnswer(outcomes=list(reference.outcomes))


def _batched_prime_and_answer(
    phase: CDPhase, checker, prefilter=None
) -> PhaseAnswer:
    """One vectorized dispatch for the whole phase + sequential charging.

    Every undecided pose across the phase's motions is stacked into a
    single ``BatchPoseEvaluator.evaluate`` call and installed into the
    motions' outcome caches; the answer is then the sequential reference
    walked over the (now warm) cache.  Stats stay bit-identical to the
    scalar engine: ``pose_checks`` and the per-operation counters are
    charged only for the poses the sequential early exit would have
    executed — the same prefix-charging contract as
    :meth:`RobotEnvironmentChecker.check_motion` with ``backend="batch"``.

    With a :class:`~repro.planning.swept.SweptMotionPrefilter`, every
    fully-undecided motion is first run through the conservative swept
    certification.  When the checker is *not* collecting per-operation
    stats, certified motions skip the exact dispatch entirely: their poses
    get provably-correct collision-free ground truth installed wholesale,
    and the walk charges ``pose_checks`` for exactly the poses the
    sequential reference would have visited — verdicts, per-pose ground
    truth, and ``pose_checks`` stay identical, only the priced per-op
    counters (which the checker is not collecting) go unaccounted.  With
    ``collect_stats`` on, certification still runs (feeding the prefilter
    counters) but nothing is skipped, so the recorded ``CollisionStats``
    stay bit-identical to the sequential reference.

    Phases carrying the recorder's fused SoA layout (``phase.stacked``)
    with every motion still unevaluated — the planner hot path — take
    :func:`_fused_prime_and_answer` instead: the same dispatch, charging,
    and verdicts, computed from the phase-level arrays without per-pose
    Python.
    """
    if phase.stacked is not None and all(
        motion.fully_unevaluated for motion in phase.motions
    ):
        return _fused_prime_and_answer(phase, checker, prefilter=prefilter)
    skipped = None
    if prefilter is not None:
        eligible = [m for m in phase.motions if m.fully_unevaluated]
        if eligible:
            certified = prefilter.certify_motions(eligible)
            if not checker.collect_stats and certified.any():
                skipped = set()
                for motion, is_free in zip(eligible, certified):
                    if is_free:
                        motion.set_all_free()
                        skipped.add(id(motion))

    if skipped:
        targets = [
            (motion, index)
            for motion in phase.motions
            if id(motion) not in skipped
            for index in motion.unevaluated_indices()
        ]
    else:
        targets = [
            (motion, index)
            for motion in phase.motions
            for index in motion.unevaluated_indices()
        ]
    outcome = None
    row_of = {}
    if targets:
        stacked = np.stack([motion.poses[index] for motion, index in targets])
        outcome = checker.evaluate_poses(stacked, need_work=checker.collect_stats)
        for row, ((motion, index), hit) in enumerate(zip(targets, outcome.hits)):
            motion.set_pose_outcome(index, bool(hit))
            row_of[(id(motion), index)] = row

    if skipped:
        outcomes, charged_rows, certified_checks = _walk_with_certified(
            phase, row_of, skipped
        )
        checker.stats.pose_checks += certified_checks
    else:
        outcomes, charged_rows = walk_warm_phase(phase, row_of)

    stats = checker.stats
    stats.pose_checks += len(charged_rows)
    if outcome is not None and charged_rows and checker.collect_stats:
        outcome.record(stats, poses=np.asarray(charged_rows, dtype=int))
    return PhaseAnswer(outcomes=outcomes)


def _ranges_to_rows(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + length)`` blocks, vectorized.

    Every length must be >= 1 (callers pass per-motion visited-pose counts,
    and a motion always has at least two poses).
    """
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    steps = np.ones(total, dtype=np.int64)
    steps[0] = starts[0]
    boundaries = np.cumsum(lengths)[:-1]
    previous_last = starts[:-1] + lengths[:-1] - 1
    steps[boundaries] = starts[1:] - previous_last
    return np.cumsum(steps)


def _fused_prime_and_answer(
    phase: CDPhase, checker, prefilter=None
) -> PhaseAnswer:
    """The SoA fast path of :func:`_batched_prime_and_answer`.

    Preconditions (checked by the caller): the phase carries the fused
    layout (``stacked``/``offsets``/``counts``) and every motion is fully
    unevaluated, so the dispatch target is exactly ``stacked`` (minus any
    prefilter-certified motions) and every visited pose charges its fresh
    dispatch row.  Everything the per-pose path computes with Python loops
    — the dispatch stack, the outcome install, the early-exiting
    sequential walk, the charged-row list — becomes a handful of array
    operations: first-hit-per-motion via ``flatnonzero`` + ``searchsorted``
    over the motion row ranges, verdict/visit vectors, and one
    block-``arange`` for the charged rows.  Verdicts, per-pose ground
    truth, and every ``CollisionStats`` charge are identical to the
    unfused path by construction (the dispatch rows and the walked prefix
    are the same sets, and all stats counters are order-independent
    integer sums).
    """
    motions = phase.motions
    stacked, offsets, counts = phase.stacked, phase.offsets, phase.counts
    n_motions = len(motions)
    total = len(stacked)

    # Prefilter: in skip mode (stats off), certification runs at span
    # granularity and certified *rows* — not just whole motions — are
    # elided from the exact dispatch; their ground truth is provably
    # collision-free.  With stats collection on, certification only feeds
    # the prefilter counters and everything dispatches.
    certified_rows = None
    if prefilter is not None:
        if checker.collect_stats:
            prefilter.certify_motions(motions, stacked=stacked, counts=counts)
        else:
            certified_rows, _ = prefilter.certify_pose_spans(
                motions, stacked, counts
            )
            if not certified_rows.any():
                certified_rows = None

    outcome = None
    need_work = checker.collect_stats
    if certified_rows is None:
        outcome = checker.evaluate_poses(stacked, need_work=need_work)
        hits = np.asarray(outcome.hits, dtype=bool)
    else:
        keep_rows = ~certified_rows
        hits = np.zeros(total, dtype=bool)
        if keep_rows.any():
            outcome = checker.evaluate_poses(
                stacked[keep_rows], need_work=need_work
            )
            hits[keep_rows] = outcome.hits

    hit_list = hits.tolist()
    for motion, offset, count in zip(
        motions, offsets.tolist(), counts.tolist()
    ):
        motion.install_outcomes(hit_list[offset : offset + count])

    # Sequential-reference walk, vectorized: first colliding pose per
    # motion, then the per-motion verdicts and visited-pose counts.
    collided = np.zeros(n_motions, dtype=bool)
    visited = counts
    if hits.any():
        hit_rows = np.flatnonzero(hits)
        first_pos = np.searchsorted(hit_rows, offsets)
        in_range = first_pos < len(hit_rows)
        first_row = np.where(
            in_range, hit_rows[np.minimum(first_pos, len(hit_rows) - 1)], -1
        )
        collided = in_range & (first_row < offsets + counts)
        visited = np.where(collided, first_row - offsets + 1, counts)

    mode = phase.mode
    if mode is FunctionMode.FEASIBILITY:
        stoppers = np.flatnonzero(collided)
        stop = int(stoppers[0]) if len(stoppers) else n_motions - 1
    elif mode is FunctionMode.CONNECTIVITY:
        stoppers = np.flatnonzero(~collided)
        stop = int(stoppers[0]) if len(stoppers) else n_motions - 1
    else:
        stop = n_motions - 1

    outcomes: List[Optional[bool]] = [None] * n_motions
    outcomes[: stop + 1] = collided[: stop + 1].tolist()

    # Charging: one pose check per pose the sequential reference visits —
    # whether that pose was freshly dispatched or span-certified.  The
    # priced per-op counters are recorded only with stats collection on,
    # where nothing was skipped and walk rows index the dispatch directly.
    checker.stats.pose_checks += int(visited[: stop + 1].sum())
    if checker.collect_stats and outcome is not None:
        charged_rows = _ranges_to_rows(offsets[: stop + 1], visited[: stop + 1])
        if len(charged_rows):
            outcome.record(checker.stats, poses=charged_rows)
    return PhaseAnswer(outcomes=outcomes)


def _walk_with_certified(phase: CDPhase, row_of: dict, skipped: set):
    """The warm-phase walk with an O(1) fast path for certified motions.

    Semantically identical to :func:`walk_warm_phase` over the same warm
    caches — certified motions are known all-free, so their per-pose inner
    loop collapses to ``outcome=False`` plus a ``num_poses`` bump of the
    pose-check charge (the sequential reference visits every pose of a
    free motion).  Returns ``(outcomes, charged_rows, certified_checks)``.
    """
    charged_rows: List[int] = []
    certified_checks = 0
    outcomes: List[Optional[bool]] = [None] * len(phase.motions)
    for motion_index, motion in enumerate(phase.motions):
        if id(motion) in skipped:
            collided = False
            certified_checks += motion.num_poses
        else:
            collided = False
            for pose_index in range(motion.num_poses):
                row = row_of.get((id(motion), pose_index))
                if row is not None:
                    charged_rows.append(row)
                if motion.pose_collides(pose_index):
                    collided = True
                    break
        outcomes[motion_index] = collided
        if phase.mode is FunctionMode.FEASIBILITY and collided:
            break
        if phase.mode is FunctionMode.CONNECTIVITY and not collided:
            break
    return outcomes, charged_rows, certified_checks


def walk_warm_phase(phase: CDPhase, row_of: dict):
    """Sequential-reference walk over warm outcome caches.

    Returns ``(outcomes, charged_rows)``: the per-motion verdicts the
    sequential engine would produce, plus — in execution order — the
    dispatch rows the scalar early exit would have charged.  ``row_of``
    maps ``(id(motion), pose_index)`` to the row that freshly evaluated
    that pose; poses warm before the dispatch have no row and charge
    nothing (their cost was charged when first evaluated).  Every pose the
    walk touches must already carry a cached ground-truth verdict.  Shared
    by the per-phase batched engine and the serving layer's cross-request
    batcher, which must charge each request's stats by exactly this walk.
    """
    charged_rows: List[int] = []
    outcomes: List[Optional[bool]] = [None] * len(phase.motions)
    for motion_index, motion in enumerate(phase.motions):
        collided = False
        for pose_index in range(motion.num_poses):
            row = row_of.get((id(motion), pose_index))
            if row is not None:
                charged_rows.append(row)
            if motion.pose_collides(pose_index):
                collided = True
                break
        outcomes[motion_index] = collided
        if phase.mode is FunctionMode.FEASIBILITY and collided:
            break
        if phase.mode is FunctionMode.CONNECTIVITY and not collided:
            break
    return outcomes, charged_rows


class BatchedEngine(QueryEngine):
    """Answers whole phases through one vectorized dispatch each.

    Requires a ``backend="batch"``
    :class:`~repro.collision.checker.RobotEnvironmentChecker` — the scalar
    checker has no vectorized pipeline to dispatch to.  As a side effect
    every pose of an answered phase carries cached ground truth, so a later
    SAS replay of the recorded trace needs no collision substrate at all.
    """

    name = "batch"

    def __init__(
        self,
        checker,
        telemetry: MetricsRegistry | None = None,
        fault_injector=None,
        prefilter: bool = False,
    ):
        if getattr(checker, "backend", "scalar") != "batch":
            raise ValueError(
                "BatchedEngine needs a backend='batch' checker; got "
                f"backend={getattr(checker, 'backend', None)!r}"
            )
        super().__init__(checker, telemetry, fault_injector=fault_injector)
        self._prefilter = None
        if prefilter:
            from repro.planning.swept import SweptMotionPrefilter

            self._prefilter = SweptMotionPrefilter(checker)

    @property
    def prefilter(self):
        """The :class:`SweptMotionPrefilter`, or None when disabled."""
        return self._prefilter

    def _answer(self, phase: CDPhase) -> PhaseAnswer:
        checker = self.checker
        if checker._bit_flips_active():
            # Bit-flip injection lives in the scalar quantized-OBB path;
            # answer through the sequential reference so every ground-truth
            # probe passes the corruption hook.
            return PhaseAnswer(outcomes=list(phase.sequential_reference().outcomes))
        return _batched_prime_and_answer(phase, checker, prefilter=self._prefilter)


class SimulatedEngine(QueryEngine):
    """Answers phases by running them through SAS inline while planning.

    Each phase is ground-truth-resolved up front, simulated on the wrapped
    :class:`~repro.accel.sas.SASSimulator` (one :class:`SASResult` appended
    to ``results`` per phase, invariant-audited when ``check_invariants``),
    and answered with the sequential reference — so planner decisions,
    paths, and recorded ``CollisionStats`` match the other engines exactly
    while cycle/energy numbers accumulate as the planner runs.

    Ground-truth resolution depends on the checker backend:

    - ``backend="batch"``: one vectorized dispatch per phase with
      sequential prefix charging (identical to :class:`BatchedEngine`);
    - scalar: the sequential prefix is evaluated lazily (charging the
      checker normally), then the remaining poses the simulator may probe
      are filled with the charges diverted to ``shadow_stats`` — the extra
      work is real, but it belongs to the simulation, not to the planner's
      query stream;
    - ``checker=None``: phases must carry precomputed outcomes (the
      serialized-trace replay workflow).

    The inline results equal a post-hoc
    :meth:`~repro.accel.sas.SASSimulator.run_phases` replay of the same
    recorded trace when simulator seed, policy, and configuration match
    and the policy's pose ordering is deterministic (every non-random
    Figure 7 policy, including the default MCSP).
    """

    name = "simulated"

    def __init__(
        self,
        checker=None,
        simulator=None,
        n_cdus: int = 16,
        policy="mcsp",
        config=None,
        latency_model=None,
        seed: int = 0,
        telemetry: MetricsRegistry | None = None,
        check_invariants: bool = True,
        record_timeline: bool = False,
        fault_injector=None,
    ):
        super().__init__(checker, telemetry, fault_injector=fault_injector)
        if simulator is None:
            from repro.accel.sas import SASSimulator, unit_latency_model

            simulator = SASSimulator(
                n_cdus=n_cdus,
                policy=policy,
                config=config,
                latency_model=latency_model or unit_latency_model,
                seed=seed,
                telemetry=telemetry,
                check_invariants=check_invariants,
                fault_injector=fault_injector,
            )
        self.simulator = simulator
        self.record_timeline = record_timeline
        #: One SASResult per answered phase, in phase order.
        self.results: List = []
        #: Collision work performed only to feed the simulator (scalar
        #: checkers): ground truth past the sequential early-exit boundary.
        from repro.collision.stats import CollisionStats

        self.shadow_stats = CollisionStats()

    def _answer(self, phase: CDPhase) -> PhaseAnswer:
        checker = self.checker
        if (
            checker is not None
            and getattr(checker, "backend", "scalar") == "batch"
            and not checker._bit_flips_active()
        ):
            answer = _batched_prime_and_answer(phase, checker)
        else:
            answer = PhaseAnswer(
                outcomes=list(phase.sequential_reference().outcomes)
            )
            if checker is not None:
                with checker.divert_stats(self.shadow_stats):
                    for motion in phase.motions:
                        motion.evaluate_all()
        result = self.simulator.run(phase, record_timeline=self.record_timeline)
        self.results.append(result)
        return answer

    # -- inline-simulation accessors -----------------------------------

    @property
    def total_cycles(self) -> int:
        return sum(result.cycles for result in self.results)

    @property
    def total_tests(self) -> int:
        return sum(result.tests for result in self.results)

    @property
    def total_energy_pj(self) -> float:
        return sum(result.energy_pj for result in self.results)

    def clear(self) -> None:
        self.results.clear()
        self.shadow_stats.reset()


#: Engine-kind names accepted by :func:`make_engine`.
ENGINE_KINDS = ("sequential", "batch", "simulated")


def make_engine(kind, checker, telemetry=None, **kwargs) -> QueryEngine:
    """Build a query engine from an :class:`repro.config.EngineConfig`.

    ``kind`` may be an ``EngineConfig`` (the typed API: its ``kind``,
    ``n_cdus``, ``policy``, ``seed``, ``check_invariants``, and
    ``record_timeline`` fields select and parameterize the engine) or —
    deprecated — a bare string (``"sequential"``/``"batch"``/
    ``"simulated"``).  Extra keyword arguments are forwarded to the engine
    constructor (e.g. ``fault_injector``).
    """
    import warnings

    if not isinstance(kind, str):  # EngineConfig (duck-typed to avoid a cycle)
        config = kind
        key = config.kind
        if key == "simulated":
            for name in ("n_cdus", "policy", "seed", "check_invariants",
                         "record_timeline"):
                kwargs.setdefault(name, getattr(config, name))
        elif key in ("batch", "batched"):
            kwargs.setdefault("prefilter", getattr(config, "prefilter", False))
    else:
        warnings.warn(
            "passing the engine kind as a string to make_engine is "
            "deprecated; pass a repro.config.EngineConfig instead",
            DeprecationWarning,
            stacklevel=2,
        )
        key = kind.lower()
    if key == "sequential":
        return SequentialEngine(checker, telemetry=telemetry, **kwargs)
    if key in ("batch", "batched"):
        return BatchedEngine(checker, telemetry=telemetry, **kwargs)
    if key in ("simulated", "sas"):
        return SimulatedEngine(checker, telemetry=telemetry, **kwargs)
    raise ValueError(f"unknown engine kind {key!r}; choose from {ENGINE_KINDS}")
