"""Bidirectional RRT-Connect planner.

Used both as the demonstration generator for training the neural sampler and
as the hybrid fallback/replanning engine inside the MPNet-style planner
(as in Qureshi et al.).

Both trees are :class:`~repro.planning.nodestore.NodeStore`s (SoA layout),
so every nearest-neighbor scan is one vectorized pass over the live prefix,
and the pRRTC-style multi-extend draws its candidate block with a single
stream-exact rng call and steers all candidates in one batch.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.planning.cspace import cspace_distance, steer_toward, steer_toward_batch
from repro.planning.nodestore import NodeStore, sample_configuration_block
from repro.planning.queries import CDQuery, drive_queries
from repro.planning.recorder import CDTraceRecorder

_TRAPPED, _ADVANCED, _REACHED = 0, 1, 2


class _Tree:
    """A thin tree facade over a :class:`NodeStore`."""

    def __init__(self, root, dof: int, scratch=None):
        self.store = NodeStore(dof, scratch=scratch)
        self.store.append(np.asarray(root, dtype=float))

    def nearest(self, target) -> int:
        return self.store.nearest(target)

    def node(self, index: int) -> np.ndarray:
        """The node's configuration row (a live store view, write-once)."""
        return self.store.configurations[index]

    def add(self, q, parent: int) -> int:
        return self.store.append(q, parent=parent)

    def path_to_root(self, index: int) -> List[np.ndarray]:
        return self.store.path_to_root(index)


class RRTConnectPlanner:
    """RRT-Connect: grow two trees toward each other with a greedy connect.

    With ``batch_extends > 1`` each iteration runs a pRRTC-style
    multi-extend: that many samples are drawn at once, each steered from
    its nearest node in the same tree snapshot, and all candidate motions
    are evaluated as one COMPLETE phase — a single vectorized dispatch
    under the batched engine instead of one phase per sample.  The default
    of 1 preserves the classical single-extend control flow (and its rng
    stream) exactly.
    """

    def __init__(
        self,
        recorder: CDTraceRecorder,
        max_iterations: int = 1000,
        max_step: float = 0.5,
        batch_extends: int = 1,
    ):
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if max_step <= 0:
            raise ValueError(f"max_step must be positive, got {max_step}")
        if batch_extends < 1:
            raise ValueError(f"batch_extends must be >= 1, got {batch_extends}")
        self.recorder = recorder
        self.max_iterations = max_iterations
        self.max_step = max_step
        self.batch_extends = batch_extends

    def plan(
        self, q_start, q_goal, rng: np.random.Generator
    ) -> Optional[List[np.ndarray]]:
        return drive_queries(self.plan_steps(q_start, q_goal, rng), self.recorder)

    def plan_steps(self, q_start, q_goal, rng: np.random.Generator):
        """Generator form of :meth:`plan` (yields :class:`CDQuery` steps)."""
        checker = self.recorder.checker
        robot = checker.robot
        scratch = getattr(checker, "shared_scratch", None)
        tree_a = _Tree(robot.clamp(q_start), robot.dof, scratch=scratch)
        tree_b = _Tree(robot.clamp(q_goal), robot.dof, scratch=scratch)
        a_is_start = True

        for _ in range(self.max_iterations):
            if self.batch_extends > 1:
                status, new_index = yield from self._extend_batch(
                    tree_a, robot, rng
                )
            else:
                sample = robot.random_configuration(rng)
                status, new_index = yield from self._extend(tree_a, sample)
            if status != _TRAPPED:
                q_new = tree_a.node(new_index)
                status_b, index_b = yield from self._connect(tree_b, q_new)
                if status_b == _REACHED:
                    return self._join(tree_a, new_index, tree_b, index_b, a_is_start)
            tree_a, tree_b = tree_b, tree_a
            a_is_start = not a_is_start
        return None

    def _extend(self, tree: _Tree, target):
        near = tree.nearest(target)
        q_near = tree.node(near)
        q_new = steer_toward(q_near, target, self.max_step)
        if not (yield CDQuery.steer(q_near, q_new, "rrtc_extend")):
            return _TRAPPED, -1
        index = tree.add(q_new, near)
        if cspace_distance(q_new, target) < 1e-9:
            return _REACHED, index
        return _ADVANCED, index

    def _extend_batch(self, tree: _Tree, robot, rng: np.random.Generator):
        """pRRTC-style multi-extend: B steer attempts funneled into one phase.

        ``batch_extends`` samples are drawn as one stream-exact block
        (:func:`sample_configuration_block`) and each is steered from its
        nearest node in the *same* tree snapshot (no candidate sees
        another candidate as a potential parent), so the B candidate
        motions are independent and can be evaluated as a single COMPLETE
        phase.  Every collision-free candidate joins the tree; the first
        one added plays the classical extend's role of the new node the
        follow-up connect grows toward.
        """
        samples = sample_configuration_block(robot, rng, self.batch_extends)
        parents = [tree.nearest(sample) for sample in samples]
        candidates = steer_toward_batch(
            tree.store.configurations[parents], samples, self.max_step
        )
        collides = yield CDQuery.complete(
            [
                (tree.node(parent), q_new)
                for parent, q_new in zip(parents, candidates)
            ],
            "rrtc_multi_extend",
        )
        first_index = -1
        for parent, q_new, hit in zip(parents, candidates, collides):
            if hit:
                continue
            index = tree.add(q_new, parent)
            if first_index < 0:
                first_index = index
        if first_index < 0:
            return _TRAPPED, -1
        return _ADVANCED, first_index

    def _connect(self, tree: _Tree, target):
        """Greedy straight-line connect, issued as one extend sweep.

        The classical CONNECT repeatedly extends toward ``target`` from the
        branch it is growing, so the whole sweep is known up front: the
        ``max_step`` waypoints from the nearest node to the target.  They
        are checked as a single multi-motion FEASIBILITY phase (one
        vectorized dispatch under the batched engine; an inter-motion
        parallel work unit for SAS) and the free prefix joins the tree.
        """
        near = tree.nearest(target)
        q_near = tree.node(near)
        waypoints: List[np.ndarray] = []
        cursor = q_near
        while cspace_distance(cursor, target) >= 1e-9:
            cursor = steer_toward(cursor, target, self.max_step)
            waypoints.append(cursor)
        if not waypoints:
            # The tree already contains the target configuration.
            return _REACHED, near
        bad = yield CDQuery.feasibility([q_near] + waypoints, "rrtc_connect")
        index = near
        n_free = len(waypoints) if bad is None else bad
        for waypoint in waypoints[:n_free]:
            index = tree.add(waypoint, index)
        if bad is None:
            return _REACHED, index
        return _TRAPPED, -1

    @staticmethod
    def _join(tree_a, index_a, tree_b, index_b, a_is_start) -> List[np.ndarray]:
        half_a = tree_a.path_to_root(index_a)  # new node ... root
        half_b = tree_b.path_to_root(index_b)
        if a_is_start:
            path = list(reversed(half_a)) + half_b[1:]
        else:
            path = list(reversed(half_b)) + half_a[1:]
        return path
