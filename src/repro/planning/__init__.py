"""Sampling-based motion planning on top of the collision substrate.

This package provides the motion planning workload the accelerator executes:
classical planners (RRT, RRT-Connect) used for training data and fallback,
greedy shortcutting (path optimization), and an MPNet-style learning-based
planner.  Every collision query a planner issues flows through a
:class:`CDTraceRecorder`, which captures the *phases* (groups of motions plus
a scheduler function mode) and delegates answering them to a pluggable
:class:`QueryEngine` — sequential reference, one-dispatch batched, or
inline SAS simulation (see :mod:`repro.planning.engine`).  The SAS and
MPAccel simulators replay the recorded phases (or, with the simulated
engine, price them as the planner runs).
"""

from repro.planning.cspace import path_length, straight_line_path
from repro.planning.engine import (
    BatchedEngine,
    PhaseAnswer,
    QueryEngine,
    SequentialEngine,
    SimulatedEngine,
    make_engine,
)
from repro.planning.metrics import PathQuality, evaluate_path, path_smoothness
from repro.planning.motion import FunctionMode, MotionRecord, CDPhase
from repro.planning.mpnet import MPNetPlanner, PlanResult
from repro.planning.prm import PRMPlanner
from repro.planning.queries import CDQuery, drive_queries
from repro.planning.recorder import CDTraceRecorder
from repro.planning.rrt import RRTPlanner
from repro.planning.rrt_connect import RRTConnectPlanner
from repro.planning.samplers import HeuristicSampler, NeuralSampler
from repro.planning.shortcut import greedy_shortcut

#: The recorder-only planner registry: planners that can be built from a
#: bare :class:`CDTraceRecorder` with no extra scene context.  This is the
#: single source of truth for planner-name strings — the :mod:`repro.api`
#: facade and the serving layer (:class:`repro.serving.PlanningService`,
#: :class:`repro.serving.fleet.PlanningFleet`) all validate and construct
#: through it.  (``"mpnet"`` is deliberately absent: the neural planner
#: needs a sampler and a scanned point cloud.)
PLANNER_FACTORIES = {
    "rrt": RRTPlanner,
    "rrt_connect": RRTConnectPlanner,
    "prm": PRMPlanner,
}


__all__ = [
    "PLANNER_FACTORIES",
    "FunctionMode",
    "MotionRecord",
    "CDPhase",
    "CDQuery",
    "drive_queries",
    "CDTraceRecorder",
    "QueryEngine",
    "PhaseAnswer",
    "SequentialEngine",
    "BatchedEngine",
    "SimulatedEngine",
    "make_engine",
    "RRTPlanner",
    "RRTConnectPlanner",
    "PRMPlanner",
    "MPNetPlanner",
    "PlanResult",
    "HeuristicSampler",
    "NeuralSampler",
    "greedy_shortcut",
    "path_length",
    "straight_line_path",
    "PathQuality",
    "evaluate_path",
    "path_smoothness",
]
