"""Rapidly-exploring Random Tree (RRT) planner.

The classical sampling-based baseline.  Every edge check goes through the
trace recorder, so an RRT run produces the same kind of CD phase stream the
accelerator consumes (a long sequence of single-motion feasibility checks).
Single-tree RRT extends one edge per iteration and each extension depends
on the previous one, so its phases are inherently single-motion — it is
the workload where the query-engine layer's batching helps least, included
as the contrast case to PRM edge batches and RRT-Connect sweeps.

The tree lives in a :class:`~repro.planning.nodestore.NodeStore` (VAMP-style
SoA layout): one preallocated configuration array with parent indices, so
the per-iteration nearest-neighbor scan is a single vectorized pass over
the live prefix instead of a re-stack of a Python list.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.planning.cspace import cspace_distance, steer_toward
from repro.planning.nodestore import NodeStore
from repro.planning.queries import CDQuery, drive_queries
from repro.planning.recorder import CDTraceRecorder


class RRTPlanner:
    """Single-tree RRT with goal biasing."""

    def __init__(
        self,
        recorder: CDTraceRecorder,
        max_iterations: int = 2000,
        max_step: float = 0.5,
        goal_bias: float = 0.1,
        goal_tolerance: float = 1e-6,
    ):
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if max_step <= 0:
            raise ValueError(f"max_step must be positive, got {max_step}")
        if not 0.0 <= goal_bias <= 1.0:
            raise ValueError(f"goal_bias must be in [0, 1], got {goal_bias}")
        self.recorder = recorder
        self.max_iterations = max_iterations
        self.max_step = max_step
        self.goal_bias = goal_bias
        self.goal_tolerance = goal_tolerance

    def plan(
        self, q_start, q_goal, rng: np.random.Generator
    ) -> Optional[List[np.ndarray]]:
        """A collision-free path from start to goal, or None on failure."""
        return drive_queries(self.plan_steps(q_start, q_goal, rng), self.recorder)

    def plan_steps(self, q_start, q_goal, rng: np.random.Generator):
        """Generator form of :meth:`plan`: yields :class:`CDQuery` steps.

        Identical control flow to the synchronous API — ``plan`` drives
        this very generator — but suspendable at collision-query
        boundaries so the serving layer can batch queries across requests.
        """
        checker = self.recorder.checker
        robot = checker.robot
        q_start = robot.clamp(q_start)
        q_goal = robot.clamp(q_goal)
        tree = NodeStore(robot.dof, scratch=getattr(checker, "shared_scratch", None))
        tree.append(np.asarray(q_start, dtype=float))

        for _ in range(self.max_iterations):
            if rng.random() < self.goal_bias:
                target = q_goal
            else:
                target = robot.random_configuration(rng)
            near_index = tree.nearest(target)
            q_near = tree.configurations[near_index]
            q_new = steer_toward(q_near, target, self.max_step)
            if not (yield CDQuery.steer(q_near, q_new, "rrt_extend")):
                continue
            new_index = tree.append(q_new, parent=near_index)
            if cspace_distance(q_new, q_goal) <= self.goal_tolerance:
                return self._trace_back(tree, new_index)
            # Try to connect the new node straight to the goal.
            if cspace_distance(q_new, q_goal) <= self.max_step and (
                yield CDQuery.steer(q_new, q_goal, "rrt_goal")
            ):
                goal_index = tree.append(
                    np.asarray(q_goal, dtype=float), parent=new_index
                )
                return self._trace_back(tree, goal_index)
        return None

    @staticmethod
    def _trace_back(tree: NodeStore, index: int) -> List[np.ndarray]:
        path = tree.path_to_root(index)
        path.reverse()
        return path
