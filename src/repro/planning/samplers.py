"""Pose samplers for the learning-based planner.

The MPNet planner asks a sampler for "the next intermediate pose from here
toward there".  Two implementations are provided:

- :class:`NeuralSampler` wraps the trained ENet/PNet pair — the faithful
  MPNet configuration.
- :class:`HeuristicSampler` is a deterministic-cost stand-in (goal-directed
  step plus Gaussian exploration noise) that produces the same *trace
  structure* at a fraction of the Python cost; the benchmark harness uses
  it by default so full figure sweeps stay fast.  Its ``macs`` mirror the
  original MPNet networks so DNN-accelerator timing stays realistic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.neural.mpnet_nets import (
    MPNetModel,
    ORIGINAL_ENET_MACS,
    ORIGINAL_PNET_MACS,
    fixed_size_cloud,
)
from repro.planning.nodestore import sample_configuration_block  # noqa: F401
from repro.robot.model import RobotModel


class HeuristicSampler:
    """Goal-directed stochastic sampler with MPNet-shaped cost accounting.

    Each call steps at most ``max_step`` toward the target and perturbs the
    step with Gaussian noise, mimicking the dropout-driven diversity of the
    neural sampler.  The noise scale grows with ``stagnation`` so repeated
    failures explore more aggressively (MPNet gets the same effect from
    re-sampling with dropout).
    """

    def __init__(
        self,
        robot: RobotModel,
        max_step: float = 0.6,
        noise: float = 0.25,
    ):
        if max_step <= 0:
            raise ValueError(f"max_step must be positive, got {max_step}")
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.robot = robot
        self.max_step = max_step
        self.noise = noise
        self.stagnation = 0

    @property
    def pnet_macs(self) -> int:
        return ORIGINAL_PNET_MACS

    @property
    def enet_macs(self) -> int:
        return ORIGINAL_ENET_MACS

    def encode(self, environment_points: np.ndarray, rng: np.random.Generator):
        """No latent needed; returns None (cost still accounted upstream)."""
        return None

    def sample_next(
        self,
        latent,
        q_current: np.ndarray,
        q_target: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        q_current = np.asarray(q_current, dtype=float)
        q_target = np.asarray(q_target, dtype=float)
        delta = q_target - q_current
        distance = float(np.linalg.norm(delta))
        if distance > self.max_step:
            step = delta * (self.max_step / distance)
        else:
            step = delta
        scale = self.noise * (1.0 + 0.5 * self.stagnation) * min(1.0, distance)
        noise = rng.normal(0.0, scale, size=q_current.shape)
        return self.robot.clamp(q_current + step + noise)

    def sample_candidates(
        self,
        latent,
        q_current: np.ndarray,
        q_target: np.ndarray,
        rng: np.random.Generator,
        n: int,
    ) -> list:
        """``n`` independent proposals (diverse by the exploration noise)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        return [self.sample_next(latent, q_current, q_target, rng) for _ in range(n)]

    def notify_failure(self) -> None:
        """Widen exploration after a failed connection attempt."""
        self.stagnation = min(self.stagnation + 1, 8)

    def notify_success(self) -> None:
        self.stagnation = 0


class NeuralSampler:
    """The trained MPNet pair as a sampler."""

    def __init__(self, model: MPNetModel, robot: RobotModel):
        if model.dof != robot.dof:
            raise ValueError(
                f"model dof {model.dof} does not match robot dof {robot.dof}"
            )
        self.model = model
        self.robot = robot

    @property
    def pnet_macs(self) -> int:
        return self.model.pnet.macs

    @property
    def enet_macs(self) -> int:
        return self.model.enet.macs

    def encode(
        self, environment_points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        cloud = fixed_size_cloud(environment_points, self.model.n_cloud_points, rng)
        return self.model.encode(cloud)

    def sample_next(
        self,
        latent: np.ndarray,
        q_current: np.ndarray,
        q_target: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        prediction = self.model.next_pose(latent, q_current, q_target, rng=rng)
        return self.robot.clamp(prediction)

    def sample_candidates(
        self,
        latent: np.ndarray,
        q_current: np.ndarray,
        q_target: np.ndarray,
        rng: np.random.Generator,
        n: int,
    ) -> list:
        """``n`` dropout-diverse proposals from the same network state.

        This is how MPNet draws multiple candidates: dropout stays active
        at inference, so repeated forward passes differ.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        return [
            self.sample_next(latent, q_current, q_target, rng) for _ in range(n)
        ]

    def notify_failure(self) -> None:
        """Dropout already injects diversity; nothing to adapt."""

    def notify_success(self) -> None:
        pass
