"""Multi-client planning service with cross-request batching.

The serving layer runs many concurrent planning requests on one
deterministic simulated clock, coalescing their collision-detection phases
into shared vectorized dispatches and memoizing verdicts in an
octree-versioned cache — while keeping every request's answers, path, and
operation counts bit-identical to running it alone.
"""

from repro.serving.batcher import CrossRequestBatcher, FlushReport
from repro.serving.service import (
    PlanningService,
    PlanRequest,
    PlanResponse,
    ServiceReport,
)

__all__ = [
    "CrossRequestBatcher",
    "FlushReport",
    "PlanningService",
    "PlanRequest",
    "PlanResponse",
    "ServiceReport",
]
