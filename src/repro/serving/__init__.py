"""Multi-client planning service with cross-request batching.

The serving layer runs many concurrent planning requests on one
deterministic simulated clock, coalescing their collision-detection phases
into shared vectorized dispatches and memoizing verdicts in an
octree-versioned cache — while keeping every request's answers, path, and
operation counts bit-identical to running it alone.

Overload is a first-class regime: seeded open-loop traffic models
(:mod:`repro.serving.traffic`) replay bursty arrivals bit-identically, and
the admission layer (:mod:`repro.serving.admission`) sheds infeasible work
with typed statuses, enforces per-client fairness via deficit round-robin,
and preempts requests that exceed their priced energy budget.

Scaling past the single event loop is the fleet layer
(:mod:`repro.serving.fleet`): N service shards behind a deterministic
router (:mod:`repro.serving.router`), tiered local+global verdict caches,
and optional multiprocessing workers fed through shared-memory scene
buffers — bit-identical to the inline drain by construction.
"""

from repro.serving.admission import (
    AdmissionController,
    DeficitRoundRobin,
    RequestStatus,
    SHED_REASONS,
    overload_level,
    priced_energy_pj,
)
from repro.serving.batcher import CrossRequestBatcher, FlushReport
from repro.serving.fleet import FleetReport, PlanningFleet
from repro.serving.router import FleetRouter
from repro.serving.service import (
    PlanningService,
    PlanRequest,
    PlanResponse,
    ServiceReport,
    group_pending_by_epoch,
)
from repro.serving.traffic import (
    TrafficEvent,
    TrafficSpec,
    TrafficTrace,
    requests_from_trace,
)

__all__ = [
    "AdmissionController",
    "CrossRequestBatcher",
    "DeficitRoundRobin",
    "FleetReport",
    "FleetRouter",
    "FlushReport",
    "PlanningFleet",
    "PlanningService",
    "PlanRequest",
    "PlanResponse",
    "RequestStatus",
    "SHED_REASONS",
    "ServiceReport",
    "TrafficEvent",
    "TrafficSpec",
    "TrafficTrace",
    "group_pending_by_epoch",
    "overload_level",
    "priced_energy_pj",
    "requests_from_trace",
]
