"""The multi-client planning service: admission, batching, deadlines.

:class:`PlanningService` accepts many concurrent plan requests and runs
them to completion on one deterministic *simulated clock* — no threads, no
wall-clock nondeterminism.  Planners are suspendable generators
(``plan_steps``, :mod:`repro.planning.queries`), so the service interleaves
requests at collision-query boundaries:

1. **Arrival.**  ``submit`` enqueues a request either immediately or at a
   future simulated time (``arrival_ms``), which is how seeded traffic
   traces (:mod:`repro.serving.traffic`) replay open-loop arrivals: the
   drain loop ingests each arrival when the clock reaches it, and fast-
   forwards the clock to the next arrival when the service is idle.
2. **Admission.**  Queued requests wait in a priority queue with an
   explicit, documented order — ``(priority, arrival_us, sequence)``, so
   equal-priority requests are admitted strictly FIFO by arrival and the
   tiebreak among simultaneous arrivals is submission order (pinned by
   ``tests/test_serving_overload.py``).  At most ``max_inflight`` run at
   once.  With ``admission_control`` on, the gates of
   :mod:`repro.serving.admission` may *shed* a request instead — at
   arrival (queue full, provably/estimably infeasible deadline,
   best-effort refusal under overload) or at dequeue (deadline expired
   while queued) — producing a typed ``status="shed"`` response with a
   named reason; the planner never runs.  With ``fairness`` on, admission
   runs deficit round-robin over ``client_id`` instead of the global
   queue, so a flooding client cannot starve the others.
3. **Rounds.**  Each round resumes every in-flight request's generator to
   its next CD phase (degenerate queries are answered inline per the
   recorder contract), then flushes the collected phases through the
   :class:`~repro.serving.batcher.CrossRequestBatcher` in windows of
   ``batch_window`` phases — one vectorized dispatch per window, coalescing
   work *across* requests.  Windows are grouped by environment epoch
   (:func:`group_pending_by_epoch`): requests planning against the same
   octree version coalesce into the same flush, so a flush never mixes
   epochs (cache-aware routing).
4. **Deadlines and budgets.**  Every request carries a
   :class:`~repro.resilience.deadline.DeadlineBudget` (simulated
   milliseconds).  By default a miss is flagged on the response; with
   ``cancel_on_deadline_miss`` the request is cancelled at the next
   scheduling point after its budget lapses.  With
   ``preempt_energy_budget_pj`` set, a request whose consumed work —
   priced through the MPAccel energy model
   (:func:`repro.serving.admission.priced_energy_pj`) — exceeds the budget
   is preempted at the next scheduling point (``status="preempted"``).

**Determinism and per-request bit-identity.**  The round structure, the
admission order, the shed set, and the simulated cost model are all pure
functions of the submitted requests and the
:class:`~repro.config.ServiceConfig`; there is no hidden state.  Because
each planner is one generator driven by answers that are bit-identical to
a solo run (see :mod:`repro.serving.batcher`), every *surviving* request's
path, verdicts, and :class:`~repro.collision.stats.CollisionStats` are
independent of arrival interleaving, batch window size, and the other
requests in flight — pinned by ``tests/test_serving.py`` and
``tests/test_serving_overload.py``.  With every overload knob at its
default the service reproduces the pre-overload behavior bit-for-bit.

The simulated cost model (microseconds) makes batching visible in service
latency: a batched dispatch costs ``dispatch_overhead_us`` once plus
per-pose costs (cheap for cache hits), while sequential mode pays the
overhead per phase and the full per-pose cost — the same
overhead-amortization argument as the paper's SAS dispatch model.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collision.cache import CollisionCache
from repro.collision.checker import RobotEnvironmentChecker
from repro.collision.stats import CollisionStats
from repro.config import ReproConfig
from repro.env.diff import octree_delta_regions
from repro.env.octree import Octree
from repro.geometry.aabb import AABB
from repro.planning.engine import SequentialEngine
from repro.planning.recorder import CDTraceRecorder
from repro.resilience.deadline import DeadlineBudget
from repro.resilience.degradation import degradation_histogram
from repro.resilience.faults import (
    EngineTimeoutFault,
    FaultInjector,
    TransientEngineFault,
)
from repro.robot.model import RobotModel
from repro.serving.admission import (
    AdmissionController,
    DeficitRoundRobin,
    priced_energy_pj,
)
from repro.serving.batcher import CrossRequestBatcher

__all__ = [
    "PlanRequest",
    "PlanResponse",
    "ServiceReport",
    "PlanningService",
    "group_pending_by_epoch",
]


@dataclass
class PlanRequest:
    """One client's planning query.

    ``planner`` names a built-in planner (``"rrt"``, ``"rrt_connect"``,
    ``"prm"``); ``planner_factory`` overrides it with any callable taking a
    recorder and returning an object with ``plan_steps(q_start, q_goal,
    rng)``.  ``seed`` feeds the request's private RNG; ``deadline_ms`` (in
    simulated milliseconds) defaults to the service's
    ``default_deadline_ms``.  Lower ``priority`` admits first.

    ``client_id`` groups requests for fairness accounting (deficit
    round-robin under ``ServiceConfig.fairness``); ``size`` is the
    request's fairness cost, in the same units as ``fairness_quantum``
    (heavy-tailed sizes come from the traffic model).
    """

    request_id: str
    q_start: object
    q_goal: object
    planner: str = "rrt_connect"
    planner_factory: Optional[object] = None
    seed: int = 0
    priority: int = 0
    deadline_ms: Optional[float] = None
    client_id: str = ""
    size: float = 1.0


@dataclass
class PlanResponse:
    """What the service returns for one request.

    ``status`` is the typed terminal state (the values of
    :class:`repro.serving.admission.RequestStatus`): ``"completed"``,
    ``"cancelled"`` (deadline policy), ``"shed"`` (refused at admission —
    ``shed_reason`` names the gate), ``"preempted"`` (energy budget), or
    ``"failed"`` (engine-fault retries exhausted).  Only ``"completed"``
    responses can carry a path.
    """

    request_id: str
    success: bool
    path: Optional[list]
    result: object
    stats: CollisionStats
    num_phases: int
    submitted_ms: float
    admitted_ms: float
    completed_ms: float
    deadline_ms: Optional[float]
    deadline_missed: bool
    cancelled: bool
    env_epoch: int
    status: str = "completed"
    shed_reason: Optional[str] = None
    client_id: str = ""

    @property
    def latency_ms(self) -> float:
        """Submission-to-terminal latency, clamped non-negative.

        Well-defined for every terminal status: a request shed at its own
        arrival instant has latency exactly 0.0, never a negative value
        from float round-off.
        """
        return max(0.0, self.completed_ms - self.submitted_ms)

    _KEYS = (
        "request_id",
        "success",
        "path",
        "result",
        "stats",
        "num_phases",
        "submitted_ms",
        "admitted_ms",
        "completed_ms",
        "deadline_ms",
        "deadline_missed",
        "cancelled",
        "env_epoch",
        "status",
        "shed_reason",
        "client_id",
    )

    def to_dict(self) -> dict:
        """JSON-native payload (nested inside a serialized report)."""
        if self.result is None:
            result: dict = {"kind": "none"}
        elif isinstance(self.result, list):
            result = {"kind": "path", "path": _path_to_lists(self.result)}
        else:
            result = {
                "kind": "plan_result",
                "success": bool(self.result.success),
                "path": _path_to_lists(self.result.path),
                "nn_inferences": int(self.result.nn_inferences),
                "encoder_inferences": int(self.result.encoder_inferences),
                "fallback_used": bool(self.result.fallback_used),
                "replans": int(self.result.replans),
            }
        return {
            "request_id": self.request_id,
            "success": self.success,
            "path": None if self.path is None else _path_to_lists(self.path),
            "result": result,
            "stats": self.stats.as_dict(),
            "num_phases": self.num_phases,
            "submitted_ms": self.submitted_ms,
            "admitted_ms": self.admitted_ms,
            "completed_ms": self.completed_ms,
            "deadline_ms": self.deadline_ms,
            "deadline_missed": self.deadline_missed,
            "cancelled": self.cancelled,
            "env_epoch": self.env_epoch,
            "status": self.status,
            "shed_reason": self.shed_reason,
            "client_id": self.client_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlanResponse":
        from repro.harness.reports import check_keys

        check_keys("PlanResponse", data, cls._KEYS)
        raw = data["result"]
        result: object
        if raw["kind"] == "none":
            result = None
        elif raw["kind"] == "path":
            result = _path_from_lists(raw["path"])
        elif raw["kind"] == "plan_result":
            from repro.planning.mpnet import PlanResult

            result = PlanResult(
                success=raw["success"],
                path=_path_from_lists(raw["path"]),
                nn_inferences=raw["nn_inferences"],
                encoder_inferences=raw["encoder_inferences"],
                fallback_used=raw["fallback_used"],
                replans=raw["replans"],
            )
        else:
            raise ValueError(f"unknown result kind {raw['kind']!r}")
        return cls(
            request_id=data["request_id"],
            success=data["success"],
            path=(
                None if data["path"] is None else _path_from_lists(data["path"])
            ),
            result=result,
            stats=CollisionStats.from_dict(data["stats"]),
            num_phases=data["num_phases"],
            submitted_ms=data["submitted_ms"],
            admitted_ms=data["admitted_ms"],
            completed_ms=data["completed_ms"],
            deadline_ms=data["deadline_ms"],
            deadline_missed=data["deadline_missed"],
            cancelled=data["cancelled"],
            env_epoch=data["env_epoch"],
            status=data["status"],
            shed_reason=data["shed_reason"],
            client_id=data["client_id"],
        )


def _path_to_lists(path) -> list:
    """Waypoints as nested float lists (exact: doubles survive JSON)."""
    return [np.asarray(q, dtype=float).tolist() for q in path]


def _path_from_lists(rows: list) -> list:
    return [np.asarray(q, dtype=float) for q in rows]


@dataclass
class ServiceReport:
    """Aggregate accounting for one :meth:`PlanningService.run` drain."""

    responses: Dict[str, PlanResponse]
    sim_ms: float
    rounds: int
    dispatches: int
    phases_answered: int
    poses_dispatched: int
    cache_counters: Optional[dict]
    #: Terminal-status tally over ``responses`` (completed/cancelled/...).
    status_counts: Dict[str, int] = field(default_factory=dict)
    #: Shed-reason tally (zero-filled when admission control is off).
    shed_counts: Dict[str, int] = field(default_factory=dict)
    #: Overload-level histogram over arrival-gate checks (admission only).
    overload_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.responses.values() if r.success)

    @property
    def shed(self) -> int:
        return sum(1 for r in self.responses.values() if r.status == "shed")

    @property
    def goodput(self) -> int:
        """Completed, successful responses that met their deadline."""
        return sum(
            1
            for r in self.responses.values()
            if r.status == "completed" and r.success and not r.deadline_missed
        )

    @property
    def requests_per_sim_s(self) -> float:
        """Terminal responses per simulated second (0.0 on a zero-time
        drain — e.g. every request shed at arrival — never a
        division-by-zero)."""
        if self.sim_ms <= 0:
            return 0.0
        return len(self.responses) / (self.sim_ms / 1e3)

    @property
    def goodput_per_sim_s(self) -> float:
        """Useful completions per simulated second (same zero-time guard)."""
        if self.sim_ms <= 0:
            return 0.0
        return self.goodput / (self.sim_ms / 1e3)

    _KEYS = (
        "responses",
        "sim_ms",
        "rounds",
        "dispatches",
        "phases_answered",
        "poses_dispatched",
        "cache_counters",
        "status_counts",
        "shed_counts",
        "overload_histogram",
    )

    def to_dict(self) -> dict:
        """Serialize under the common report protocol (kind
        ``"service_report"``; see :mod:`repro.harness.reports`)."""
        from repro.harness.reports import stamp_report

        return stamp_report(
            "service_report",
            {
                "responses": {
                    rid: response.to_dict()
                    for rid, response in sorted(self.responses.items())
                },
                "sim_ms": self.sim_ms,
                "rounds": self.rounds,
                "dispatches": self.dispatches,
                "phases_answered": self.phases_answered,
                "poses_dispatched": self.poses_dispatched,
                "cache_counters": self.cache_counters,
                "status_counts": dict(self.status_counts),
                "shed_counts": dict(self.shed_counts),
                "overload_histogram": dict(self.overload_histogram),
            },
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceReport":
        from repro.harness.reports import unpack_report

        body = unpack_report(data, "service_report", cls._KEYS)
        return cls(
            responses={
                rid: PlanResponse.from_dict(response)
                for rid, response in body["responses"].items()
            },
            sim_ms=body["sim_ms"],
            rounds=body["rounds"],
            dispatches=body["dispatches"],
            phases_answered=body["phases_answered"],
            poses_dispatched=body["poses_dispatched"],
            cache_counters=body["cache_counters"],
            status_counts=dict(body["status_counts"]),
            shed_counts=dict(body["shed_counts"]),
            overload_histogram=dict(body["overload_histogram"]),
        )


class _Task:
    """Internal per-request state (generator + recorder + clocks)."""

    __slots__ = (
        "request",
        "gen",
        "recorder",
        "deadline",
        "submitted_us",
        "admitted_us",
        "pending_value",
        "pending_item",
        "done",
        "result",
        "cancelled",
        "status",
        "env_epoch",
        "retries",
    )

    def __init__(self, request, gen, recorder, deadline, submitted_us, env_epoch):
        self.request = request
        self.gen = gen
        self.recorder = recorder
        self.deadline: Optional[DeadlineBudget] = deadline
        self.submitted_us = submitted_us
        self.admitted_us = submitted_us
        self.pending_value = None
        self.pending_item = None  # (query, phase) awaiting a batched answer
        self.done = False
        self.result = None
        self.cancelled = False
        self.status = "completed"
        self.env_epoch = env_epoch
        self.retries = 0


def group_pending_by_epoch(pending: List[_Task]) -> List[List[_Task]]:
    """Partition pending tasks into flush groups by environment epoch.

    Groups are ordered by epoch (oldest first) and preserve scheduling
    order within a group, so a flush window never mixes requests planning
    against different octree versions — requests sharing an epoch coalesce
    into the same vectorized dispatch and share its cache locality.  (The
    service only changes epochs while nothing is in flight, so at runtime
    a single drain sees one group; the partition is the documented routing
    rule and is unit-tested directly.)
    """
    groups: Dict[int, List[_Task]] = {}
    for task in pending:
        groups.setdefault(task.env_epoch, []).append(task)
    return [groups[epoch] for epoch in sorted(groups)]


class PlanningService:
    """Deterministic multi-client planning service over one environment.

    ``config`` is a :class:`~repro.config.ReproConfig`; its ``service``
    section selects the mode (``"batched"`` coalesces phases across
    requests, ``"sequential"`` is the single-client baseline), the batch
    window, admission limits, the simulated cost model, and the overload
    policy (admission control, fairness, preemption).  ``config.cache``
    controls the shared octree-versioned verdict cache.

    Fault injection is configured through the typed config:
    ``ServiceConfig(fault_models=..., fault_seed=...)`` builds the
    service-owned :class:`repro.resilience.faults.FaultInjector` threaded
    through per-request checkers and sequential-mode engines; engine phase
    faults are retried up to ``max_fault_retries`` times before the request
    fails with ``status="failed"`` (and no path).  The legacy
    ``fault_injector=`` kwarg still works behind a ``DeprecationWarning``
    shim (pinned bit-identical in ``tests/test_config_api.py``).

    ``cache=`` injects an externally owned cache — the fleet's hook for
    mounting a :class:`~repro.collision.cache.TieredCollisionCache` per
    shard; by default the service builds its own from ``config.cache``.
    """

    def __init__(
        self,
        robot: RobotModel,
        octree: Octree,
        config: Optional[ReproConfig] = None,
        telemetry=None,
        fault_injector=None,
        cache=None,
    ):
        if config is None:
            config = ReproConfig.for_service()
        if config.service.mode == "batched" and config.backend != "batch":
            raise ValueError(
                "service mode 'batched' requires backend 'batch' "
                "(cross-request coalescing dispatches through the vectorized "
                "pipeline); use ReproConfig.for_service() or service mode "
                "'sequential'"
            )
        self.robot = robot
        self.octree = octree
        self.config = config
        self.telemetry = telemetry
        if fault_injector is not None:
            if config.service.fault_models is not None:
                raise ValueError(
                    "faults configured twice: ServiceConfig.fault_models is "
                    "set and a fault_injector= was passed; use the config "
                    "field only"
                )
            warnings.warn(
                "PlanningService(fault_injector=...) is deprecated; "
                "configure faults with ServiceConfig(fault_models=..., "
                "fault_seed=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            self.fault_injector = fault_injector
        elif config.service.fault_models is not None:
            self.fault_injector = FaultInjector(
                models=config.service.fault_models,
                seed=config.service.fault_seed,
                telemetry=telemetry,
            )
        else:
            self.fault_injector = None
        self.env_epoch = 0
        self.clock_us = 0.0
        self.rounds = 0
        self._seq = 0
        self._queue: list = []  # (priority, arrival_us, seq, request)
        self._arrivals: list = []  # (arrival_us, seq, request) in the future
        self._inflight: List[_Task] = []
        self._responses: Dict[str, PlanResponse] = {}
        self._request_ids: set = set()

        service = config.service
        self.admission: Optional[AdmissionController] = None
        if service.admission_control:
            self.admission = AdmissionController(
                max_queue_depth=service.max_queue_depth,
                floor_ms=service.dispatch_overhead_us / 1e3,
                telemetry=telemetry,
            )
        self._drr: Optional[DeficitRoundRobin] = None
        if service.fairness:
            self._drr = DeficitRoundRobin(quantum=service.fairness_quantum)

        self.cache: Optional[CollisionCache] = None
        if cache is not None:
            if not config.cache.enabled:
                raise ValueError(
                    "cache= was injected but config.cache.enabled is False; "
                    "enable the cache section or drop the injection"
                )
            self.cache = cache
        elif config.cache.enabled:
            self.cache = CollisionCache(
                quantum=config.cache.quantum,
                max_entries=config.cache.max_entries,
                telemetry=telemetry,
            )

        self.batcher: Optional[CrossRequestBatcher] = None
        self._shared_evaluator = None
        if config.service.mode == "batched":
            shared = RobotEnvironmentChecker.from_config(
                robot, octree, config, cache=self.cache
            )
            self._shared_evaluator = shared.batch_evaluator
            self.batcher = CrossRequestBatcher(shared)

    # ------------------------------------------------------------------
    # Submission / environment
    # ------------------------------------------------------------------

    def submit(
        self, request: PlanRequest, arrival_ms: Optional[float] = None
    ) -> None:
        """Enqueue a request, now or at a future simulated time.

        With ``arrival_ms`` (simulated milliseconds, absolute) beyond the
        current clock the request is held until the drain loop's clock
        reaches it — the open-loop replay path for traffic traces; the
        admission gates run at that arrival instant, not at submission.
        """
        if request.request_id in self._request_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self._validate_planner(request)
        self._request_ids.add(request.request_id)
        arrival_us = (
            self.clock_us if arrival_ms is None else float(arrival_ms) * 1e3
        )
        if arrival_us > self.clock_us:
            heapq.heappush(
                self._arrivals, (arrival_us, self._next_seq(), request)
            )
        else:
            self._ingest(request, self.clock_us)

    def submit_many(
        self, requests: Sequence[Tuple[PlanRequest, Optional[float]]]
    ) -> None:
        """Submit ``(request, arrival_ms)`` pairs in order.

        The shape :func:`repro.serving.traffic.requests_from_trace` emits,
        and the shard-submission unit of the fleet protocol.
        """
        for request, arrival_ms in requests:
            self.submit(request, arrival_ms=arrival_ms)

    def _next_seq(self) -> int:
        """Monotone submission sequence (an int so state export can peek)."""
        seq = self._seq
        self._seq += 1
        return seq

    def _ingest(self, request: PlanRequest, arrival_us: float) -> None:
        """Run the arrival gate and enqueue (or shed) one request."""
        if self.admission is not None:
            decision = self.admission.check_arrival(
                queue_depth=self._queue_depth(),
                deadline_ms=self._effective_deadline_ms(request),
                priority=request.priority,
            )
            if not decision.admitted:
                self._shed(request, arrival_us, decision.reason)
                return
        seq = self._next_seq()
        if self._drr is not None:
            self._drr.push(
                request.client_id,
                request.priority,
                arrival_us,
                seq,
                request.size,
                (request, arrival_us),
            )
        else:
            # FIFO-stable ordering contract: among equal priorities,
            # strictly by arrival time, then by submission sequence.
            heapq.heappush(
                self._queue, (request.priority, arrival_us, seq, request)
            )

    def update_environment(self, octree: Octree) -> int:
        """Swap the environment octree between drains (service must be idle).

        Advances the environment epoch and selectively invalidates the
        shared cache from the changed-region boxes.  Returns the number of
        cache entries dropped.  Because the epoch can only change while
        nothing is queued or in flight, every task in a drain shares one
        epoch — the invariant behind :func:`group_pending_by_epoch`'s
        single-group fast path.
        """
        regions = octree_delta_regions(self.octree, octree)
        return self.apply_environment_update(
            octree, regions, self.env_epoch + 1
        )

    def apply_environment_update(
        self, octree: Octree, regions: Sequence[AABB], epoch: int
    ) -> int:
        """The shard half of the fleet's epoch-consistent update broadcast.

        The caller (:meth:`update_environment` solo, or
        :class:`repro.serving.fleet.PlanningFleet` fanning one update out)
        computes the changed-region boxes once and names the target epoch
        explicitly; every shard applies the same ``(octree, regions,
        epoch)`` triple, so all local cache tiers and the fleet's global
        tier advance through identical epoch sequences.  The epoch must be
        exactly the successor of this service's current epoch — a skipped
        or repeated broadcast is a protocol bug, not something to paper
        over.  Returns the number of cache entries dropped.
        """
        if self._queue_depth() or self._inflight or self._arrivals:
            raise RuntimeError(
                "update_environment requires an idle service (drain with "
                "run() first)"
            )
        if epoch != self.env_epoch + 1:
            raise ValueError(
                f"non-consecutive environment epoch: service is at "
                f"{self.env_epoch}, broadcast names {epoch} (expected "
                f"{self.env_epoch + 1})"
            )
        self.octree = octree
        self.env_epoch = epoch
        dropped = 0
        if self.cache is not None:
            dropped = self.cache.invalidate_regions(regions)
        if self.batcher is not None:
            shared = RobotEnvironmentChecker.from_config(
                self.robot, octree, self.config, cache=self.cache
            )
            self._shared_evaluator = shared.batch_evaluator
            self.batcher = CrossRequestBatcher(shared)
        return dropped

    def _effective_deadline_ms(self, request: PlanRequest) -> Optional[float]:
        if request.deadline_ms is not None:
            return request.deadline_ms
        return self.config.service.default_deadline_ms

    def _make_task(self, request: PlanRequest, arrival_us: float) -> _Task:
        checker = RobotEnvironmentChecker.from_config(
            self.robot,
            self.octree,
            self.config,
            cache=self.cache,
            fault_injector=self.fault_injector,
        )
        if self._shared_evaluator is not None:
            # All requests share one vectorized pipeline (it is stateless
            # apart from precomputed octree arrays).
            checker._batch_evaluator = self._shared_evaluator
        engine = SequentialEngine(checker, fault_injector=self.fault_injector)
        recorder = CDTraceRecorder(checker, engine=engine)
        planner = self._make_planner(request, recorder)
        rng = np.random.default_rng(request.seed)
        gen = planner.plan_steps(request.q_start, request.q_goal, rng)
        deadline_ms = self._effective_deadline_ms(request)
        deadline = (
            DeadlineBudget(sim_ms=deadline_ms) if deadline_ms is not None else None
        )
        return _Task(request, gen, recorder, deadline, arrival_us, self.env_epoch)

    @staticmethod
    def _validate_planner(request: PlanRequest) -> None:
        """Check the planner name eagerly at submission (tasks build lazily).

        Names resolve through the one registry,
        :data:`repro.planning.PLANNER_FACTORIES` (imported lazily — the
        planning package is heavyweight and submit may never need it if a
        factory was passed).
        """
        if request.planner_factory is not None:
            return
        from repro.planning import PLANNER_FACTORIES

        if request.planner not in PLANNER_FACTORIES:
            raise ValueError(
                f"unknown planner {request.planner!r}; valid choices: "
                f"{sorted(PLANNER_FACTORIES)} (or pass planner_factory)"
            )

    @staticmethod
    def _make_planner(request: PlanRequest, recorder: CDTraceRecorder):
        if request.planner_factory is not None:
            return request.planner_factory(recorder)
        from repro.planning import PLANNER_FACTORIES

        factory = PLANNER_FACTORIES.get(request.planner)
        if factory is None:
            raise ValueError(
                f"unknown planner {request.planner!r}; valid choices: "
                f"{sorted(PLANNER_FACTORIES)} (or pass planner_factory)"
            )
        return factory(recorder)

    # ------------------------------------------------------------------
    # The drain loop
    # ------------------------------------------------------------------

    def run(self) -> ServiceReport:
        """Drain every submitted request; returns the aggregate report.

        Deterministic: same requests + config -> same responses, shed set,
        clock, and dispatch sequence.
        """
        start_dispatches = (
            self.batcher.dispatches if self.batcher is not None else 0
        )
        start_phases = (
            self.batcher.phases_answered if self.batcher is not None else 0
        )
        start_poses = (
            self.batcher.poses_dispatched if self.batcher is not None else 0
        )
        seq_dispatches = 0
        seq_phases = 0
        seq_poses = 0
        rounds = 0

        while self._queue_depth() or self._inflight or self._arrivals:
            self._ingest_due_arrivals()
            if not self._queue_depth() and not self._inflight:
                if not self._arrivals:
                    break
                # Idle: fast-forward the clock to the next arrival.
                self.clock_us = max(self.clock_us, self._arrivals[0][0])
                continue
            rounds += 1
            self._admit()
            if not self._inflight:
                continue
            if self.config.service.mode == "batched":
                self._round_batched()
            else:
                d, p, n = self._round_sequential()
                seq_dispatches += d
                seq_phases += p
                seq_poses += n
        self.rounds += rounds

        if self.batcher is not None:
            dispatches = self.batcher.dispatches - start_dispatches
            phases = self.batcher.phases_answered - start_phases
            poses = self.batcher.poses_dispatched - start_poses
        else:
            dispatches, phases, poses = seq_dispatches, seq_phases, seq_poses
        status_counts: Dict[str, int] = {}
        for response in self._responses.values():
            status_counts[response.status] = (
                status_counts.get(response.status, 0) + 1
            )
        return ServiceReport(
            responses=dict(self._responses),
            sim_ms=self.clock_us / 1e3,
            rounds=rounds,
            dispatches=dispatches,
            phases_answered=phases,
            poses_dispatched=poses,
            cache_counters=self.cache.counters() if self.cache else None,
            status_counts=status_counts,
            shed_counts=(
                dict(self.admission.shed_counts)
                if self.admission is not None
                else {}
            ),
            overload_histogram=(
                degradation_histogram(self.admission.level_history)
                if self.admission is not None
                else {}
            ),
        )

    def _queue_depth(self) -> int:
        return len(self._drr) if self._drr is not None else len(self._queue)

    def _ingest_due_arrivals(self) -> None:
        while self._arrivals and self._arrivals[0][0] <= self.clock_us:
            _, _, request = heapq.heappop(self._arrivals)
            self._ingest(request, self.clock_us)

    def _admit(self) -> None:
        limit = self.config.service.max_inflight
        if self._drr is not None:
            while self._queue_depth() and len(self._inflight) < limit:
                released = self._drr.pop_round(limit - len(self._inflight))
                for request, arrival_us in released:
                    self._start_or_shed(request, arrival_us)
            return
        while self._queue and len(self._inflight) < limit:
            _, arrival_us, _, request = heapq.heappop(self._queue)
            self._start_or_shed(request, arrival_us)

    def _start_or_shed(self, request: PlanRequest, arrival_us: float) -> None:
        """The dequeue gate: start a task, or shed if it expired in queue."""
        if self.admission is not None:
            decision = self.admission.check_admission(
                waited_ms=(self.clock_us - arrival_us) / 1e3,
                deadline_ms=self._effective_deadline_ms(request),
            )
            if not decision.admitted:
                self._shed(request, arrival_us, decision.reason)
                return
        task = self._make_task(request, arrival_us)
        task.admitted_us = self.clock_us
        self._inflight.append(task)

    def _round_batched(self) -> None:
        """One scheduling round: advance every task, flush phase windows."""
        service = self.config.service
        pending: List[_Task] = []
        for task in list(self._inflight):
            if self._cancel_if_expired(task):
                continue
            if self._preempt_if_over_budget(task):
                continue
            item = self._advance(task)
            if task.done:
                self._finish(task)
            elif item is not None:
                task.pending_item = item
                pending.append(task)

        window = service.batch_window
        for group in group_pending_by_epoch(pending):
            for at in range(0, len(group), window):
                chunk = group[at : at + window]
                items = [
                    (task.recorder, task.pending_item[1]) for task in chunk
                ]
                answers, report = self.batcher.flush(items)
                self.clock_us += (
                    service.dispatch_overhead_us
                    + service.batch_pose_cost_us * report.fresh_rows
                    + service.cache_hit_cost_us * report.cached_rows
                )
                for task, answer in zip(chunk, answers):
                    query, phase = task.pending_item
                    task.pending_item = None
                    task.pending_value = task.recorder.commit(
                        query, phase, answer
                    )

    def _round_sequential(self):
        """Baseline: run the single oldest in-flight request to completion."""
        service = self.config.service
        task = self._inflight[0]
        dispatches = phases = poses = 0
        while not task.done:
            if self._cancel_if_expired(task):
                return dispatches, phases, poses
            if self._preempt_if_over_budget(task):
                return dispatches, phases, poses
            item = self._advance(task)
            if item is None:
                break
            query, phase = item
            checks_before = task.recorder.checker.stats.pose_checks
            answer = None
            while answer is None:
                try:
                    answer = task.recorder.engine.answer(phase)
                except (TransientEngineFault, EngineTimeoutFault):
                    # Injected engine fault: charge a retry dispatch and
                    # re-answer the same phase, up to the configured bound;
                    # past it the request fails — no path is ever emitted
                    # from a faulted, unvalidated phase.
                    task.retries += 1
                    self.clock_us += service.dispatch_overhead_us
                    if task.retries > service.max_fault_retries:
                        task.status = "failed"
                        task.done = True
                        task.gen.close()
                        break
            if answer is None:
                break
            charged = task.recorder.checker.stats.pose_checks - checks_before
            task.pending_value = task.recorder.commit(query, phase, answer)
            dispatches += 1
            phases += 1
            poses += charged
            self.clock_us += (
                service.dispatch_overhead_us + service.pose_cost_us * charged
            )
        if task.done:
            self._finish(task)
        return dispatches, phases, poses

    def _advance(self, task: _Task):
        """Resume a task's generator to its next non-degenerate query.

        Returns ``(query, phase)`` or None when the task finished.
        Degenerate queries (no phase) are answered inline from the
        recorder's trivial-result contract — they cost no dispatch.
        """
        while True:
            try:
                query = task.gen.send(task.pending_value)
            except StopIteration as stop:
                task.result = stop.value
                task.done = True
                return None
            task.pending_value = None
            phase = task.recorder.prepare(query)
            if phase is None:
                task.pending_value = task.recorder.trivial_result(query)
                continue
            return query, phase

    def _cancel_if_expired(self, task: _Task) -> bool:
        """Cancel a task whose deadline lapsed (when the policy says so)."""
        if not self.config.service.cancel_on_deadline_miss:
            return False
        if task.deadline is None:
            return False
        elapsed_ms = (self.clock_us - task.submitted_us) / 1e3
        if not task.deadline.sim_exceeded(elapsed_ms):
            return False
        task.cancelled = True
        task.status = "cancelled"
        task.done = True
        task.gen.close()
        self._finish(task)
        return True

    def _preempt_if_over_budget(self, task: _Task) -> bool:
        """Preempt a task whose priced energy exceeds the configured budget.

        The budget is priced through the MPAccel energy model over the
        request's own collision stats, so "over budget" means the same
        thing here as in the paper's energy accounting.
        """
        budget = self.config.service.preempt_energy_budget_pj
        if budget is None:
            return False
        if priced_energy_pj(task.recorder.checker.stats) <= budget:
            return False
        task.status = "preempted"
        task.done = True
        task.gen.close()
        if self.telemetry is not None:
            self.telemetry.counter("service.preempted").inc()
        self._finish(task)
        return True

    def _shed(
        self, request: PlanRequest, arrival_us: float, reason: Optional[str]
    ) -> None:
        """Record a typed shed response (the planner never ran)."""
        deadline_ms = self._effective_deadline_ms(request)
        self._responses[request.request_id] = PlanResponse(
            request_id=request.request_id,
            success=False,
            path=None,
            result=None,
            stats=CollisionStats(),
            num_phases=0,
            submitted_ms=arrival_us / 1e3,
            admitted_ms=self.clock_us / 1e3,
            completed_ms=self.clock_us / 1e3,
            deadline_ms=deadline_ms,
            deadline_missed=reason in ("infeasible_deadline", "expired_in_queue"),
            cancelled=False,
            env_epoch=self.env_epoch,
            status="shed",
            shed_reason=reason,
            client_id=request.client_id,
        )

    def _finish(self, task: _Task) -> None:
        self._inflight.remove(task)
        result = task.result
        path: Optional[list] = None
        success = False
        if task.status == "completed":
            if isinstance(result, list):
                path = result
                success = True
            elif result is not None and hasattr(result, "success"):
                success = bool(result.success)
                path = list(result.path) if success else None
        deadline_ms = task.deadline.sim_ms if task.deadline is not None else None
        elapsed_ms = (self.clock_us - task.submitted_us) / 1e3
        missed = deadline_ms is not None and elapsed_ms > deadline_ms
        if self.admission is not None and task.status == "completed":
            self.admission.observe_completion(self.clock_us - task.admitted_us)
        self._responses[task.request.request_id] = PlanResponse(
            request_id=task.request.request_id,
            success=success,
            path=path,
            result=result,
            stats=task.recorder.checker.stats.copy(),
            num_phases=task.recorder.num_phases,
            submitted_ms=task.submitted_us / 1e3,
            admitted_ms=task.admitted_us / 1e3,
            completed_ms=self.clock_us / 1e3,
            deadline_ms=deadline_ms,
            deadline_missed=missed or task.cancelled,
            cancelled=task.cancelled,
            env_epoch=task.env_epoch,
            status=task.status,
            shed_reason=None,
            client_id=task.request.client_id,
        )

    # ------------------------------------------------------------------
    # Fleet state shipping (process-mode shard jobs)
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Picklable snapshot of the service core, taken between drains.

        The fleet's process mode ships this to a worker, which rebuilds an
        identical service (same robot/octree/config), restores the state,
        drains, and ships the post-drain snapshot back — the drain in the
        worker is bit-identical to draining in place because *all* mutable
        core state rides along: clock, epoch, submission sequence, queues,
        prior responses, admission estimator, fairness deficits, and the
        fault injector's RNG streams.  The cache is shipped separately by
        the fleet (it owns the tier topology).  Only queued state can ship:
        in-flight tasks hold live generators, which cannot cross a process
        boundary.
        """
        if self._inflight:
            raise RuntimeError(
                "export_state requires no in-flight tasks (drain first)"
            )
        if self.fault_injector is None:
            faults = None
        else:
            faults = {
                "models": self.fault_injector.models,
                "seed": self.fault_injector.seed,
                "enabled": self.fault_injector.enabled,
                "events": list(self.fault_injector.events),
                # np.random.Generator pickles with its stream position, so
                # the worker resumes each site's decision stream mid-flow.
                "rngs": dict(self.fault_injector._rngs),
                "draws": dict(self.fault_injector._draws),
            }
        return {
            "clock_us": self.clock_us,
            "env_epoch": self.env_epoch,
            "rounds": self.rounds,
            "seq": self._seq,
            "queue": list(self._queue),
            "arrivals": list(self._arrivals),
            "responses": dict(self._responses),
            "request_ids": set(self._request_ids),
            "admission": (
                self.admission.export_state()
                if self.admission is not None
                else None
            ),
            "drr": self._drr.export_state() if self._drr is not None else None,
            "faults": faults,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        if self._inflight:
            raise RuntimeError(
                "load_state requires no in-flight tasks (drain first)"
            )
        self.clock_us = state["clock_us"]
        self.env_epoch = state["env_epoch"]
        self.rounds = state["rounds"]
        self._seq = state["seq"]
        self._queue = list(state["queue"])
        self._arrivals = list(state["arrivals"])
        self._responses = dict(state["responses"])
        self._request_ids = set(state["request_ids"])
        if state["admission"] is not None:
            if self.admission is None:
                raise ValueError(
                    "snapshot has admission state but this service was "
                    "built without admission_control"
                )
            self.admission.load_state(state["admission"])
        if state["drr"] is not None:
            if self._drr is None:
                raise ValueError(
                    "snapshot has fairness state but this service was "
                    "built without fairness"
                )
            self._drr.load_state(state["drr"])
        faults = state["faults"]
        if faults is not None:
            injector = FaultInjector(
                models=faults["models"],
                seed=faults["seed"],
                enabled=faults["enabled"],
                telemetry=self.telemetry,
            )
            injector.events = list(faults["events"])
            injector._rngs = dict(faults["rngs"])
            injector._draws = dict(faults["draws"])
            self.fault_injector = injector

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_pending(self) -> int:
        return self._queue_depth() + len(self._inflight) + len(self._arrivals)

    def response(self, request_id: str) -> PlanResponse:
        return self._responses[request_id]
