"""The multi-client planning service: admission, batching, deadlines.

:class:`PlanningService` accepts many concurrent plan requests and runs
them to completion on one deterministic *simulated clock* — no threads, no
wall-clock nondeterminism.  Planners are suspendable generators
(``plan_steps``, :mod:`repro.planning.queries`), so the service interleaves
requests at collision-query boundaries:

1. **Admission.**  Submitted requests wait in a priority queue ordered by
   ``(priority, arrival, sequence)``; at most ``max_inflight`` run at once.
2. **Rounds.**  Each round resumes every in-flight request's generator to
   its next CD phase (degenerate queries are answered inline per the
   recorder contract), then flushes the collected phases through the
   :class:`~repro.serving.batcher.CrossRequestBatcher` in windows of
   ``batch_window`` phases — one vectorized dispatch per window, coalescing
   work *across* requests.
3. **Deadlines.**  Every request carries a
   :class:`~repro.resilience.deadline.DeadlineBudget` (simulated
   milliseconds).  By default a miss is flagged on the response; with
   ``cancel_on_deadline_miss`` the request is cancelled at the next
   scheduling point after its budget lapses.

**Determinism and per-request bit-identity.**  The round structure, the
admission order, and the simulated cost model are all pure functions of the
submitted requests and the :class:`~repro.config.ServiceConfig`; there is
no hidden state.  Because each planner is one generator driven by answers
that are bit-identical to a solo run (see
:mod:`repro.serving.batcher`), every request's path, verdicts, and
:class:`~repro.collision.stats.CollisionStats` are independent of arrival
interleaving, batch window size, and the other requests in flight — pinned
by ``tests/test_serving.py``.

The simulated cost model (microseconds) makes batching visible in service
latency: a batched dispatch costs ``dispatch_overhead_us`` once plus
per-pose costs (cheap for cache hits), while sequential mode pays the
overhead per phase and the full per-pose cost — the same
overhead-amortization argument as the paper's SAS dispatch model.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.collision.cache import CollisionCache
from repro.collision.checker import RobotEnvironmentChecker
from repro.collision.stats import CollisionStats
from repro.config import ReproConfig
from repro.env.diff import octree_delta_regions
from repro.env.octree import Octree
from repro.planning.recorder import CDTraceRecorder
from repro.resilience.deadline import DeadlineBudget
from repro.robot.model import RobotModel
from repro.serving.batcher import CrossRequestBatcher

__all__ = ["PlanRequest", "PlanResponse", "ServiceReport", "PlanningService"]


@dataclass
class PlanRequest:
    """One client's planning query.

    ``planner`` names a built-in planner (``"rrt"``, ``"rrt_connect"``,
    ``"prm"``); ``planner_factory`` overrides it with any callable taking a
    recorder and returning an object with ``plan_steps(q_start, q_goal,
    rng)``.  ``seed`` feeds the request's private RNG; ``deadline_ms`` (in
    simulated milliseconds) defaults to the service's
    ``default_deadline_ms``.  Lower ``priority`` admits first.
    """

    request_id: str
    q_start: object
    q_goal: object
    planner: str = "rrt_connect"
    planner_factory: Optional[object] = None
    seed: int = 0
    priority: int = 0
    deadline_ms: Optional[float] = None


@dataclass
class PlanResponse:
    """What the service returns for one request."""

    request_id: str
    success: bool
    path: Optional[list]
    result: object
    stats: CollisionStats
    num_phases: int
    submitted_ms: float
    admitted_ms: float
    completed_ms: float
    deadline_ms: Optional[float]
    deadline_missed: bool
    cancelled: bool
    env_epoch: int

    @property
    def latency_ms(self) -> float:
        return self.completed_ms - self.submitted_ms


@dataclass
class ServiceReport:
    """Aggregate accounting for one :meth:`PlanningService.run` drain."""

    responses: Dict[str, PlanResponse]
    sim_ms: float
    rounds: int
    dispatches: int
    phases_answered: int
    poses_dispatched: int
    cache_counters: Optional[dict]

    @property
    def completed(self) -> int:
        return sum(1 for r in self.responses.values() if r.success)

    @property
    def requests_per_sim_s(self) -> float:
        if self.sim_ms <= 0:
            return 0.0
        return len(self.responses) / (self.sim_ms / 1e3)


class _Task:
    """Internal per-request state (generator + recorder + clocks)."""

    __slots__ = (
        "request",
        "gen",
        "recorder",
        "deadline",
        "submitted_us",
        "admitted_us",
        "pending_value",
        "pending_item",
        "done",
        "result",
        "cancelled",
    )

    def __init__(self, request, gen, recorder, deadline, submitted_us):
        self.request = request
        self.gen = gen
        self.recorder = recorder
        self.deadline: Optional[DeadlineBudget] = deadline
        self.submitted_us = submitted_us
        self.admitted_us = submitted_us
        self.pending_value = None
        self.pending_item = None  # (query, phase) awaiting a batched answer
        self.done = False
        self.result = None
        self.cancelled = False


class PlanningService:
    """Deterministic multi-client planning service over one environment.

    ``config`` is a :class:`~repro.config.ReproConfig`; its ``service``
    section selects the mode (``"batched"`` coalesces phases across
    requests, ``"sequential"`` is the single-client baseline), the batch
    window, admission limits, and the simulated cost model, while
    ``config.cache`` controls the shared octree-versioned verdict cache.
    """

    def __init__(
        self,
        robot: RobotModel,
        octree: Octree,
        config: Optional[ReproConfig] = None,
        telemetry=None,
    ):
        if config is None:
            config = ReproConfig.for_service()
        if config.service.mode == "batched" and config.backend != "batch":
            raise ValueError(
                "service mode 'batched' requires backend 'batch' "
                "(cross-request coalescing dispatches through the vectorized "
                "pipeline); use ReproConfig.for_service() or service mode "
                "'sequential'"
            )
        self.robot = robot
        self.octree = octree
        self.config = config
        self.telemetry = telemetry
        self.env_epoch = 0
        self.clock_us = 0.0
        self.rounds = 0
        self._seq = itertools.count()
        self._queue: list = []  # (priority, submitted_us, seq, task)
        self._inflight: List[_Task] = []
        self._responses: Dict[str, PlanResponse] = {}
        self._request_ids: set = set()

        self.cache: Optional[CollisionCache] = None
        if config.cache.enabled:
            self.cache = CollisionCache(
                quantum=config.cache.quantum,
                max_entries=config.cache.max_entries,
                telemetry=telemetry,
            )

        self.batcher: Optional[CrossRequestBatcher] = None
        self._shared_evaluator = None
        if config.service.mode == "batched":
            shared = RobotEnvironmentChecker.from_config(
                robot, octree, config, cache=self.cache
            )
            self._shared_evaluator = shared.batch_evaluator
            self.batcher = CrossRequestBatcher(shared)

    # ------------------------------------------------------------------
    # Submission / environment
    # ------------------------------------------------------------------

    def submit(self, request: PlanRequest) -> None:
        """Enqueue a request at the current simulated time."""
        if request.request_id in self._request_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self._request_ids.add(request.request_id)
        task = self._make_task(request)
        heapq.heappush(
            self._queue,
            (request.priority, task.submitted_us, next(self._seq), task),
        )

    def update_environment(self, octree: Octree) -> int:
        """Swap the environment octree between drains (service must be idle).

        Advances the environment epoch and selectively invalidates the
        shared cache from the changed-region boxes.  Returns the number of
        cache entries dropped.
        """
        if self._queue or self._inflight:
            raise RuntimeError(
                "update_environment requires an idle service (drain with "
                "run() first)"
            )
        regions = octree_delta_regions(self.octree, octree)
        self.octree = octree
        self.env_epoch += 1
        dropped = 0
        if self.cache is not None:
            dropped = self.cache.invalidate_regions(regions)
        if self.batcher is not None:
            shared = RobotEnvironmentChecker.from_config(
                self.robot, octree, self.config, cache=self.cache
            )
            self._shared_evaluator = shared.batch_evaluator
            self.batcher = CrossRequestBatcher(shared)
        return dropped

    def _make_task(self, request: PlanRequest) -> _Task:
        checker = RobotEnvironmentChecker.from_config(
            self.robot, self.octree, self.config, cache=self.cache
        )
        if self._shared_evaluator is not None:
            # All requests share one vectorized pipeline (it is stateless
            # apart from precomputed octree arrays).
            checker._batch_evaluator = self._shared_evaluator
        recorder = CDTraceRecorder(checker)
        planner = self._make_planner(request, recorder)
        rng = np.random.default_rng(request.seed)
        gen = planner.plan_steps(request.q_start, request.q_goal, rng)
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.service.default_deadline_ms
        )
        deadline = (
            DeadlineBudget(sim_ms=deadline_ms) if deadline_ms is not None else None
        )
        return _Task(request, gen, recorder, deadline, self.clock_us)

    @staticmethod
    def _make_planner(request: PlanRequest, recorder: CDTraceRecorder):
        if request.planner_factory is not None:
            return request.planner_factory(recorder)
        from repro.planning.prm import PRMPlanner
        from repro.planning.rrt import RRTPlanner
        from repro.planning.rrt_connect import RRTConnectPlanner

        factories = {
            "rrt": RRTPlanner,
            "rrt_connect": RRTConnectPlanner,
            "prm": PRMPlanner,
        }
        factory = factories.get(request.planner)
        if factory is None:
            raise ValueError(
                f"unknown planner {request.planner!r}; valid choices: "
                f"{sorted(factories)} (or pass planner_factory)"
            )
        return factory(recorder)

    # ------------------------------------------------------------------
    # The drain loop
    # ------------------------------------------------------------------

    def run(self) -> ServiceReport:
        """Drain every submitted request; returns the aggregate report.

        Deterministic: same requests + config -> same responses, clock, and
        dispatch sequence.
        """
        start_dispatches = (
            self.batcher.dispatches if self.batcher is not None else 0
        )
        start_phases = (
            self.batcher.phases_answered if self.batcher is not None else 0
        )
        start_poses = (
            self.batcher.poses_dispatched if self.batcher is not None else 0
        )
        seq_dispatches = 0
        seq_phases = 0
        seq_poses = 0
        rounds = 0

        while self._queue or self._inflight:
            rounds += 1
            self._admit()
            if self.config.service.mode == "batched":
                self._round_batched()
            else:
                d, p, n = self._round_sequential()
                seq_dispatches += d
                seq_phases += p
                seq_poses += n
        self.rounds += rounds

        if self.batcher is not None:
            dispatches = self.batcher.dispatches - start_dispatches
            phases = self.batcher.phases_answered - start_phases
            poses = self.batcher.poses_dispatched - start_poses
        else:
            dispatches, phases, poses = seq_dispatches, seq_phases, seq_poses
        return ServiceReport(
            responses=dict(self._responses),
            sim_ms=self.clock_us / 1e3,
            rounds=rounds,
            dispatches=dispatches,
            phases_answered=phases,
            poses_dispatched=poses,
            cache_counters=self.cache.counters() if self.cache else None,
        )

    def _admit(self) -> None:
        limit = self.config.service.max_inflight
        while self._queue and len(self._inflight) < limit:
            _, _, _, task = heapq.heappop(self._queue)
            task.admitted_us = self.clock_us
            self._inflight.append(task)

    def _round_batched(self) -> None:
        """One scheduling round: advance every task, flush phase windows."""
        service = self.config.service
        pending: List[_Task] = []
        for task in list(self._inflight):
            if self._cancel_if_expired(task):
                continue
            item = self._advance(task)
            if task.done:
                self._finish(task)
            elif item is not None:
                task.pending_item = item
                pending.append(task)

        window = service.batch_window
        for at in range(0, len(pending), window):
            chunk = pending[at : at + window]
            items = [
                (task.recorder, task.pending_item[1]) for task in chunk
            ]
            answers, report = self.batcher.flush(items)
            self.clock_us += (
                service.dispatch_overhead_us
                + service.batch_pose_cost_us * report.fresh_rows
                + service.cache_hit_cost_us * report.cached_rows
            )
            for task, answer in zip(chunk, answers):
                query, phase = task.pending_item
                task.pending_item = None
                task.pending_value = task.recorder.commit(query, phase, answer)

    def _round_sequential(self):
        """Baseline: run the single oldest in-flight request to completion."""
        service = self.config.service
        task = self._inflight[0]
        dispatches = phases = poses = 0
        while not task.done:
            if self._cancel_if_expired(task):
                return dispatches, phases, poses
            item = self._advance(task)
            if item is None:
                break
            query, phase = item
            checks_before = task.recorder.checker.stats.pose_checks
            answer = task.recorder.engine.answer(phase)
            charged = task.recorder.checker.stats.pose_checks - checks_before
            task.pending_value = task.recorder.commit(query, phase, answer)
            dispatches += 1
            phases += 1
            poses += charged
            self.clock_us += (
                service.dispatch_overhead_us + service.pose_cost_us * charged
            )
        if task.done:
            self._finish(task)
        return dispatches, phases, poses

    def _advance(self, task: _Task):
        """Resume a task's generator to its next non-degenerate query.

        Returns ``(query, phase)`` or None when the task finished.
        Degenerate queries (no phase) are answered inline from the
        recorder's trivial-result contract — they cost no dispatch.
        """
        while True:
            try:
                query = task.gen.send(task.pending_value)
            except StopIteration as stop:
                task.result = stop.value
                task.done = True
                return None
            task.pending_value = None
            phase = task.recorder.prepare(query)
            if phase is None:
                task.pending_value = task.recorder.trivial_result(query)
                continue
            return query, phase

    def _cancel_if_expired(self, task: _Task) -> bool:
        """Cancel a task whose deadline lapsed (when the policy says so)."""
        if not self.config.service.cancel_on_deadline_miss:
            return False
        if task.deadline is None:
            return False
        elapsed_ms = (self.clock_us - task.submitted_us) / 1e3
        if not task.deadline.sim_exceeded(elapsed_ms):
            return False
        task.cancelled = True
        task.done = True
        task.gen.close()
        self._finish(task)
        return True

    def _finish(self, task: _Task) -> None:
        self._inflight.remove(task)
        result = task.result
        path: Optional[list] = None
        success = False
        if isinstance(result, list):
            path = result
            success = True
        elif result is not None and hasattr(result, "success"):
            success = bool(result.success)
            path = list(result.path) if success else None
        deadline_ms = task.deadline.sim_ms if task.deadline is not None else None
        elapsed_ms = (self.clock_us - task.submitted_us) / 1e3
        missed = deadline_ms is not None and elapsed_ms > deadline_ms
        self._responses[task.request.request_id] = PlanResponse(
            request_id=task.request.request_id,
            success=success and not task.cancelled,
            path=path,
            result=result,
            stats=task.recorder.checker.stats.copy(),
            num_phases=task.recorder.num_phases,
            submitted_ms=task.submitted_us / 1e3,
            admitted_ms=task.admitted_us / 1e3,
            completed_ms=self.clock_us / 1e3,
            deadline_ms=deadline_ms,
            deadline_missed=missed or task.cancelled,
            cancelled=task.cancelled,
            env_epoch=self.env_epoch,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_pending(self) -> int:
        return len(self._queue) + len(self._inflight)

    def response(self, request_id: str) -> PlanResponse:
        return self._responses[request_id]
