"""Cross-request batching: one vectorized dispatch for many clients' phases.

The per-phase :class:`~repro.planning.engine.BatchedEngine` already
coalesces every undecided pose *within* one phase into a single
``BatchPoseEvaluator`` call.  A multi-client service can go further: at any
instant it holds one pending CD phase per in-flight request, and those
phases are independent — so their poses can be stacked into one dispatch
*across* requests (the wider the batch, the better the vectorized pipeline
amortizes).

**Bit-identity.**  The batch evaluator's per-pose results do not depend on
batch composition (established by the batch-pipeline differential tests),
so evaluating request A's poses in a shared dispatch with request B yields
exactly the rows A would have gotten alone.  After the dispatch each phase
is resolved by the same sequential-reference walk the per-phase engine uses
(:func:`repro.planning.engine.walk_warm_phase`), and each request's
:class:`~repro.collision.stats.CollisionStats` is charged for exactly its
own prefix rows — per-request verdicts, paths, and stats are bit-identical
to running that request alone.

Evaluation goes through the shared checker's cache-aware
``evaluate_poses``, so a :class:`~repro.collision.cache.CollisionCache`
attached to the service filters already-known poses out of the dispatch and
replays their stored stats deltas instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.planning.engine import PhaseAnswer, walk_warm_phase
from repro.planning.motion import CDPhase

__all__ = ["CrossRequestBatcher", "FlushReport"]


@dataclass
class FlushReport:
    """Work accounting for one coalesced dispatch."""

    phases: int
    total_rows: int  # undecided poses stacked across all phases
    fresh_rows: int  # rows actually evaluated (cache misses)
    cached_rows: int  # rows served from the verdict cache

    @property
    def coalesced(self) -> bool:
        return self.phases > 1


class CrossRequestBatcher:
    """Answers batches of (recorder, phase) pairs with single dispatches.

    ``checker`` is the shared evaluation substrate: a ``backend="batch"``
    :class:`~repro.collision.checker.RobotEnvironmentChecker` over the
    service's robot/octree, optionally carrying the shared
    :class:`~repro.collision.cache.CollisionCache`.  Its stats object is
    never charged — each request's own checker stats receive that request's
    prefix charges.
    """

    def __init__(self, checker):
        if getattr(checker, "backend", "scalar") != "batch":
            raise ValueError(
                "CrossRequestBatcher needs a backend='batch' checker; got "
                f"backend={getattr(checker, 'backend', None)!r}"
            )
        self.checker = checker
        self.dispatches = 0
        self.phases_answered = 0
        self.poses_dispatched = 0

    def flush(
        self, items: Sequence[Tuple[object, CDPhase]]
    ) -> Tuple[List[PhaseAnswer], FlushReport]:
        """One vectorized dispatch answering every phase in ``items``.

        ``items`` is a sequence of ``(recorder, phase)`` pairs, one per
        request.  Returns the per-item answers (parallel to ``items``) and
        the dispatch's work report.  Each recorder's checker stats are
        charged for exactly the pose prefix its phase's sequential early
        exit would have executed.
        """
        targets = []
        for _, phase in items:
            for motion in phase.motions:
                for index in motion.unevaluated_indices():
                    targets.append((motion, index))

        outcome = None
        row_of: dict = {}
        fresh_rows = 0
        cached_rows = 0
        if targets:
            cache = self.checker.cache
            hits_before = cache.hits if cache is not None else 0
            stacked = np.stack([motion.poses[index] for motion, index in targets])
            outcome = self.checker.evaluate_poses(stacked)
            for row, ((motion, index), hit) in enumerate(
                zip(targets, outcome.hits)
            ):
                motion.set_pose_outcome(index, bool(hit))
                row_of[(id(motion), index)] = row
            cached_rows = (cache.hits - hits_before) if cache is not None else 0
            fresh_rows = len(targets) - cached_rows

        answers: List[PhaseAnswer] = []
        for recorder, phase in items:
            outcomes, charged_rows = walk_warm_phase(phase, row_of)
            stats = recorder.checker.stats
            stats.pose_checks += len(charged_rows)
            if outcome is not None and charged_rows and recorder.checker.collect_stats:
                outcome.record(stats, poses=np.asarray(charged_rows, dtype=int))
            answers.append(PhaseAnswer(outcomes=outcomes, engine="cross_batch"))

        self.dispatches += 1
        self.phases_answered += len(items)
        self.poses_dispatched += len(targets)
        return answers, FlushReport(
            phases=len(items),
            total_rows=len(targets),
            fresh_rows=fresh_rows,
            cached_rows=cached_rows,
        )
