"""The sharded planning fleet: N services behind one deterministic router.

:class:`PlanningFleet` scales :class:`~repro.serving.service.
PlanningService` past the single-event-loop ceiling by running N shards —
each a complete service with its own simulated clock, queues, and local
cache tier — behind a :class:`~repro.serving.router.FleetRouter` that
assigns every request to exactly one shard as a pure function of the
request and the router seed.

**Topology.**  ::

    submit ──► FleetRouter ──► shard 0: PlanningService ── local tier ─┐
                          ├──► shard 1: PlanningService ── local tier ─┼─► global
                          └──► shard k: PlanningService ── local tier ─┘   tier

**Determinism contract (non-negotiable).**  Simulated time is
authoritative and per-shard: shard clocks model independent replicas, and
nothing observable depends on *wall-clock* interleaving.  Concretely:

- Every surviving request's path, verdicts, and
  :class:`~repro.collision.stats.CollisionStats` are bit-identical to a
  solo sequential run of that request — inherited from the service's
  per-request contract, and unchanged by sharding because a request's
  whole lifetime lives on one shard.
- A fixed ``(seed, config)`` fixes each shard's entire drain — responses,
  shed set, clock — because the router assignment is deterministic and
  each shard is the already-deterministic PR 5/9 service.
- ``workers="process"`` is bit-identical to ``workers="inline"``: a worker
  receives the shard's *complete* mutable state (service core via
  ``export_state``, cache tier content, the frozen global-tier snapshot)
  plus the scene via shared memory, drains, and ships the state back.
  The drain is the same computation in either address space.
- Shard results merge in shard-index order, never completion order.

**Cache tiers.**  Each shard mounts a :class:`~repro.collision.cache.
TieredCollisionCache`: reads go local-then-global, writes land locally and
are logged.  The global tier is *frozen during a drain* — in process mode
workers could not observe each other's in-drain writes, so inline mode
must not either — and at the drain boundary the fleet merges every
shard's fresh entries into it in shard-index order
(:meth:`~repro.collision.cache.CollisionCache.adopt`, first writer wins).

**Epoch-consistent invalidation broadcast.**  :meth:`PlanningFleet.
update_environment` requires the whole fleet idle, computes the
changed-region boxes once (:func:`repro.env.diff.octree_delta_regions`),
invalidates the global tier once, and fans the same ``(octree, regions,
epoch)`` triple to every shard via :meth:`~repro.serving.service.
PlanningService.apply_environment_update` — so every tier on every shard
observes the update at the same epoch boundary.

**Shared memory.**  Process mode ships the octree (packed node arrays +
bounds) and all pending request poses through
:class:`multiprocessing.shared_memory.SharedMemory` blocks; job pickles
carry row indices instead of scenes or pose arrays.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from multiprocessing import get_context, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collision.cache import CollisionCache, TieredCollisionCache
from repro.config import ReproConfig
from repro.env.diff import octree_delta_regions
from repro.env.octree import Octree, OctreeNode, OctantState
from repro.geometry.aabb import AABB
from repro.robot.model import RobotModel
from repro.serving.router import FleetRouter
from repro.serving.service import (
    PlanRequest,
    PlanResponse,
    PlanningService,
    ServiceReport,
)

__all__ = [
    "PlanningFleet",
    "FleetReport",
    "SharedOctreeBuffer",
    "SharedPoseBuffer",
]


# ----------------------------------------------------------------------
# Shared-memory scene/pose transport
# ----------------------------------------------------------------------


class SharedOctreeBuffer:
    """One octree packed into a shared-memory block.

    Layout (all offsets 8-byte aligned because each section is a multiple
    of 8 bytes): ``states`` as int8 ``(n, 8)``, ``children`` as int32
    ``(n, 8)`` with ``-1`` for "no child", then bounds as float64
    ``(2, 3)`` (center, half_extents).  ``max_depth`` and ``n`` travel in
    the picklable :attr:`meta` dict, not the buffer.
    """

    def __init__(self, octree: Octree):
        n = len(octree.nodes)
        size = n * 8 + n * 8 * 4 + 6 * 8
        self.shm = shared_memory.SharedMemory(create=True, size=size)
        states, children, bounds = self._views(self.shm, n)
        for i, node in enumerate(octree.nodes):
            states[i] = [int(s) for s in node.states]
            children[i] = [-1 if c is None else c for c in node.children]
        bounds[0] = octree.bounds.center
        bounds[1] = octree.bounds.half_extents
        self.meta = {
            "name": self.shm.name,
            "n_nodes": n,
            "max_depth": octree.max_depth,
        }

    @staticmethod
    def _views(shm, n: int):
        states = np.ndarray((n, 8), dtype=np.int8, buffer=shm.buf)
        children = np.ndarray(
            (n, 8), dtype=np.int32, buffer=shm.buf, offset=n * 8
        )
        bounds = np.ndarray(
            (2, 3), dtype=np.float64, buffer=shm.buf, offset=n * 8 + n * 32
        )
        return states, children, bounds

    @classmethod
    def unpack(cls, meta: dict) -> Octree:
        """Rebuild the octree in a worker (copies out, then detaches)."""
        shm = shared_memory.SharedMemory(name=meta["name"])
        try:
            states, children, bounds = cls._views(shm, meta["n_nodes"])
            nodes = [
                OctreeNode(
                    tuple(OctantState(int(s)) for s in states[i]),
                    tuple(
                        None if c < 0 else int(c) for c in children[i]
                    ),
                )
                for i in range(meta["n_nodes"])
            ]
            octree_bounds = AABB(
                np.array(bounds[0], copy=True), np.array(bounds[1], copy=True)
            )
        finally:
            shm.close()
        return Octree(nodes, octree_bounds, meta["max_depth"])

    def release(self) -> None:
        """Detach and free the block (parent side, after the pool joins)."""
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-release guard
            pass


class SharedPoseBuffer:
    """All pending request poses as one shared ``(rows, dof)`` matrix.

    Requests cross the process boundary carrying row indices (see
    ``_strip_poses``); workers resolve them against this matrix, so pose
    arrays are never pickled.
    """

    def __init__(self, rows: Sequence[np.ndarray]):
        mat = np.asarray(rows, dtype=np.float64)
        if mat.ndim != 2:
            raise ValueError(
                "pose rows must share one dof (got a ragged stack)"
            )
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(1, mat.nbytes)
        )
        view = np.ndarray(mat.shape, dtype=np.float64, buffer=self.shm.buf)
        view[:] = mat
        self.meta = {"name": self.shm.name, "shape": mat.shape}

    @staticmethod
    def unpack(meta: dict) -> np.ndarray:
        shm = shared_memory.SharedMemory(name=meta["name"])
        try:
            view = np.ndarray(
                tuple(meta["shape"]), dtype=np.float64, buffer=shm.buf
            )
            return np.array(view, copy=True)
        finally:
            shm.close()

    def release(self) -> None:
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-release guard
            pass


_POSE_TAG = "__shm_pose__"


def _strip_poses(state: dict, rows: List[np.ndarray]) -> dict:
    """Replace queued requests' pose arrays with shared-matrix row markers.

    Walks every place the exported service state holds a
    :class:`PlanRequest` (global queue, future arrivals, fairness queues)
    and swaps ``q_start``/``q_goal`` for ``(tag, row)`` markers, appending
    the poses to ``rows``.  Returns a new state dict; the parent's live
    state is never mutated.
    """

    def strip(request: PlanRequest) -> PlanRequest:
        start_row = len(rows)
        rows.append(np.asarray(request.q_start, dtype=float))
        goal_row = len(rows)
        rows.append(np.asarray(request.q_goal, dtype=float))
        return replace(
            request,
            q_start=(_POSE_TAG, start_row),
            q_goal=(_POSE_TAG, goal_row),
        )

    out = dict(state)
    out["queue"] = [
        (priority, arrival_us, seq, strip(request))
        for priority, arrival_us, seq, request in state["queue"]
    ]
    out["arrivals"] = [
        (arrival_us, seq, strip(request))
        for arrival_us, seq, request in state["arrivals"]
    ]
    if state["drr"] is not None:
        drr = dict(state["drr"])
        drr["queues"] = {
            client: [
                (
                    priority,
                    arrival_us,
                    seq,
                    size,
                    (strip(item[0]), item[1]),
                )
                for priority, arrival_us, seq, size, item in queue
            ]
            for client, queue in state["drr"]["queues"].items()
        }
        out["drr"] = drr
    return out


def _hydrate_poses(state: dict, poses: Optional[np.ndarray]) -> dict:
    """Resolve ``_strip_poses`` markers back into pose arrays (worker)."""

    def resolve(value):
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and value[0] == _POSE_TAG
        ):
            return np.array(poses[value[1]], dtype=float, copy=True)
        return value

    def hydrate(request: PlanRequest) -> PlanRequest:
        return replace(
            request,
            q_start=resolve(request.q_start),
            q_goal=resolve(request.q_goal),
        )

    out = dict(state)
    out["queue"] = [
        (priority, arrival_us, seq, hydrate(request))
        for priority, arrival_us, seq, request in state["queue"]
    ]
    out["arrivals"] = [
        (arrival_us, seq, hydrate(request))
        for arrival_us, seq, request in state["arrivals"]
    ]
    if state["drr"] is not None:
        drr = dict(state["drr"])
        drr["queues"] = {
            client: [
                (
                    priority,
                    arrival_us,
                    seq,
                    size,
                    (hydrate(item[0]), item[1]),
                )
                for priority, arrival_us, seq, size, item in queue
            ]
            for client, queue in state["drr"]["queues"].items()
        }
        out["drr"] = drr
    return out


def _run_shard_job(job: dict) -> dict:
    """Drain one shard in a worker process (module-level for the pool).

    Rebuilds the scene from shared memory, reconstructs the shard service
    and its cache tiers from the shipped state, drains, and returns the
    post-drain state — the exact computation the parent would have run
    inline, in a different address space.
    """
    octree = SharedOctreeBuffer.unpack(job["octree"])
    poses = (
        SharedPoseBuffer.unpack(job["poses"])
        if job["poses"] is not None
        else None
    )
    config: ReproConfig = job["config"]
    cache = None
    if job["cache"] is not None:
        local = CollisionCache(
            quantum=config.cache.quantum,
            max_entries=config.cache.max_entries,
        )
        global_tier = None
        if job["global_entries"] is not None:
            global_tier = CollisionCache(
                quantum=config.cache.quantum,
                max_entries=config.cache.max_entries,
            )
        cache = TieredCollisionCache(local, global_tier)
        cache.load_state(job["cache"])  # sets both tiers' epochs
        if global_tier is not None:
            global_tier.adopt(job["global_entries"])
    service = PlanningService(
        job["robot"], octree, config=config, cache=cache
    )
    service.load_state(_hydrate_poses(job["state"], poses))
    report = service.run()
    return {
        "shard": job["shard"],
        "report": report,
        "state": service.export_state(),
        "cache": cache.export_state() if cache is not None else None,
        "fresh": cache.export_fresh() if cache is not None else [],
    }


# ----------------------------------------------------------------------
# The fleet report
# ----------------------------------------------------------------------


@dataclass
class FleetReport:
    """Deterministic merge of one drain's per-shard reports.

    ``responses`` is the shard reports' union (request ids are unique
    fleet-wide), merged in shard-index order.  ``sim_ms`` is the *maximum*
    shard clock — shards are parallel replicas, so the fleet's simulated
    drain time is the slowest shard, which is exactly why goodput scales
    with shard count at fixed offered load.  Count fields are sums;
    ``shard_sim_ms`` and ``shard_summaries`` keep the per-shard breakdown.
    """

    responses: Dict[str, PlanResponse]
    sim_ms: float
    rounds: int
    dispatches: int
    phases_answered: int
    poses_dispatched: int
    cache_counters: Optional[dict]
    status_counts: Dict[str, int] = field(default_factory=dict)
    shed_counts: Dict[str, int] = field(default_factory=dict)
    overload_histogram: Dict[str, int] = field(default_factory=dict)
    n_shards: int = 1
    shard_sim_ms: List[float] = field(default_factory=list)
    shard_summaries: List[dict] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.responses.values() if r.success)

    @property
    def shed(self) -> int:
        return sum(1 for r in self.responses.values() if r.status == "shed")

    @property
    def goodput(self) -> int:
        """Completed, successful responses that met their deadline."""
        return sum(
            1
            for r in self.responses.values()
            if r.status == "completed" and r.success and not r.deadline_missed
        )

    @property
    def requests_per_sim_s(self) -> float:
        if self.sim_ms <= 0:
            return 0.0
        return len(self.responses) / (self.sim_ms / 1e3)

    @property
    def goodput_per_sim_s(self) -> float:
        if self.sim_ms <= 0:
            return 0.0
        return self.goodput / (self.sim_ms / 1e3)

    _KEYS = (
        "responses",
        "sim_ms",
        "rounds",
        "dispatches",
        "phases_answered",
        "poses_dispatched",
        "cache_counters",
        "status_counts",
        "shed_counts",
        "overload_histogram",
        "n_shards",
        "shard_sim_ms",
        "shard_summaries",
    )

    def to_dict(self) -> dict:
        """Serialize under the common report protocol (kind
        ``"fleet_report"``; see :mod:`repro.harness.reports`)."""
        from repro.harness.reports import stamp_report

        return stamp_report(
            "fleet_report",
            {
                "responses": {
                    rid: response.to_dict()
                    for rid, response in sorted(self.responses.items())
                },
                "sim_ms": self.sim_ms,
                "rounds": self.rounds,
                "dispatches": self.dispatches,
                "phases_answered": self.phases_answered,
                "poses_dispatched": self.poses_dispatched,
                "cache_counters": self.cache_counters,
                "status_counts": dict(self.status_counts),
                "shed_counts": dict(self.shed_counts),
                "overload_histogram": dict(self.overload_histogram),
                "n_shards": self.n_shards,
                "shard_sim_ms": list(self.shard_sim_ms),
                "shard_summaries": [dict(s) for s in self.shard_summaries],
            },
        )

    @classmethod
    def from_dict(cls, data: dict) -> "FleetReport":
        from repro.harness.reports import unpack_report

        body = unpack_report(data, "fleet_report", cls._KEYS)
        return cls(
            responses={
                rid: PlanResponse.from_dict(response)
                for rid, response in body["responses"].items()
            },
            sim_ms=body["sim_ms"],
            rounds=body["rounds"],
            dispatches=body["dispatches"],
            phases_answered=body["phases_answered"],
            poses_dispatched=body["poses_dispatched"],
            cache_counters=body["cache_counters"],
            status_counts=dict(body["status_counts"]),
            shed_counts=dict(body["shed_counts"]),
            overload_histogram=dict(body["overload_histogram"]),
            n_shards=body["n_shards"],
            shard_sim_ms=list(body["shard_sim_ms"]),
            shard_summaries=[dict(s) for s in body["shard_summaries"]],
        )


def _merge_counter_dicts(dicts: Sequence[Dict[str, int]]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for d in dicts:
        for key, value in d.items():
            out[key] = out.get(key, 0) + value
    return out


# ----------------------------------------------------------------------
# The fleet
# ----------------------------------------------------------------------


class PlanningFleet:
    """N planning-service shards behind one deterministic router.

    ``config.fleet`` selects the shard count, router policy/seed, worker
    mode (``"inline"`` drains shards sequentially in index order;
    ``"process"`` drains them in a multiprocessing pool, bit-identically),
    and whether the fleet mounts a shared global cache tier.  Every shard
    is a full :class:`~repro.serving.service.PlanningService` built from
    the same config; ``make_service`` is literally the 1-shard special
    case (see :func:`repro.api.make_fleet`).
    """

    def __init__(
        self,
        robot: RobotModel,
        octree: Octree,
        config: Optional[ReproConfig] = None,
        telemetry=None,
    ):
        if config is None:
            config = ReproConfig.for_fleet()
        self.robot = robot
        self.octree = octree
        self.config = config
        self.telemetry = telemetry
        self.env_epoch = 0
        self.router = FleetRouter(config.fleet)
        self.n_shards = config.fleet.n_shards

        self.global_cache: Optional[CollisionCache] = None
        if config.cache.enabled and config.fleet.global_cache:
            self.global_cache = CollisionCache(
                quantum=config.cache.quantum,
                max_entries=config.cache.max_entries,
                telemetry=telemetry,
            )

        self.shards: List[PlanningService] = []
        self.caches: List[Optional[TieredCollisionCache]] = []
        for _ in range(self.n_shards):
            cache = None
            if config.cache.enabled:
                local = CollisionCache(
                    quantum=config.cache.quantum,
                    max_entries=config.cache.max_entries,
                    telemetry=telemetry,
                )
                cache = TieredCollisionCache(local, self.global_cache)
            self.shards.append(
                PlanningService(
                    robot,
                    octree,
                    config=config,
                    telemetry=telemetry,
                    cache=cache,
                )
            )
            self.caches.append(cache)
        self._request_ids: set = set()
        self._assignments: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Submission / environment
    # ------------------------------------------------------------------

    def submit(
        self, request: PlanRequest, arrival_ms: Optional[float] = None
    ) -> int:
        """Route one request to its shard; returns the shard index."""
        if request.request_id in self._request_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        shard = self.router.assign(request)
        self.shards[shard].submit(request, arrival_ms=arrival_ms)
        self._request_ids.add(request.request_id)
        self._assignments[request.request_id] = shard
        return shard

    def submit_many(
        self, requests: Sequence[Tuple[PlanRequest, Optional[float]]]
    ) -> List[int]:
        """Route ``(request, arrival_ms)`` pairs in order."""
        return [
            self.submit(request, arrival_ms=arrival_ms)
            for request, arrival_ms in requests
        ]

    def update_environment(self, octree: Octree) -> int:
        """Epoch-consistent invalidation broadcast (whole fleet idle).

        Computes the changed-region boxes once, invalidates the global
        tier once, and applies the same ``(octree, regions, epoch)``
        triple to every shard — all tiers land on the same epoch.  Raises
        without touching *any* shard if one of them still has queued or
        in-flight work (no partial broadcasts).  Returns the total number
        of cache entries dropped across every tier.
        """
        busy = [i for i, shard in enumerate(self.shards) if shard.num_pending]
        if busy:
            raise RuntimeError(
                "update_environment requires an idle fleet; shards "
                f"{busy} still have pending work (drain with run() first)"
            )
        regions = octree_delta_regions(self.octree, octree)
        epoch = self.env_epoch + 1
        dropped = 0
        if self.global_cache is not None:
            dropped += self.global_cache.invalidate_regions(regions)
        for shard in self.shards:
            dropped += shard.apply_environment_update(octree, regions, epoch)
        self.octree = octree
        self.env_epoch = epoch
        return dropped

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def run(self) -> FleetReport:
        """Drain every shard and merge their reports deterministically."""
        if self.config.fleet.workers == "process":
            reports, fresh = self._run_process()
        else:
            reports, fresh = self._run_inline()
        # Drain-boundary global-tier sync, in shard-index order (first
        # writer wins) — the global tier was frozen during the drain.
        if self.global_cache is not None:
            for entries in fresh:
                self.global_cache.adopt(entries)
        return self._merge_reports(reports)

    def _run_inline(self):
        reports = [shard.run() for shard in self.shards]
        fresh = [
            cache.export_fresh() if cache is not None else []
            for cache in self.caches
        ]
        return reports, fresh

    def _run_process(self):
        octree_buf = SharedOctreeBuffer(self.octree)
        pose_rows: List[np.ndarray] = []
        jobs = []
        for index, shard in enumerate(self.shards):
            state = _strip_poses(shard.export_state(), pose_rows)
            cache = self.caches[index]
            jobs.append(
                {
                    "shard": index,
                    "robot": self.robot,
                    "config": self.config,
                    "octree": octree_buf.meta,
                    "poses": None,  # patched below once the matrix exists
                    "state": state,
                    "cache": (
                        cache.export_state() if cache is not None else None
                    ),
                    "global_entries": (
                        self.global_cache.export_entries()
                        if self.global_cache is not None
                        else None
                    ),
                }
            )
        pose_buf = SharedPoseBuffer(pose_rows) if pose_rows else None
        if pose_buf is not None:
            for job in jobs:
                job["poses"] = pose_buf.meta
        try:
            ctx = get_context("fork") if os.name == "posix" else get_context()
            workers = min(self.n_shards, os.cpu_count() or 1)
            with ctx.Pool(processes=workers) as pool:
                # Pool.map returns results in job order regardless of
                # which worker finishes first — the merge below never
                # sees wall-clock interleaving.
                results = pool.map(_run_shard_job, jobs)
        finally:
            octree_buf.release()
            if pose_buf is not None:
                pose_buf.release()
        reports: List[ServiceReport] = []
        fresh: List[list] = []
        for result in results:
            index = result["shard"]
            shard = self.shards[index]
            shard.load_state(result["state"])
            shard.octree = self.octree
            cache = self.caches[index]
            if cache is not None and result["cache"] is not None:
                cache.load_state(result["cache"])
            reports.append(result["report"])
            fresh.append(result["fresh"])
        return reports, fresh

    def _merge_reports(self, reports: List[ServiceReport]) -> FleetReport:
        responses: Dict[str, PlanResponse] = {}
        for report in reports:
            responses.update(report.responses)
        cache_counters: Optional[dict] = None
        shard_counters = [
            r.cache_counters for r in reports if r.cache_counters is not None
        ]
        if shard_counters:
            cache_counters = _merge_counter_dicts(
                [
                    {k: v for k, v in c.items() if k != "epoch"}
                    for c in shard_counters
                ]
            )
            cache_counters["epoch"] = shard_counters[0]["epoch"]
            if self.global_cache is not None:
                # Only structural facts: probe counts for the global tier
                # already live in the shards' hits_global, and the tier
                # object's own counters depend on worker mode (process
                # workers probe private copies).
                cache_counters["global"] = {
                    "entries": len(self.global_cache),
                    "epoch": self.global_cache.epoch,
                }
        return FleetReport(
            responses=responses,
            sim_ms=max((r.sim_ms for r in reports), default=0.0),
            rounds=sum(r.rounds for r in reports),
            dispatches=sum(r.dispatches for r in reports),
            phases_answered=sum(r.phases_answered for r in reports),
            poses_dispatched=sum(r.poses_dispatched for r in reports),
            cache_counters=cache_counters,
            status_counts=_merge_counter_dicts(
                [r.status_counts for r in reports]
            ),
            shed_counts=_merge_counter_dicts([r.shed_counts for r in reports]),
            overload_histogram=_merge_counter_dicts(
                [r.overload_histogram for r in reports]
            ),
            n_shards=self.n_shards,
            shard_sim_ms=[r.sim_ms for r in reports],
            shard_summaries=[
                {
                    "shard": index,
                    "responses": len(report.responses),
                    "completed": report.completed,
                    "shed": report.shed,
                    "goodput": report.goodput,
                    "sim_ms": report.sim_ms,
                    "rounds": report.rounds,
                }
                for index, report in enumerate(reports)
            ],
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_pending(self) -> int:
        return sum(shard.num_pending for shard in self.shards)

    def shard_of(self, request_id: str) -> int:
        """Which shard a submitted request was routed to."""
        return self._assignments[request_id]

    def response(self, request_id: str) -> PlanResponse:
        return self.shards[self._assignments[request_id]].response(request_id)
