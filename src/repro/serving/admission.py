"""Admission control, load shedding, fairness, and preemption pricing.

Under polite traffic the service's priority queue is enough; under
overload it is exactly wrong — every queued request eventually runs, long
after its deadline, wasting capacity on work nobody will use.  This module
gives :class:`~repro.serving.service.PlanningService` an explicit behavior
contract for the overload regime:

- :class:`RequestStatus` — the typed terminal states.  Overload decisions
  are *statuses*, not exceptions: a request that cannot be served is shed
  at admission with :attr:`RequestStatus.SHED` (and a named reason), never
  silently dropped or cancelled mid-flight.
- :func:`overload_level` — maps queue backlog onto the resilience
  degradation ladder (:class:`~repro.resilience.degradation.
  DegradationLevel`), so serving-side shedding escalates through the same
  rungs the realtime runtime walks: healthy → estimate-based deadline
  shedding → best-effort shedding → shed-everything.
- :class:`AdmissionController` — the arrival/admission gates.  Everything
  is a pure function of the simulated clock and the service's own history,
  so a fixed seed fixes the shed set exactly.
- :class:`DeficitRoundRobin` — per-client fair admission.  Each client
  owns a FIFO-stable priority queue; a round-robin pass over clients in
  first-seen order tops up per-client deficit counters by a fixed quantum
  and admits while the deficit covers the head request's ``size``.  A
  flooding client can only consume its round-robin share; quiet clients
  accumulate deficit and are never starved (property-tested).
- :func:`priced_energy_pj` — prices a request's consumed work through the
  MPAccel energy model so preemption decisions ("this request has burned
  its energy budget") use the same cost model as the paper's accelerator
  accounting.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.accel.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.collision.stats import CollisionStats
from repro.resilience.degradation import DegradationLevel

__all__ = [
    "RequestStatus",
    "SHED_REASONS",
    "overload_level",
    "AdmissionController",
    "DeficitRoundRobin",
    "priced_energy_pj",
]


class RequestStatus(Enum):
    """How a request reached its terminal state."""

    #: The planner ran to completion (its result may still be a failure to
    #: find a path — see ``PlanResponse.success``).
    COMPLETED = "completed"
    #: Cancelled mid-flight by the deadline policy
    #: (``cancel_on_deadline_miss``).
    CANCELLED = "cancelled"
    #: Refused at admission by an overload gate; the planner never ran.
    SHED = "shed"
    #: Evicted mid-flight after exceeding its priced energy budget.
    PREEMPTED = "preempted"
    #: Aborted after exhausting retries against injected engine faults.
    FAILED = "failed"

    @property
    def label(self) -> str:
        return self.value


#: Why a request was shed (``PlanResponse.shed_reason``).
SHED_REASONS = (
    "queue_full",          # backlog at or beyond max_queue_depth
    "infeasible_deadline", # provably or estimably cannot meet its deadline
    "expired_in_queue",    # deadline lapsed before the request was admitted
    "best_effort_overload",# non-zero priority refused at a degraded rung
)


def overload_level(
    depth: int, max_queue_depth: Optional[int]
) -> DegradationLevel:
    """The serving-side degradation rung implied by queue backlog.

    Thresholds are quarters of ``max_queue_depth``: the ladder starts
    stepping down once the queue passes 25% of its bound and reaches
    :attr:`DegradationLevel.SAFE_STOP` (shed everything) at the bound.
    With no bound configured the service is always considered healthy.
    """
    if max_queue_depth is None:
        return DegradationLevel.FULL_REPLAN
    if depth >= max_queue_depth:
        return DegradationLevel.SAFE_STOP
    if depth * 4 >= max_queue_depth * 3:
        return DegradationLevel.REUSE_LAST_VALID
    if depth * 4 >= max_queue_depth:
        return DegradationLevel.REVALIDATE_ONLY
    return DegradationLevel.FULL_REPLAN


@dataclass
class AdmissionDecision:
    """Outcome of one arrival/admission gate check."""

    admitted: bool
    reason: Optional[str] = None
    level: DegradationLevel = DegradationLevel.FULL_REPLAN


class AdmissionController:
    """The shedding gates, driven entirely by deterministic service state.

    ``floor_ms`` is the provable lower bound on any non-trivial request's
    service time (one dispatch overhead): a deadline below it cannot be met
    by construction.  The estimate-based gate uses the running mean of
    completed requests' service times — a pure function of the run so far,
    hence replayable.
    """

    def __init__(
        self,
        max_queue_depth: Optional[int],
        floor_ms: float,
        telemetry=None,
    ):
        self.max_queue_depth = max_queue_depth
        self.floor_ms = floor_ms
        self.telemetry = telemetry
        self._service_us_total = 0.0
        self._service_count = 0
        self.shed_counts: Dict[str, int] = {reason: 0 for reason in SHED_REASONS}
        self.level_history: List[DegradationLevel] = []

    # -- history ------------------------------------------------------

    def observe_completion(self, service_us: float) -> None:
        """Feed one completed request's service time into the estimator."""
        self._service_us_total += max(0.0, service_us)
        self._service_count += 1

    @property
    def estimated_service_ms(self) -> Optional[float]:
        """Running mean service time of completed requests (None early)."""
        if self._service_count == 0:
            return None
        return self._service_us_total / self._service_count / 1e3

    # -- gates --------------------------------------------------------

    def check_arrival(
        self,
        queue_depth: int,
        deadline_ms: Optional[float],
        priority: int,
    ) -> AdmissionDecision:
        """Gate a new arrival against backlog and deadline feasibility."""
        level = overload_level(queue_depth, self.max_queue_depth)
        self.level_history.append(level)
        if level >= DegradationLevel.SAFE_STOP:
            return self._shed("queue_full", level)
        if deadline_ms is not None:
            if deadline_ms <= self.floor_ms:
                # Provable: even an empty service needs one dispatch.
                return self._shed("infeasible_deadline", level)
            estimate = self.estimated_service_ms
            if (
                level >= DegradationLevel.REVALIDATE_ONLY
                and estimate is not None
                and estimate * (queue_depth + 1) > deadline_ms
            ):
                return self._shed("infeasible_deadline", level)
        if level >= DegradationLevel.REUSE_LAST_VALID and priority > 0:
            return self._shed("best_effort_overload", level)
        self._count("admission.admitted")
        return AdmissionDecision(admitted=True, level=level)

    def check_admission(
        self, waited_ms: float, deadline_ms: Optional[float]
    ) -> AdmissionDecision:
        """Gate queue → in-flight: shed requests that expired while queued."""
        if deadline_ms is not None and waited_ms + self.floor_ms > deadline_ms:
            return self._shed("expired_in_queue", DegradationLevel.FULL_REPLAN)
        return AdmissionDecision(admitted=True)

    # -- fleet state shipping -----------------------------------------

    def export_state(self) -> dict:
        """Snapshot the estimator and tallies (process-mode shard jobs)."""
        return {
            "service_us_total": self._service_us_total,
            "service_count": self._service_count,
            "shed_counts": dict(self.shed_counts),
            "level_history": list(self.level_history),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self._service_us_total = state["service_us_total"]
        self._service_count = state["service_count"]
        self.shed_counts = dict(state["shed_counts"])
        self.level_history = list(state["level_history"])

    # -- internals ----------------------------------------------------

    def _shed(self, reason: str, level: DegradationLevel) -> AdmissionDecision:
        self.shed_counts[reason] += 1
        self._count("admission.shed")
        self._count(f"shed.{reason}")
        return AdmissionDecision(admitted=False, reason=reason, level=level)

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(name).inc()


class DeficitRoundRobin:
    """Deficit-round-robin admission over client ids.

    Entries are ``(priority, arrival_us, seq, item)`` per client — the same
    explicit FIFO-stable ordering contract as the service's global queue —
    and clients are visited in first-seen order.  Each visit tops the
    client's deficit up by ``quantum``; its head request is released while
    the deficit covers the request's ``size``.  Deficits are bounded by the
    head size, so an idle client cannot bank unlimited credit and then
    monopolize a round, but a client whose head request is larger than one
    quantum still accumulates across rounds and is never starved.
    """

    def __init__(self, quantum: float = 1.0):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self._queues: Dict[str, list] = {}
        self._order: List[str] = []
        self._deficit: Dict[str, float] = {}
        self._cursor = 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def clients(self) -> List[str]:
        return list(self._order)

    def push(
        self,
        client_id: str,
        priority: int,
        arrival_us: float,
        seq: int,
        size: float,
        item,
    ) -> None:
        if client_id not in self._queues:
            self._queues[client_id] = []
            self._deficit[client_id] = 0.0
            self._order.append(client_id)
        heapq.heappush(
            self._queues[client_id],
            (priority, arrival_us, seq, max(size, 0.0), item),
        )

    def pop_round(self, limit: int) -> List[object]:
        """Release up to ``limit`` requests with one DRR pass.

        One pass visits each backlogged client once, starting at the
        rotating cursor so leftover capacity does not always favor the
        first-seen client.  Returns the released items in admission order.
        """
        released: List[object] = []
        if limit <= 0 or not self._order:
            return released
        n = len(self._order)
        visited = 0
        start = self._cursor
        while len(released) < limit and visited < n:
            client = self._order[(start + visited) % n]
            visited += 1
            queue = self._queues[client]
            if not queue:
                self._deficit[client] = 0.0
                continue
            self._deficit[client] += self.quantum
            while queue and len(released) < limit:
                priority, arrival_us, seq, size, item = queue[0]
                if self._deficit[client] < size:
                    break
                heapq.heappop(queue)
                self._deficit[client] -= size
                released.append(item)
            if not queue:
                self._deficit[client] = 0.0
            else:
                # Bound banked credit to the head request's cost.
                head_size = queue[0][3]
                self._deficit[client] = min(
                    self._deficit[client], head_size
                )
        self._cursor = (start + visited) % n if n else 0
        return released

    def export_state(self) -> dict:
        """Snapshot queues, deficits, and the cursor (process-mode jobs).

        Per-client entry lists are copied as-is: a copy of a heapq list is
        itself a valid heap, so the restored queues pop in the same order.
        """
        return {
            "queues": {c: list(q) for c, q in self._queues.items()},
            "order": list(self._order),
            "deficit": dict(self._deficit),
            "cursor": self._cursor,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self._queues = {c: list(q) for c, q in state["queues"].items()}
        self._order = list(state["order"])
        self._deficit = dict(state["deficit"])
        self._cursor = state["cursor"]

    def drain_fifo(self) -> List[object]:
        """All remaining items in global (priority, arrival, seq) order."""
        merged = []
        for client in self._order:
            merged.extend(self._queues[client])
            self._queues[client] = []
            self._deficit[client] = 0.0
        merged.sort(key=lambda entry: entry[:3])
        return [entry[4] for entry in merged]


def priced_energy_pj(
    stats: CollisionStats, model: EnergyModel = DEFAULT_ENERGY_MODEL
) -> float:
    """Energy a request has consumed, priced through the MPAccel model.

    With full stats collection this is the activity-based cascade energy
    (multiplies, additions, SRAM reads, node visits — the paper's proxy);
    with stats collection off only pose counts survive, so each pose is
    priced at the model's OBB-generation cost as a stand-in floor.
    """
    energy = model.cascade_energy_pj(stats)
    if energy == 0.0 and stats.pose_checks:
        energy = stats.pose_checks * model.obb_generation_pj_per_link
    return energy
