"""Seeded trace-driven load generation for the planning service.

Production traffic is not a polite wave of simultaneous submissions: it is
an *open-loop* arrival process — clients do not wait for the service to
catch up before sending more — with bursts and heavy-tailed request sizes.
This module models that traffic as a pure function of a seed, so an
overload experiment replays bit-identically:

- :class:`TrafficSpec` freezes the model: ``kind="poisson"`` (open-loop
  Poisson arrivals at ``rate_rps``) or ``kind="onoff"`` (a Markov-modulated
  on/off process — exponentially distributed dwell times alternate between
  a burst state at ``burst_rate_rps`` and an idle state at
  ``idle_rate_rps``, the classic bursty-traffic model).  Request sizes are
  drawn from a bounded Pareto (``size_alpha``/``size_min``/``size_max``),
  the heavy-tailed shape measured for real request-size distributions.
- :meth:`TrafficSpec.generate` expands the spec into a
  :class:`TrafficTrace` — a frozen, ordered list of :class:`TrafficEvent`
  arrivals.  All randomness comes from ``SeedSequence(seed)`` children
  spawned in a fixed order, so the same spec always yields the same trace.
- Traces serialize through
  :func:`repro.harness.serialization.save_traffic_trace` /
  ``load_traffic_trace`` exactly like fault schedules: the file carries the
  spec *and* the expanded events, and loading re-validates that the events
  match the spec's regeneration (a tampered trace fails loudly).

:func:`requests_from_trace` maps a trace onto concrete
:class:`~repro.serving.service.PlanRequest` objects over a pool of
start/goal query pairs: an event's heavy-tailed ``size`` picks the pair
(by size rank, so bigger sizes select later — typically harder — pairs)
and becomes the request's fairness cost.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "TRAFFIC_KINDS",
    "TrafficSpec",
    "TrafficEvent",
    "TrafficTrace",
    "requests_from_trace",
]

#: Arrival-process kinds (validated by name).
TRAFFIC_KINDS = ("poisson", "onoff")


@dataclass(frozen=True)
class TrafficSpec:
    """One frozen traffic model: arrivals, burstiness, sizes, clients.

    ``rate_rps`` is the mean arrival rate in requests per *simulated*
    second.  For ``kind="onoff"`` the process alternates between a burst
    state emitting at ``burst_rate_rps`` and an idle state at
    ``idle_rate_rps`` with exponential dwell times (``mean_burst_ms`` /
    ``mean_idle_ms``); ``rate_rps`` is ignored there.  ``hot_fraction``
    routes that fraction of requests to client 0 (the "flooding" client of
    the fairness tests); the rest are spread uniformly over all clients.
    ``deadline_ms``/``priority`` stamp every generated request.
    """

    kind: str = "poisson"
    seed: int = 0
    n_requests: int = 64
    n_clients: int = 4
    rate_rps: float = 200.0
    burst_rate_rps: float = 2000.0
    idle_rate_rps: float = 20.0
    mean_burst_ms: float = 40.0
    mean_idle_ms: float = 160.0
    size_alpha: float = 1.5
    size_min: float = 1.0
    size_max: float = 8.0
    deadline_ms: Optional[float] = None
    priority: int = 0
    hot_fraction: float = 0.0

    def __post_init__(self):
        if self.kind not in TRAFFIC_KINDS:
            raise ValueError(
                f"unknown traffic kind {self.kind!r}; valid choices: "
                f"{list(TRAFFIC_KINDS)}"
            )
        for name in (
            "rate_rps",
            "burst_rate_rps",
            "idle_rate_rps",
            "mean_burst_ms",
            "mean_idle_ms",
            "size_alpha",
            "size_min",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {self.n_clients}")
        if self.size_max < self.size_min:
            raise ValueError(
                f"size_max ({self.size_max}) must be >= size_min "
                f"({self.size_min})"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive or None, got {self.deadline_ms}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficSpec":
        if not isinstance(data, dict):
            raise TypeError(
                f"TrafficSpec expects a dict, got {type(data).__name__}"
            )
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(
                f"unknown TrafficSpec key(s) {unknown}; valid keys: "
                f"{sorted(valid)}"
            )
        return cls(**data)

    # ------------------------------------------------------------------

    def generate(self) -> "TrafficTrace":
        """Expand the spec into its arrival trace (pure function of seed).

        Three independent streams are spawned in a fixed order — arrivals,
        client assignment, sizes — so adding clients or resizing one stream
        never perturbs the others.
        """
        arrival_rng, client_rng, size_rng = (
            np.random.default_rng(child)
            for child in np.random.SeedSequence(self.seed).spawn(3)
        )
        arrivals_ms = self._arrival_times_ms(arrival_rng)
        clients = self._client_ids(client_rng)
        sizes = self._sizes(size_rng)
        events = tuple(
            TrafficEvent(
                arrival_ms=float(arrivals_ms[i]),
                client_id=clients[i],
                request_id=f"t{i}",
                seed=self.seed * 100_003 + i,
                size=float(sizes[i]),
                priority=self.priority,
                deadline_ms=self.deadline_ms,
            )
            for i in range(self.n_requests)
        )
        return TrafficTrace(spec=self, events=events)

    def _arrival_times_ms(self, rng: np.random.Generator) -> np.ndarray:
        if self.kind == "poisson":
            gaps_ms = rng.exponential(1e3 / self.rate_rps, size=self.n_requests)
            return np.cumsum(gaps_ms)
        # onoff: walk the two-state chain, emitting arrivals at the state's
        # rate until the dwell expires.
        times: List[float] = []
        now_ms = 0.0
        burst = True
        state_end_ms = now_ms + rng.exponential(self.mean_burst_ms)
        while len(times) < self.n_requests:
            rate = self.burst_rate_rps if burst else self.idle_rate_rps
            gap_ms = rng.exponential(1e3 / rate)
            if now_ms + gap_ms > state_end_ms:
                now_ms = state_end_ms
                burst = not burst
                dwell = self.mean_burst_ms if burst else self.mean_idle_ms
                state_end_ms = now_ms + rng.exponential(dwell)
                continue
            now_ms += gap_ms
            times.append(now_ms)
        return np.asarray(times)

    def _client_ids(self, rng: np.random.Generator) -> List[str]:
        ids = []
        for _ in range(self.n_requests):
            if self.hot_fraction > 0.0 and rng.random() < self.hot_fraction:
                ids.append("client-0")
            else:
                ids.append(f"client-{int(rng.integers(self.n_clients))}")
        return ids

    def _sizes(self, rng: np.random.Generator) -> np.ndarray:
        """Bounded Pareto via inverse-CDF over uniform draws."""
        lo, hi, alpha = self.size_min, self.size_max, self.size_alpha
        if hi == lo:
            return np.full(self.n_requests, lo)
        u = rng.random(self.n_requests)
        la, ha = lo**alpha, hi**alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


@dataclass(frozen=True)
class TrafficEvent:
    """One arrival: when, who, how big, and the request's own seed."""

    arrival_ms: float
    client_id: str
    request_id: str
    seed: int
    size: float
    priority: int = 0
    deadline_ms: Optional[float] = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficEvent":
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(
                f"unknown TrafficEvent key(s) {unknown}; valid keys: "
                f"{sorted(valid)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class TrafficTrace:
    """A spec plus its expanded, time-ordered arrival events."""

    spec: TrafficSpec
    events: Tuple[TrafficEvent, ...]

    def __post_init__(self):
        times = [e.arrival_ms for e in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace events must be ordered by arrival_ms")

    @property
    def duration_ms(self) -> float:
        return self.events[-1].arrival_ms if self.events else 0.0

    @property
    def offered_rps(self) -> float:
        """Offered load over the trace span, requests per simulated second."""
        if self.duration_ms <= 0:
            return 0.0
        return len(self.events) / (self.duration_ms / 1e3)

    def clients(self) -> List[str]:
        """Distinct client ids, in first-arrival order."""
        seen: List[str] = []
        for event in self.events:
            if event.client_id not in seen:
                seen.append(event.client_id)
        return seen


def requests_from_trace(
    trace: TrafficTrace,
    pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
    planner: str = "rrt_connect",
) -> List[Tuple[object, float]]:
    """Materialize ``(PlanRequest, arrival_ms)`` pairs from a trace.

    Each event's heavy-tailed ``size`` is mapped to a query pair by rank
    within the spec's size band (``size_min`` → pair 0, ``size_max`` → the
    last pair) and carried on the request as its fairness cost.
    """
    from repro.serving.service import PlanRequest

    if not pairs:
        raise ValueError("requests_from_trace needs a non-empty pair pool")
    spec = trace.spec
    span = max(spec.size_max - spec.size_min, 1e-12)
    out = []
    for event in trace.events:
        frac = min(max((event.size - spec.size_min) / span, 0.0), 1.0)
        q_start, q_goal = pairs[int(round(frac * (len(pairs) - 1)))]
        request = PlanRequest(
            request_id=event.request_id,
            q_start=q_start,
            q_goal=q_goal,
            planner=planner,
            seed=event.seed,
            priority=event.priority,
            deadline_ms=event.deadline_ms,
            client_id=event.client_id,
            size=event.size,
        )
        out.append((request, event.arrival_ms))
    return out
