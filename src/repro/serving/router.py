"""Deterministic request-to-shard assignment for the planning fleet.

The router is the fleet's only scheduling authority: given a request it
names the shard that will serve it, and nothing downstream (worker pool
scheduling, process interleaving, drain order) may move the request
elsewhere.  Every policy is a pure function of the request's own fields
plus the router's fixed seed, so the assignment — and therefore each
shard's exact workload — is reproducible from the configuration alone.

Policies (see :data:`repro.config.ROUTER_POLICIES`):

``"hash"``
    Seeded CRC32 of the request id.  Uniform spread, no locality.
``"round_robin"``
    Submission order modulo shard count.  Exact load balance; the one
    policy that depends on call order rather than request content.
``"client"``
    Seeded CRC32 of the client id — all of one client's requests land on
    one shard, so per-client cache locality and FIFO ordering survive
    sharding.
``"region"``
    Seeded CRC32 of the start pose quantized to ``region_quantum`` —
    requests starting in the same configuration-space cell share a shard
    and therefore a local verdict-cache working set.

CRC32 rather than ``hash()``: Python's string hashing is salted per
process (PYTHONHASHSEED), which would break run-to-run determinism.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.config import FleetConfig

__all__ = ["FleetRouter"]


class FleetRouter:
    """Maps :class:`~repro.serving.service.PlanRequest` objects to shards."""

    def __init__(self, config: FleetConfig):
        self.config = config
        self.n_shards = config.n_shards
        self._seed_bytes = str(config.router_seed).encode()
        self._rr_next = 0

    def _crc(self, payload: bytes) -> int:
        return zlib.crc32(self._seed_bytes + payload)

    def assign(self, request) -> int:
        """The shard index (``0 <= i < n_shards``) that serves ``request``."""
        if self.n_shards == 1:
            return 0
        policy = self.config.router
        if policy == "round_robin":
            shard = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.n_shards
            return shard
        if policy == "hash":
            payload = request.request_id.encode()
        elif policy == "client":
            payload = request.client_id.encode()
        elif policy == "region":
            q = np.asarray(request.q_start, dtype=float)
            cells = np.round(q / self.config.region_quantum).astype(np.int64)
            payload = cells.tobytes()
        else:  # pragma: no cover - FleetConfig validates the policy name
            raise ValueError(f"unknown router policy {policy!r}")
        return self._crc(payload) % self.n_shards

    def reset(self) -> None:
        """Rewind order-dependent state (the round-robin cursor)."""
        self._rr_next = 0
