"""repro: a behavioral reproduction of MPAccel (ISCA 2023).

Public API tour:

- :mod:`repro.geometry` — OBB/AABB/sphere primitives, separating-axis test,
  16-bit fixed-point quantization.
- :mod:`repro.robot` — DH kinematics and the Jaco2/Baxter/planar presets.
- :mod:`repro.env` — scenes, voxel grids, octrees, scenario generation.
- :mod:`repro.collision` — the cascaded early-exit collision detection flow.
- :mod:`repro.planning` — RRT/RRT-Connect, shortcutting, the MPNet-style
  learning-based planner, and the CD trace recorder.
- :mod:`repro.neural` — the from-scratch numpy MLP behind the neural planner.
- :mod:`repro.accel` — the MPAccel cycle-level simulator: SAS scheduling
  policies, CECDU/OOCD timing, energy/area/power models.
- :mod:`repro.baselines` — behavioral CPU and GPU device models.
- :mod:`repro.resilience` — deterministic fault injection, per-tick
  deadline budgets, and the graceful-degradation ladder.
- :mod:`repro.serving` — the multi-client planning service: cross-request
  batching over an octree-versioned collision cache.
- :mod:`repro.config` — frozen, validated configuration dataclasses; the
  one coherent way to wire the stack (JSON round-trip included).
- :mod:`repro.api` — the facade: ``plan``/``make_runtime``/``make_service``
  from a :class:`~repro.config.ReproConfig`.
- :mod:`repro.harness` — workload construction and the per-figure/table
  experiment runners.
"""

__version__ = "1.0.0"
