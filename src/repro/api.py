"""The facade: build and run the stack from one typed config.

Every entry point takes a :class:`repro.config.ReproConfig` (or defaults
to one) and wires the layers without touching the deprecated string-kwarg
constructors:

- :func:`make_checker` — a collision checker (plus optional verdict cache)
  for one robot/octree pair;
- :func:`make_recorder` — a checker wrapped in a
  :class:`~repro.planning.recorder.CDTraceRecorder` with the configured
  query engine;
- :func:`plan` — one planning query end to end, returning a
  :class:`PlanOutcome` with the path, stats, and the recorder (for
  replaying the phase trace through the simulators);
- :func:`make_runtime` — the closed-loop realtime runtime
  (:class:`repro.accel.runtime.RobotRuntime`);
- :func:`make_fleet` — the sharded planning fleet
  (:class:`repro.serving.fleet.PlanningFleet`);
- :func:`make_service` — the multi-client planning service
  (:class:`repro.serving.PlanningService`), built as the 1-shard special
  case of :func:`make_fleet`.

The facade is intentionally thin: everything it builds can also be built
directly from the underlying classes' ``from_config`` / typed-config
paths.  CI runs the facade suite under ``-W error::DeprecationWarning`` to
prove no legacy shim is hit internally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.collision.checker import RobotEnvironmentChecker
from repro.collision.stats import CollisionStats
from repro.config import ReproConfig
from repro.planning.engine import make_engine
from repro.planning.recorder import CDTraceRecorder

__all__ = [
    "PlanOutcome",
    "make_checker",
    "make_recorder",
    "make_planner",
    "plan",
    "make_runtime",
    "make_fleet",
    "make_service",
]


def make_checker(
    robot,
    octree,
    config: Optional[ReproConfig] = None,
    *,
    stats=None,
    fault_injector=None,
    cache=None,
    telemetry=None,
) -> RobotEnvironmentChecker:
    """A collision checker wired from ``config`` (default bundle if None)."""
    config = ReproConfig() if config is None else config
    return RobotEnvironmentChecker.from_config(
        robot,
        octree,
        config,
        stats=stats,
        fault_injector=fault_injector,
        cache=cache,
        telemetry=telemetry,
    )


def make_recorder(
    robot,
    octree,
    config: Optional[ReproConfig] = None,
    *,
    fault_injector=None,
    cache=None,
    telemetry=None,
) -> CDTraceRecorder:
    """A trace recorder over the configured checker and query engine."""
    config = ReproConfig() if config is None else config
    checker = make_checker(
        robot,
        octree,
        config,
        fault_injector=fault_injector,
        cache=cache,
        telemetry=telemetry,
    )
    engine = make_engine(
        config.engine, checker, telemetry=telemetry, fault_injector=fault_injector
    )
    return CDTraceRecorder(checker, engine=engine)


def make_planner(recorder: CDTraceRecorder, kind: str):
    """A planner of ``kind`` over ``recorder``.

    ``"mpnet"`` is rejected here: the neural planner needs a sampler and a
    scanned point cloud of the scene, which a bare recorder does not carry
    — build :class:`~repro.planning.mpnet.MPNetPlanner` directly or use
    :func:`make_runtime` (whose stack scans the scene each tick).
    """
    from repro.planning import PLANNER_FACTORIES

    factory = PLANNER_FACTORIES.get(kind)
    if factory is None:
        extra = (
            " ('mpnet' needs scene context: build MPNetPlanner directly "
            "or use make_runtime)"
            if kind == "mpnet"
            else ""
        )
        raise ValueError(
            f"unknown planner {kind!r}; valid choices: "
            f"{sorted(PLANNER_FACTORIES)}{extra}"
        )
    return factory(recorder)


@dataclass
class PlanOutcome:
    """One :func:`plan` call: the emitted path plus its full CD record."""

    success: bool
    path: Optional[List[np.ndarray]]
    #: Raw planner return (a path list for RRT/PRM, a PlanResult for MPNet).
    result: object
    #: The checker's operation counts for this query.
    stats: CollisionStats
    #: Recorder holding the phase trace (replayable through the simulators).
    recorder: CDTraceRecorder

    @property
    def num_phases(self) -> int:
        return self.recorder.num_phases


def plan(
    robot,
    octree,
    q_start,
    q_goal,
    config: Optional[ReproConfig] = None,
    *,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
    planner_factory: Optional[Callable[[CDTraceRecorder], object]] = None,
    telemetry=None,
) -> PlanOutcome:
    """One planning query end to end through the configured stack.

    Deterministic in ``seed`` (or pass an explicit ``rng``).  With the
    default config this is the sequential scalar reference flow the
    differential tests compare every other configuration against.
    """
    config = ReproConfig() if config is None else config
    recorder = make_recorder(robot, octree, config, telemetry=telemetry)
    planner = (
        planner_factory(recorder)
        if planner_factory is not None
        else make_planner(recorder, config.planner)
    )
    if rng is None:
        rng = np.random.default_rng(seed)
    result = planner.plan(q_start, q_goal, rng)
    if result is None:
        success, path = False, None
    elif hasattr(result, "success"):
        success = bool(result.success)
        path = list(result.path) if result.success else None
    else:
        success, path = True, list(result)
    return PlanOutcome(
        success=success,
        path=path,
        result=result,
        stats=recorder.checker.stats,
        recorder=recorder,
    )


def make_runtime(
    robot,
    scene,
    accel_config,
    scene_update,
    config: Optional[ReproConfig] = None,
    *,
    telemetry=None,
    faults=None,
    clock=time.perf_counter,
):
    """The closed-loop realtime runtime, wired from ``config``.

    ``accel_config`` is the :class:`repro.accel.config.MPAccelConfig`
    pricing model (hardware-side); ``config`` wires the software stack
    (backend, engine, resilience, cache).
    """
    from repro.accel.runtime import RobotRuntime

    return RobotRuntime(
        robot,
        scene,
        accel_config,
        scene_update,
        telemetry=telemetry,
        faults=faults,
        clock=clock,
        repro=ReproConfig() if config is None else config,
    )


def make_fleet(robot, octree, config: Optional[ReproConfig] = None, *, telemetry=None):
    """The sharded planning fleet, wired from ``config``.

    Defaults to :meth:`ReproConfig.for_fleet` when ``config`` is None;
    ``config.fleet`` selects the shard count, router policy, worker mode,
    and global cache tier.
    """
    from repro.serving.fleet import PlanningFleet

    if config is None:
        config = ReproConfig.for_fleet()
    return PlanningFleet(robot, octree, config=config, telemetry=telemetry)


def make_service(robot, octree, config: Optional[ReproConfig] = None, *, telemetry=None):
    """The multi-client planning service: the 1-shard case of the fleet.

    Defaults to :meth:`ReproConfig.for_service` (batch backend + enabled
    collision cache) when ``config`` is None.  The service returned is the
    single shard of a 1-shard :func:`make_fleet` — one construction path
    for every shard count — so ``config.fleet.n_shards`` must be 1 here;
    ask for more shards through :func:`make_fleet`.
    """
    if config is None:
        config = ReproConfig.for_service()
    if config.fleet.n_shards != 1:
        raise ValueError(
            f"make_service builds the 1-shard special case, but "
            f"config.fleet.n_shards is {config.fleet.n_shards}; use "
            "make_fleet for a sharded deployment"
        )
    return make_fleet(robot, octree, config, telemetry=telemetry).shards[0]
