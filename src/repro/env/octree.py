"""Octree occupancy representation matching the MPAccel node encoding.

Section 5.2: each node's information word is 24 bits — occupancy state of
all eight octants plus the addresses of the child nodes for partially
occupied octants (8-bit addresses, so a hardware-resident octree holds at
most 256 nodes).  Only partially occupied octants have children; empty and
fully occupied octants terminate traversal at the parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.env.voxel import VoxelGrid
from repro.geometry.aabb import AABB

NODE_BITS = 24
CHILD_ADDRESS_BITS = 8
MAX_HARDWARE_NODES = 2**CHILD_ADDRESS_BITS


class OctantState(IntEnum):
    """Occupancy of one octant as stored in the node word."""

    EMPTY = 0
    FULL = 1
    PARTIAL = 2


@dataclass(frozen=True)
class OctreeNode:
    """One octree node: per-octant states and child addresses.

    ``children[k]`` is the node index for octant ``k`` when its state is
    PARTIAL, else ``None``.
    """

    states: Tuple[OctantState, ...]
    children: Tuple[Optional[int], ...]

    def __post_init__(self):
        if len(self.states) != 8 or len(self.children) != 8:
            raise ValueError("octree nodes have exactly 8 octants")
        for state, child in zip(self.states, self.children):
            if (state is OctantState.PARTIAL) != (child is not None):
                raise ValueError("exactly the PARTIAL octants must have children")

    def occupied_octants(self) -> Iterator[int]:
        """Indices of octants that are FULL or PARTIAL."""
        for k, state in enumerate(self.states):
            if state is not OctantState.EMPTY:
                yield k


class Octree:
    """An occupancy octree with hardware-style indexed node storage.

    ``nodes[0]`` is the root.  Node AABBs are not stored — the traverser
    derives a child's box from its parent's, as the Octree Traverser FSM
    does in hardware.
    """

    def __init__(self, nodes: List[OctreeNode], bounds: AABB, max_depth: int):
        if not nodes:
            raise ValueError("octree needs at least the root node")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.nodes = nodes
        self.bounds = bounds
        self.max_depth = max_depth

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_voxel_grid(cls, grid: VoxelGrid, max_depth: Optional[int] = None) -> "Octree":
        """Build from a voxel grid whose resolution is a power of two.

        When ``max_depth`` is below the grid's natural depth, octants that
        are partially occupied at the depth limit are conservatively marked
        FULL (never lose an obstacle).
        """
        resolution = grid.resolution
        if resolution < 2 or resolution & (resolution - 1):
            raise ValueError(
                "octree construction needs a power-of-two resolution >= 2, "
                f"got {resolution}"
            )
        natural_depth = max(1, resolution.bit_length() - 1)
        depth = natural_depth if max_depth is None else min(max_depth, natural_depth)
        # Precompute occupancy counts with a summed-area volume so octant
        # classification is O(1) per octant.
        occ = grid.occupancy.astype(np.int64)
        prefix = np.zeros((resolution + 1,) * 3, dtype=np.int64)
        prefix[1:, 1:, 1:] = occ.cumsum(0).cumsum(1).cumsum(2)

        def count(x0, y0, z0, size):
            x1, y1, z1 = x0 + size, y0 + size, z0 + size
            return (
                prefix[x1, y1, z1]
                - prefix[x0, y1, z1]
                - prefix[x1, y0, z1]
                - prefix[x1, y1, z0]
                + prefix[x0, y0, z1]
                + prefix[x0, y1, z0]
                + prefix[x1, y0, z0]
                - prefix[x0, y0, z0]
            )

        nodes: List[Optional[OctreeNode]] = []

        def build_node(x0, y0, z0, size, level) -> int:
            """Create the node for a PARTIAL cube; returns its address."""
            address = len(nodes)
            nodes.append(None)  # reserve the slot so children get later addresses
            half = size // 2
            states: List[OctantState] = []
            children: List[Optional[int]] = []
            for k in range(8):
                ox = x0 + (half if k & 1 else 0)
                oy = y0 + (half if k & 2 else 0)
                oz = z0 + (half if k & 4 else 0)
                n_occ = count(ox, oy, oz, half)
                if n_occ == 0:
                    states.append(OctantState.EMPTY)
                    children.append(None)
                elif n_occ == half**3:
                    states.append(OctantState.FULL)
                    children.append(None)
                elif level + 1 >= depth or half == 1:
                    # Depth limit: conservatively treat as fully occupied.
                    states.append(OctantState.FULL)
                    children.append(None)
                else:
                    states.append(OctantState.PARTIAL)
                    children.append(build_node(ox, oy, oz, half, level + 1))
            nodes[address] = OctreeNode(tuple(states), tuple(children))
            return address

        build_node(0, 0, 0, resolution, 0)
        return cls([n for n in nodes if n is not None], grid.bounds, depth)

    @classmethod
    def from_scene(cls, scene, resolution: int = 16, max_depth: Optional[int] = None) -> "Octree":
        """Rasterize a scene and build its octree in one step."""
        return cls.from_voxel_grid(VoxelGrid.from_scene(scene, resolution), max_depth)

    # ------------------------------------------------------------------
    # Queries and statistics
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def memory_bits(self) -> int:
        """SRAM footprint at 24 bits per node word."""
        return self.node_count * NODE_BITS

    @property
    def hardware_compatible(self) -> bool:
        """Whether node addresses fit the 8-bit child-address field."""
        return self.node_count <= MAX_HARDWARE_NODES

    def octant_aabb(self, parent: AABB, octant: int) -> AABB:
        """The box of octant ``octant`` of a node whose box is ``parent``."""
        quarter = parent.half_extents / 2.0
        sign = np.array(
            [
                1.0 if octant & 1 else -1.0,
                1.0 if octant & 2 else -1.0,
                1.0 if octant & 4 else -1.0,
            ]
        )
        return AABB(parent.center + sign * quarter, quarter)

    def occupied_leaves(self) -> List[AABB]:
        """All FULL octant boxes (the leaf set a voxel-parallel GPU kernel sees)."""
        leaves: List[AABB] = []
        stack = [(0, self.bounds)]
        while stack:
            address, box = stack.pop()
            node = self.nodes[address]
            for k in range(8):
                state = node.states[k]
                if state is OctantState.EMPTY:
                    continue
                child_box = self.octant_aabb(box, k)
                if state is OctantState.FULL:
                    leaves.append(child_box)
                else:
                    stack.append((node.children[k], child_box))
        return leaves

    def point_occupied(self, point) -> bool:
        """Occupancy lookup for a world point (EMPTY boundary points are free)."""
        point = np.asarray(point, dtype=float)
        if not self.bounds.contains_point(point):
            return False
        address, box = 0, self.bounds
        while True:
            node = self.nodes[address]
            rel = point - box.center
            octant = (
                (1 if rel[0] >= 0 else 0)
                | (2 if rel[1] >= 0 else 0)
                | (4 if rel[2] >= 0 else 0)
            )
            state = node.states[octant]
            if state is OctantState.EMPTY:
                return False
            if state is OctantState.FULL:
                return True
            address, box = node.children[octant], self.octant_aabb(box, octant)

    def pruned(self, max_depth: int) -> "Octree":
        """A coarser copy with subtrees below ``max_depth`` collapsed to FULL.

        This is the RoboRun-style variable-precision control the paper notes
        MPAccel supports (Section 8): pruning trades collision-detection
        latency for conservatism — a pruned octree never misses an obstacle,
        it only grows it.  Level 0 is the root node, so ``max_depth=1``
        keeps only the root.
        """
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        new_nodes: List[OctreeNode] = []

        def copy_node(address: int, level: int) -> int:
            new_address = len(new_nodes)
            new_nodes.append(None)  # type: ignore[arg-type]
            node = self.nodes[address]
            states: List[OctantState] = []
            children: List[Optional[int]] = []
            for state, child in zip(node.states, node.children):
                if state is OctantState.PARTIAL and level + 1 >= max_depth:
                    states.append(OctantState.FULL)
                    children.append(None)
                elif state is OctantState.PARTIAL:
                    states.append(OctantState.PARTIAL)
                    children.append(copy_node(child, level + 1))
                else:
                    states.append(state)
                    children.append(None)
            new_nodes[new_address] = OctreeNode(tuple(states), tuple(children))
            return new_address

        copy_node(0, 0)
        return Octree(
            [n for n in new_nodes if n is not None],
            self.bounds,
            min(self.max_depth, max_depth),
        )

    def depth_histogram(self) -> List[int]:
        """Node count per depth level (root = level 0)."""
        counts: List[int] = []
        stack = [(0, 0)]
        while stack:
            address, level = stack.pop()
            while len(counts) <= level:
                counts.append(0)
            counts[level] += 1
            node = self.nodes[address]
            for child in node.children:
                if child is not None:
                    stack.append((child, level + 1))
        return counts

    # ------------------------------------------------------------------
    # Serialization (for trace/artifact files)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation (node words + bounds)."""
        return {
            "bounds": {
                "center": self.bounds.center.tolist(),
                "half_extents": self.bounds.half_extents.tolist(),
            },
            "max_depth": self.max_depth,
            "nodes": [
                {
                    "states": [int(s) for s in node.states],
                    "children": [
                        -1 if child is None else child for child in node.children
                    ],
                }
                for node in self.nodes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Octree":
        bounds = AABB(
            data["bounds"]["center"], data["bounds"]["half_extents"]
        )
        nodes = [
            OctreeNode(
                tuple(OctantState(s) for s in node["states"]),
                tuple(None if c < 0 else c for c in node["children"]),
            )
            for node in data["nodes"]
        ]
        return cls(nodes, bounds, data["max_depth"])

    def __repr__(self) -> str:
        return (
            f"Octree(nodes={self.node_count}, depth<={self.max_depth}, "
            f"bits={self.memory_bits})"
        )
