"""ASCII rendering of scenes, octrees, and robot poses.

Terminal-friendly visualization for examples and debugging: occupancy
slices and top-down projections, with optional robot-link overlays.  No
plotting dependency — the renderer emits plain strings.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.geometry.obb import OBB

#: Glyphs: free space, obstacle, robot, robot-over-obstacle (collision).
FREE_GLYPH = "."
OBSTACLE_GLYPH = "#"
ROBOT_GLYPH = "o"
OVERLAP_GLYPH = "X"


def _grid_points(bounds, axis_u: int, axis_v: int, fixed_axis: int, fixed_value: float, cells: int):
    """World-space sample points for a 2D slice grid, shape (cells, cells, 3)."""
    lo, hi = bounds.minimum, bounds.maximum
    us = np.linspace(lo[axis_u], hi[axis_u], cells)
    vs = np.linspace(lo[axis_v], hi[axis_v], cells)
    points = np.zeros((cells, cells, 3))
    for row, v in enumerate(vs[::-1]):  # top row = max v, like a map
        for col, u in enumerate(us):
            points[row, col, axis_u] = u
            points[row, col, axis_v] = v
            points[row, col, fixed_axis] = fixed_value
    return points


def render_slice(
    occupied,
    bounds,
    plane: str = "xy",
    offset: Optional[float] = None,
    cells: int = 40,
    robot_obbs: Sequence[OBB] = (),
) -> str:
    """Render one axis-aligned slice of an occupancy predicate.

    ``occupied(point) -> bool`` is the environment (a Scene or Octree
    lookup); ``plane`` picks the slice orientation (``"xy"``, ``"xz"``, or
    ``"yz"``); ``offset`` is the fixed coordinate (defaults to the bounds
    center).  Robot OBBs render as ``o`` (``X`` when over an obstacle).
    """
    axes = {"xy": (0, 1, 2), "xz": (0, 2, 1), "yz": (1, 2, 0)}
    if plane not in axes:
        raise ValueError(f"plane must be one of {sorted(axes)}, got {plane!r}")
    if cells < 2:
        raise ValueError(f"cells must be >= 2, got {cells}")
    axis_u, axis_v, fixed_axis = axes[plane]
    if offset is None:
        offset = float(bounds.center[fixed_axis])
    points = _grid_points(bounds, axis_u, axis_v, fixed_axis, offset, cells)

    lines: List[str] = []
    for row in range(cells):
        chars = []
        for col in range(cells):
            point = points[row, col]
            env_hit = bool(occupied(point))
            robot_hit = any(obb.contains_point(point) for obb in robot_obbs)
            if robot_hit and env_hit:
                chars.append(OVERLAP_GLYPH)
            elif robot_hit:
                chars.append(ROBOT_GLYPH)
            elif env_hit:
                chars.append(OBSTACLE_GLYPH)
            else:
                chars.append(FREE_GLYPH)
        lines.append("".join(chars))
    return "\n".join(lines)


def render_scene(
    scene: Scene,
    plane: str = "xy",
    offset: Optional[float] = None,
    cells: int = 40,
    robot_obbs: Sequence[OBB] = (),
) -> str:
    """ASCII slice of a scene's ground-truth obstacles."""
    return render_slice(
        scene.occupied, scene.bounds, plane, offset, cells, robot_obbs
    )


def render_octree(
    octree: Octree,
    plane: str = "xy",
    offset: Optional[float] = None,
    cells: int = 40,
    robot_obbs: Sequence[OBB] = (),
) -> str:
    """ASCII slice of an octree's occupancy (what the accelerator sees)."""
    return render_slice(
        octree.point_occupied, octree.bounds, plane, offset, cells, robot_obbs
    )


def render_top_down(
    scene: Scene,
    cells: int = 40,
    robot_obbs: Sequence[OBB] = (),
) -> str:
    """Top-down projection: a cell is occupied if *any* height is occupied.

    Obstacles are AABBs, so the projection only needs their footprints.
    """

    def column_occupied(point) -> bool:
        return any(
            ob.minimum[0] <= point[0] <= ob.maximum[0]
            and ob.minimum[1] <= point[1] <= ob.maximum[1]
            for ob in scene.obstacles
        )

    def any_obb_column(point) -> bool:
        probe = np.array(point)
        for obb in robot_obbs:
            lo_z = obb.center[2] - obb.bounding_sphere_radius
            hi_z = obb.center[2] + obb.bounding_sphere_radius
            for z in np.linspace(lo_z, hi_z, 5):
                probe[2] = z
                if obb.contains_point(probe):
                    return True
        return False

    bounds = scene.bounds
    cells_grid = _grid_points(bounds, 0, 1, 2, 0.0, cells)
    lines: List[str] = []
    for row in range(cells):
        chars = []
        for col in range(cells):
            point = cells_grid[row, col]
            env_hit = column_occupied(point)
            robot_hit = any_obb_column(point)
            if robot_hit and env_hit:
                chars.append(OVERLAP_GLYPH)
            elif robot_hit:
                chars.append(ROBOT_GLYPH)
            elif env_hit:
                chars.append(OBSTACLE_GLYPH)
            else:
                chars.append(FREE_GLYPH)
        lines.append("".join(chars))
    return "\n".join(lines)
