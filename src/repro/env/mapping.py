"""Sensor point-cloud to octree mapping (the OMU substrate).

The paper assumes an upstream mapping accelerator (Jia et al., DATE 2022)
turns sensor data into the environment octree once per motion planning
query.  We simulate that pipeline: sample a synthetic point cloud from the
obstacle surfaces, rasterize it into a voxel grid with optional dilation,
and build the octree MPAccel consumes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.env.voxel import VoxelGrid
from repro.geometry.aabb import AABB


def _sample_surface(aabb: AABB, n_points: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform points on the surface of an AABB, area-weighted per face."""
    h = aabb.half_extents
    areas = np.array([h[1] * h[2], h[0] * h[2], h[0] * h[1]], dtype=float)
    face_probs = np.repeat(areas / areas.sum() / 2.0, 2)  # +-x, +-y, +-z
    faces = rng.choice(6, size=n_points, p=face_probs)
    points = rng.uniform(-h, h, size=(n_points, 3))
    axis = faces // 2
    sign = np.where(faces % 2 == 0, 1.0, -1.0)
    points[np.arange(n_points), axis] = sign * h[axis]
    return points + aabb.center


def scan_scene_points(
    scene: Scene,
    points_per_obstacle: int = 400,
    noise_std: float = 0.0,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A synthetic depth-sensor point cloud of the scene's obstacle surfaces."""
    if points_per_obstacle < 1:
        raise ValueError(f"points_per_obstacle must be >= 1, got {points_per_obstacle}")
    if rng is None:
        rng = np.random.default_rng(seed)
    if not scene.obstacles:
        return np.empty((0, 3))
    clouds = [
        _sample_surface(obstacle, points_per_obstacle, rng)
        for obstacle in scene.obstacles
    ]
    points = np.concatenate(clouds, axis=0)
    if noise_std > 0.0:
        points = points + rng.normal(0.0, noise_std, size=points.shape)
    return points


class OccupancyMapper:
    """Incremental point-cloud occupancy mapping into an octree.

    Mirrors the role of the OMU mapping accelerator: MPAccel receives the
    finished octree, and the environment is updated once per planning query
    (Section 4).
    """

    def __init__(self, bounds: AABB, resolution: int = 16, dilation_cells: int = 0):
        self.grid = VoxelGrid(bounds, resolution)
        if dilation_cells < 0:
            raise ValueError(f"dilation_cells must be >= 0, got {dilation_cells}")
        self.dilation_cells = dilation_cells
        self._points_integrated = 0

    def integrate(self, points: np.ndarray) -> int:
        """Mark the voxels hit by ``points``; returns how many were in bounds."""
        points = np.asarray(points, dtype=float)
        if points.size == 0:
            return 0
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must be (n, 3), got {points.shape}")
        in_bounds = 0
        for point in points:
            if self.grid.bounds.contains_point(point):
                self.grid.mark_point(point)
                in_bounds += 1
        self._points_integrated += in_bounds
        return in_bounds

    @property
    def points_integrated(self) -> int:
        return self._points_integrated

    def to_octree(self, max_depth: Optional[int] = None) -> Octree:
        """Finalize the map into the octree the accelerator consumes."""
        grid = self.grid
        if self.dilation_cells:
            grid = grid.dilated(self.dilation_cells)
        return Octree.from_voxel_grid(grid, max_depth=max_depth)


def scene_to_octree_via_mapping(
    scene: Scene,
    resolution: int = 16,
    points_per_obstacle: int = 600,
    dilation_cells: int = 1,
    seed: Optional[int] = None,
) -> Octree:
    """Full sensor pipeline: scan the scene, map it, and build the octree."""
    mapper = OccupancyMapper(scene.bounds, resolution, dilation_cells)
    mapper.integrate(scan_scene_points(scene, points_per_obstacle, seed=seed))
    return mapper.to_octree()
