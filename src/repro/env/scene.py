"""A workspace scene: a cubic extent containing axis-aligned cuboid obstacles.

The benchmarks in Section 6 use environments with 5-9 randomly placed cuboid
obstacles whose per-dimension size is 3%-12% of the environment's extent;
this class is the ground-truth geometry those scenarios are built from.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.geometry.aabb import AABB


class Scene:
    """A cubic workspace with AABB obstacles.

    The cube spans x, y in [-extent/2, extent/2] and z in [0, extent], so a
    robot mounted at the origin stands on the workspace floor.
    """

    def __init__(self, extent: float, obstacles: Sequence[AABB] = ()):
        if extent <= 0:
            raise ValueError(f"extent must be positive, got {extent}")
        self.extent = float(extent)
        self.obstacles: List[AABB] = []
        for obstacle in obstacles:
            self.add_obstacle(obstacle)

    @property
    def bounds(self) -> AABB:
        half = self.extent / 2.0
        return AABB(
            center=[0.0, 0.0, half],
            half_extents=[half, half, half],
        )

    def add_obstacle(self, obstacle: AABB) -> None:
        if not self.bounds.overlaps(obstacle):
            raise ValueError(f"obstacle {obstacle} lies outside the workspace")
        self.obstacles.append(obstacle)

    @property
    def num_obstacles(self) -> int:
        return len(self.obstacles)

    def occupied(self, point) -> bool:
        """Whether a world point lies inside any obstacle."""
        return any(obstacle.contains_point(point) for obstacle in self.obstacles)

    def box_occupied(self, box: AABB) -> bool:
        """Whether an axis-aligned box overlaps any obstacle."""
        return any(obstacle.overlaps(box) for obstacle in self.obstacles)

    def box_fully_inside_obstacle(self, box: AABB) -> bool:
        """Whether a box is entirely contained in a single obstacle."""
        for obstacle in self.obstacles:
            if np.all(box.minimum >= obstacle.minimum) and np.all(
                box.maximum <= obstacle.maximum
            ):
                return True
        return False

    def occupied_volume_fraction(self) -> float:
        """Fraction of the workspace volume covered by obstacles.

        Overlapping obstacles are counted once via inclusion-exclusion on
        pairs only; benchmark scenes rarely overlap so this is exact there
        and a close upper bound otherwise.
        """
        total = sum(ob.volume for ob in self.obstacles)
        for i, a in enumerate(self.obstacles):
            for b in self.obstacles[i + 1 :]:
                total -= a.intersection_volume(b)
        return max(0.0, total) / self.bounds.volume

    def __repr__(self) -> str:
        return f"Scene(extent={self.extent}, obstacles={self.num_obstacles})"
