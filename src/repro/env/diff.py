"""Octree diffing and the environment-update bandwidth model.

Section 5: the controller receives the environment's occupancy from
sensors and ships it to SAS over a 5 GBPS bus, once per motion planning
query.  In a dynamic scene most of the octree is unchanged between ticks,
so a practical controller ships a *delta*: the node words that differ.
This module computes that delta between two octrees of the same extent
and prices the transfer, which the closed-loop runtime uses for its
per-tick IO cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.env.octree import NODE_BITS, Octree
from repro.geometry.aabb import AABB


@dataclass(frozen=True)
class OctreeDelta:
    """Structural difference between two octrees over the same bounds."""

    nodes_before: int
    nodes_after: int
    changed_nodes: int  # nodes of the new tree absent (by content+path) before

    @property
    def changed_bits(self) -> int:
        """Payload of a delta update: changed node words + 8-bit addresses."""
        return self.changed_nodes * (NODE_BITS + 8)

    @property
    def full_bits(self) -> int:
        """Payload of a full octree reload."""
        return self.nodes_after * NODE_BITS

    @property
    def is_identical(self) -> bool:
        return self.changed_nodes == 0 and self.nodes_before == self.nodes_after

    def transfer_bits(self) -> int:
        """What a smart controller ships: the cheaper of delta vs reload."""
        return min(self.changed_bits, self.full_bits)

    def transfer_time_s(self, io_gbps: float = 5.0) -> float:
        if io_gbps <= 0:
            raise ValueError(f"io_gbps must be positive, got {io_gbps}")
        return self.transfer_bits() / (io_gbps * 1e9)


def _canonical_nodes(octree: Octree):
    """Map each node's *path from the root* to its content signature.

    Node addresses are allocation-order artifacts, so the diff keys nodes
    by their octant path (stable across rebuilds) and compares the stored
    occupancy states.
    """
    out = {}
    stack = [(0, ())]
    while stack:
        address, path = stack.pop()
        node = octree.nodes[address]
        out[path] = tuple(int(s) for s in node.states)
        for octant, child in enumerate(node.children):
            if child is not None:
                stack.append((child, path + (octant,)))
    return out


def _path_box(bounds: AABB, path: Tuple[int, ...]) -> AABB:
    """The AABB of the node reached by an octant path from the root.

    Uses the same octant convention as the traverser
    (:meth:`Octree.octant_aabb`): bit 0 = +x half, bit 1 = +y, bit 2 = +z.
    """
    box = bounds
    for octant in path:
        box = box.octant(octant)
    return box


def octree_delta_regions(before: Octree, after: Octree) -> List[AABB]:
    """The octant boxes whose stored occupancy state changed between trees.

    For a node present in both trees, only the octants whose per-octant
    state differs contribute their (child-sized) boxes — not the node's
    whole box, which would invalidate eight times too much space per
    change.  A node present in only one tree contributes its whole box
    (its parent's octant state changed too, so this is redundant cover,
    kept for safety).

    The returned boxes bound every region whose occupancy *or traversal
    structure* can have changed: a traverser only reads an octant's state
    when the query volume intersects that octant's box, and only descends
    where the state says to, so any collision query whose footprint is
    disjoint from every returned box reads identical states and traverses
    identically in both trees.  The collision cache
    (:mod:`repro.collision.cache`) uses this to invalidate selectively on
    environment updates.
    """
    import numpy as np

    if not np.allclose(before.bounds.center, after.bounds.center) or not np.allclose(
        before.bounds.half_extents, after.bounds.half_extents
    ):
        raise ValueError("octree delta requires identical bounds")
    old = _canonical_nodes(before)
    new = _canonical_nodes(after)
    regions: List[AABB] = []
    seen = set()

    def add(box: AABB) -> None:
        key = (tuple(box.center), tuple(box.half_extents))
        if key not in seen:
            seen.add(key)
            regions.append(box)

    for path in sorted(set(old) | set(new)):
        if path in old and path in new:
            states_old, states_new = old[path], new[path]
            if states_old != states_new:
                box = _path_box(after.bounds, path)
                for octant, (a, b) in enumerate(zip(states_old, states_new)):
                    if a != b:
                        add(box.octant(octant))
        else:
            add(_path_box(after.bounds, path))
    return regions


def octree_delta(before: Octree, after: Octree) -> OctreeDelta:
    """Nodes of ``after`` whose path or content differs from ``before``."""
    import numpy as np

    if not np.allclose(before.bounds.center, after.bounds.center) or not np.allclose(
        before.bounds.half_extents, after.bounds.half_extents
    ):
        raise ValueError("octree delta requires identical bounds")
    old = _canonical_nodes(before)
    new = _canonical_nodes(after)
    changed = sum(
        1 for path, states in new.items() if old.get(path) != states
    )
    return OctreeDelta(
        nodes_before=before.node_count,
        nodes_after=after.node_count,
        changed_nodes=changed,
    )
