"""Octree diffing and the environment-update bandwidth model.

Section 5: the controller receives the environment's occupancy from
sensors and ships it to SAS over a 5 GBPS bus, once per motion planning
query.  In a dynamic scene most of the octree is unchanged between ticks,
so a practical controller ships a *delta*: the node words that differ.
This module computes that delta between two octrees of the same extent
and prices the transfer, which the closed-loop runtime uses for its
per-tick IO cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.env.octree import NODE_BITS, Octree


@dataclass(frozen=True)
class OctreeDelta:
    """Structural difference between two octrees over the same bounds."""

    nodes_before: int
    nodes_after: int
    changed_nodes: int  # nodes of the new tree absent (by content+path) before

    @property
    def changed_bits(self) -> int:
        """Payload of a delta update: changed node words + 8-bit addresses."""
        return self.changed_nodes * (NODE_BITS + 8)

    @property
    def full_bits(self) -> int:
        """Payload of a full octree reload."""
        return self.nodes_after * NODE_BITS

    @property
    def is_identical(self) -> bool:
        return self.changed_nodes == 0 and self.nodes_before == self.nodes_after

    def transfer_bits(self) -> int:
        """What a smart controller ships: the cheaper of delta vs reload."""
        return min(self.changed_bits, self.full_bits)

    def transfer_time_s(self, io_gbps: float = 5.0) -> float:
        if io_gbps <= 0:
            raise ValueError(f"io_gbps must be positive, got {io_gbps}")
        return self.transfer_bits() / (io_gbps * 1e9)


def _canonical_nodes(octree: Octree):
    """Map each node's *path from the root* to its content signature.

    Node addresses are allocation-order artifacts, so the diff keys nodes
    by their octant path (stable across rebuilds) and compares the stored
    occupancy states.
    """
    out = {}
    stack = [(0, ())]
    while stack:
        address, path = stack.pop()
        node = octree.nodes[address]
        out[path] = tuple(int(s) for s in node.states)
        for octant, child in enumerate(node.children):
            if child is not None:
                stack.append((child, path + (octant,)))
    return out


def octree_delta(before: Octree, after: Octree) -> OctreeDelta:
    """Nodes of ``after`` whose path or content differs from ``before``."""
    import numpy as np

    if not np.allclose(before.bounds.center, after.bounds.center) or not np.allclose(
        before.bounds.half_extents, after.bounds.half_extents
    ):
        raise ValueError("octree delta requires identical bounds")
    old = _canonical_nodes(before)
    new = _canonical_nodes(after)
    changed = sum(
        1 for path, states in new.items() if old.get(path) != states
    )
    return OctreeDelta(
        nodes_before=before.node_count,
        nodes_after=after.node_count,
        changed_nodes=changed,
    )
