"""Environment representation: scenes, voxel grids, and octrees.

MPAccel keeps the environment as an octree in on-chip SRAM (Section 5.2):
each 24-bit node stores the occupancy of its eight octants plus 8-bit child
addresses for the partially occupied ones.  This package builds that octree
from a scene of cuboid obstacles, optionally through a simulated sensor
point-cloud mapping stage (the Jia et al. mapping-accelerator substrate).
"""

from repro.env.generator import BENCHMARK_EXTENT, random_scene, scenario_suite
from repro.env.mapping import OccupancyMapper, scan_scene_points
from repro.env.diff import OctreeDelta, octree_delta, octree_delta_regions
from repro.env.octree import OctreeNode, Octree, OctantState
from repro.env.render import render_octree, render_scene, render_top_down
from repro.env.scene import Scene
from repro.env.voxel import VoxelGrid

__all__ = [
    "Scene",
    "VoxelGrid",
    "Octree",
    "OctreeNode",
    "OctantState",
    "random_scene",
    "scenario_suite",
    "BENCHMARK_EXTENT",
    "OccupancyMapper",
    "scan_scene_points",
    "render_scene",
    "render_octree",
    "render_top_down",
    "octree_delta",
    "octree_delta_regions",
    "OctreeDelta",
]
