"""Dense voxel occupancy grid over a cubic workspace.

The voxel grid is the intermediate representation between the scene (or a
sensor point cloud) and the octree: partially or fully occupied voxels are
set, the rest cleared (Section 2.2).
"""

from __future__ import annotations

import numpy as np

from repro.env.scene import Scene
from repro.geometry.aabb import AABB


class VoxelGrid:
    """A cubic ``resolution**3`` boolean occupancy grid over ``bounds``."""

    def __init__(self, bounds: AABB, resolution: int):
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        side = bounds.half_extents
        if not np.allclose(side, side[0]):
            raise ValueError("voxel grids require a cubic bounding box")
        self.bounds = bounds
        self.resolution = int(resolution)
        self.occupancy = np.zeros((resolution,) * 3, dtype=bool)

    @property
    def voxel_size(self) -> float:
        return float(2.0 * self.bounds.half_extents[0]) / self.resolution

    @classmethod
    def from_scene(cls, scene: Scene, resolution: int) -> "VoxelGrid":
        """Rasterize scene obstacles: any voxel touching an obstacle is set."""
        grid = cls(scene.bounds, resolution)
        lo = grid.bounds.minimum
        size = grid.voxel_size
        for obstacle in scene.obstacles:
            # Index range of voxels the obstacle can touch (half-open).
            start = np.floor((obstacle.minimum - lo) / size).astype(int)
            stop = np.ceil((obstacle.maximum - lo) / size).astype(int)
            start = np.clip(start, 0, resolution)
            stop = np.clip(stop, 0, resolution)
            grid.occupancy[
                start[0] : stop[0], start[1] : stop[1], start[2] : stop[2]
            ] = True
        return grid

    def index_of(self, point) -> tuple:
        """Voxel index containing a world point (clamped to the grid)."""
        rel = (np.asarray(point, dtype=float) - self.bounds.minimum) / self.voxel_size
        idx = np.clip(np.floor(rel).astype(int), 0, self.resolution - 1)
        return int(idx[0]), int(idx[1]), int(idx[2])

    def mark_point(self, point) -> None:
        if not self.bounds.contains_point(point):
            return
        self.occupancy[self.index_of(point)] = True

    def voxel_aabb(self, i: int, j: int, k: int) -> AABB:
        size = self.voxel_size
        lo = self.bounds.minimum + np.array([i, j, k], dtype=float) * size
        return AABB.from_min_max(lo, lo + size)

    @property
    def occupied_count(self) -> int:
        return int(np.count_nonzero(self.occupancy))

    def occupied_indices(self) -> np.ndarray:
        """Indices of occupied voxels, shape (n, 3)."""
        return np.argwhere(self.occupancy)

    def dilated(self, cells: int = 1) -> "VoxelGrid":
        """A copy with occupancy dilated by ``cells`` voxels per axis.

        Used to add a safety margin around sensed obstacles, the standard
        conservative treatment for mapping noise.
        """
        if cells < 0:
            raise ValueError(f"cells must be >= 0, got {cells}")
        out = VoxelGrid(self.bounds, self.resolution)
        occ = self.occupancy.copy()
        for _ in range(cells):
            grown = occ.copy()
            grown[1:, :, :] |= occ[:-1, :, :]
            grown[:-1, :, :] |= occ[1:, :, :]
            grown[:, 1:, :] |= occ[:, :-1, :]
            grown[:, :-1, :] |= occ[:, 1:, :]
            grown[:, :, 1:] |= occ[:, :, :-1]
            grown[:, :, :-1] |= occ[:, :, 1:]
            occ = grown
        out.occupancy = occ
        return out
