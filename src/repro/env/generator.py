"""Random benchmark scenario generation.

Section 6: "ten environmental scenarios ... each sample environment contains
5-9 randomly placed cuboid-shaped obstacles.  The size of these obstacles in
each dimension is limited to 3%-12% of the environment's extent."  A small
sphere around the robot mount is kept clear so starting configurations are
not trivially in collision.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.env.scene import Scene
from repro.geometry.aabb import AABB

#: Extent used by the paper's Jaco2 measurements (Section 7.2.2: 180 cm).
BENCHMARK_EXTENT = 1.8

#: Obstacle size band, as a fraction of the extent per dimension (Section 6).
OBSTACLE_SIZE_FRACTION = (0.03, 0.12)

#: Obstacle count band (Section 6).
OBSTACLE_COUNT_RANGE = (5, 9)

#: Radius (fraction of extent) of the keep-out ball around the robot mount.
_MOUNT_CLEARANCE_FRACTION = 0.12


def _mount_clear(
    center: np.ndarray,
    half: np.ndarray,
    extent: float,
    voxel_size: Optional[float] = None,
) -> bool:
    """Whether an obstacle candidate stays clear of the robot mount region.

    With ``voxel_size`` given, clearance is measured against the candidate
    box snapped *outward* to the voxel grid the octree rasterizer will use:
    the rasterizer marks every voxel the box touches, so at coarse
    resolutions the obstacle the checker actually sees can extend up to a
    whole cell past the exact AABB and bury a mount the exact box clears
    (leaving that robot with zero free configurations).
    """
    mount = np.array([0.0, 0.0, 0.0])
    lo = center - half
    hi = center + half
    if voxel_size is not None:
        origin = np.array([-extent / 2.0, -extent / 2.0, 0.0])
        lo = origin + np.floor((lo - origin) / voxel_size) * voxel_size
        hi = origin + np.ceil((hi - origin) / voxel_size) * voxel_size
    closest = np.clip(mount, lo, hi)
    clearance = _MOUNT_CLEARANCE_FRACTION * extent
    return float(np.linalg.norm(closest - mount)) > clearance


def random_scene(
    seed: Optional[int] = None,
    extent: float = BENCHMARK_EXTENT,
    n_obstacles: Optional[int] = None,
    size_fraction: Tuple[float, float] = OBSTACLE_SIZE_FRACTION,
    rng: Optional[np.random.Generator] = None,
    voxel_size: Optional[float] = None,
) -> Scene:
    """One benchmark environment with randomly placed cuboid obstacles.

    ``voxel_size`` (optional) is the rasterization cell size of the octree
    the scene will be voxelized at; when given, the mount keep-out test is
    applied to the grid-snapped obstacle box rather than the exact AABB,
    so coarse-resolution voxel inflation can never bury the mount.  The
    default (``None``) preserves the historical exact-box behavior and its
    rng acceptance stream bit-for-bit.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    if n_obstacles is None:
        n_obstacles = int(rng.integers(OBSTACLE_COUNT_RANGE[0], OBSTACLE_COUNT_RANGE[1] + 1))
    if n_obstacles < 0:
        raise ValueError(f"n_obstacles must be >= 0, got {n_obstacles}")
    lo_frac, hi_frac = size_fraction
    if not 0 < lo_frac <= hi_frac < 1:
        raise ValueError(f"invalid size fraction band {size_fraction}")

    scene = Scene(extent)
    bounds = scene.bounds
    placed = 0
    attempts = 0
    while placed < n_obstacles:
        attempts += 1
        if attempts > 200 * max(1, n_obstacles):
            raise RuntimeError(
                f"could not place {n_obstacles} obstacles in extent {extent}"
            )
        half = rng.uniform(lo_frac, hi_frac, size=3) * extent / 2.0
        center = rng.uniform(bounds.minimum + half, bounds.maximum - half)
        if not _mount_clear(center, half, extent, voxel_size):
            continue
        scene.add_obstacle(AABB(center, half))
        placed += 1
    return scene


def scenario_suite(
    n_scenes: int = 10,
    seed: int = 2023,
    extent: float = BENCHMARK_EXTENT,
    n_obstacles: Optional[int] = None,
) -> List[Scene]:
    """The benchmark suite: ``n_scenes`` independent random environments."""
    if n_scenes < 1:
        raise ValueError(f"n_scenes must be >= 1, got {n_scenes}")
    rng = np.random.default_rng(seed)
    return [
        random_scene(extent=extent, n_obstacles=n_obstacles, rng=rng)
        for _ in range(n_scenes)
    ]
