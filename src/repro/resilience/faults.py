"""Deterministic fault injection for the MPAccel stack.

A realtime motion planner that only *prices* its budget is not deployable:
production stacks must survive corrupted datapaths, dropped accelerator
lanes, sensor dropouts, and transient software failures.  This module
provides the fault side of that story: a seeded :class:`FaultInjector`
whose per-site random streams make every injected fault sequence exactly
reproducible, so chaos tests are regular regression tests.

Fault models (:class:`FaultModels`):

- **bit flips** in the quantized OBB datapath — one raw 16-bit word of a
  link OBB has one bit flipped after quantization, emulating an SEU in the
  fixed-point register file (hooked in
  :meth:`repro.collision.checker.RobotEnvironmentChecker.link_obbs`);
- **CDU lane drops/stalls** — a dispatched SAS query either loses its
  result (the pose must be re-dispatched) or completes late by a fixed
  stall penalty (hooked in :meth:`repro.accel.sas.SASSimulator.run`);
- **sensor dropout** — a control tick where the environment update never
  arrives, so the runtime keeps planning against a stale octree (hooked in
  :meth:`repro.accel.runtime.RobotRuntime.run`);
- **engine phase faults** — a planner-issued CD phase raises a transient
  exception or times out (hooked in
  :meth:`repro.planning.engine.QueryEngine.answer`); the runtime retries
  these with bounded backoff.

Every hook is gated on ``injector is not None and injector.enabled`` at the
call site, so a run without an injector (or with a disabled one) pays one
predicate — ``benchmarks/bench_resilience_overhead.py`` guards this at <=5%.

Determinism contract: each hook site owns an independent random stream
seeded from ``(seed, site name)``.  For a fixed seed and a fixed sequence
of hook calls per site, the injector fires the *same* faults with the same
details; the fired sequence is recorded in :attr:`FaultInjector.events` and
can be serialized for offline replay
(:func:`repro.harness.serialization.save_fault_schedule`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultModels",
    "FaultEvent",
    "FaultSchedule",
    "InjectedFault",
    "TransientEngineFault",
    "EngineTimeoutFault",
    "FaultInjector",
    "faults_active",
]


#: The fault vocabulary, in the order the hooks live along the datapath.
FAULT_KINDS = (
    "bit_flip",
    "lane_drop",
    "lane_stall",
    "sensor_dropout",
    "engine_exception",
    "engine_timeout",
)


class InjectedFault(RuntimeError):
    """Base class for exceptions raised by injected faults."""


class TransientEngineFault(InjectedFault):
    """A query engine phase failed transiently; the caller may retry."""


class EngineTimeoutFault(TransientEngineFault):
    """A query engine phase exceeded its (simulated) time allowance."""


@dataclass(frozen=True)
class FaultModels:
    """Per-model fault rates and parameters (all zero = inert injector).

    Rates are per hook invocation: per quantized link OBB for
    ``bit_flip_rate``, per SAS dispatch for the lane rates, per control
    tick for ``sensor_dropout_rate``, and per answered phase for the
    engine rates.
    """

    #: Probability a quantized link OBB gets one raw bit flipped.
    bit_flip_rate: float = 0.0
    #: Fixed bit position to flip (None = uniform over the word).
    bit_flip_bit: Optional[int] = None
    #: Probability a dispatched SAS query loses its result (re-dispatch).
    lane_drop_rate: float = 0.0
    #: Probability a dispatched SAS query stalls.
    lane_stall_rate: float = 0.0
    #: Extra completion latency of a stalled query, in CDU cycles.
    lane_stall_cycles: int = 4
    #: Probability a control tick sees no environment update (stale octree).
    sensor_dropout_rate: float = 0.0
    #: Probability an answered engine phase raises TransientEngineFault.
    engine_exception_rate: float = 0.0
    #: Probability an answered engine phase raises EngineTimeoutFault.
    engine_timeout_rate: float = 0.0

    def __post_init__(self):
        for name in (
            "bit_flip_rate",
            "lane_drop_rate",
            "lane_stall_rate",
            "sensor_dropout_rate",
            "engine_exception_rate",
            "engine_timeout_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.lane_stall_cycles < 1:
            raise ValueError(
                f"lane_stall_cycles must be >= 1, got {self.lane_stall_cycles}"
            )

    @property
    def any_active(self) -> bool:
        """Whether any model can ever fire."""
        return (
            self.bit_flip_rate > 0.0
            or self.lane_drop_rate > 0.0
            or self.lane_stall_rate > 0.0
            or self.sensor_dropout_rate > 0.0
            or self.engine_exception_rate > 0.0
            or self.engine_timeout_rate > 0.0
        )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultModels":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultModels fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault: where, what, and the site-local draw it fired on.

    ``detail`` carries model-specific data as a flat tuple (e.g. the word
    index and bit position of a bit flip, or the stall penalty in cycles).
    """

    site: str
    kind: str
    index: int
    detail: Tuple = ()


@dataclass
class FaultSchedule:
    """A serializable fault run: the generator key plus what actually fired.

    ``models`` + ``seed`` fully determine the schedule (the injector is
    deterministic), so a loaded schedule can rebuild an identical injector
    for replay; ``events`` is the fired-fault log of the recorded run, kept
    so a replay can be checked against the original.
    """

    models: FaultModels
    seed: int
    events: List[FaultEvent] = field(default_factory=list)

    def build_injector(self, telemetry=None) -> "FaultInjector":
        """A fresh injector that will reproduce this schedule exactly."""
        return FaultInjector(self.models, seed=self.seed, telemetry=telemetry)


class FaultInjector:
    """Seeded, deterministic fault source shared by every hook site.

    Each site (``"checker.obb"``, ``"sas.lane"``, ``"runtime.sensor"``,
    ``"engine.phase"``) draws from its own :class:`numpy.random.Generator`
    seeded from ``(seed, crc32(site))``, so the decision stream at one site
    is independent of how often the other sites are consulted — the
    schedule is a pure function of the seed and each site's call count.

    ``enabled=False`` turns every hook into a no-op without detaching it
    (the disabled-overhead benchmark attaches exactly this).  ``telemetry``
    (optional :class:`~repro.accel.telemetry.MetricsRegistry`) receives a
    ``faults.<kind>`` counter increment per fired fault.
    """

    def __init__(
        self,
        models: Optional[FaultModels] = None,
        seed: int = 0,
        enabled: bool = True,
        telemetry=None,
    ):
        self.models = models if models is not None else FaultModels()
        self.seed = int(seed)
        self.enabled = bool(enabled)
        self.telemetry = telemetry
        self.events: List[FaultEvent] = []
        self._rngs: Dict[str, np.random.Generator] = {}
        self._draws: Dict[str, int] = {}

    # -- stream plumbing ------------------------------------------------

    def _rng(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            entropy = [self.seed, zlib.crc32(site.encode("ascii"))]
            rng = self._rngs[site] = np.random.default_rng(entropy)
            self._draws[site] = 0
        return rng

    def _fire(self, site: str, kind: str, detail: Tuple = ()) -> FaultEvent:
        event = FaultEvent(site, kind, self._draws[site], detail)
        self.events.append(event)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter(f"faults.{kind}").inc()
        return event

    def reset(self) -> None:
        """Rewind every site stream and clear the fired-event log.

        After a reset the injector reproduces its schedule from the start —
        this is how a single injector instance drives two identical runs.
        """
        self.events.clear()
        self._rngs.clear()
        self._draws.clear()

    def schedule(self) -> FaultSchedule:
        """The serializable (models, seed, fired events) record of this run."""
        return FaultSchedule(
            models=self.models, seed=self.seed, events=list(self.events)
        )

    @property
    def fault_count(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- hook sites -----------------------------------------------------

    def corrupt_obb(self, obb, fmt):
        """Maybe flip one raw fixed-point bit of a quantized link OBB.

        The flip targets one of the six Q-format words (center xyz, half
        extents xyz); a half-extent flip is clamped to raw >= 1 because the
        conservative round-up of :func:`repro.geometry.fixed_point.quantize_obb`
        guarantees that floor and the OBB constructor enforces it.  Returns
        the (possibly corrupted) OBB.
        """
        models = self.models
        if models.bit_flip_rate <= 0.0:
            return obb
        site = "checker.obb"
        rng = self._rng(site)
        self._draws[site] += 1
        if rng.random() >= models.bit_flip_rate:
            return obb
        word = int(rng.integers(0, 6))
        if models.bit_flip_bit is not None:
            bit = int(models.bit_flip_bit) % fmt.total_bits
        else:
            bit = int(rng.integers(0, fmt.total_bits))
        from repro.geometry.obb import OBB

        center = np.array(obb.center, dtype=float)
        half = np.array(obb.half_extents, dtype=float)
        target = center if word < 3 else half
        axis = word % 3
        raw = fmt.to_raw(float(target[axis]))
        mask = (1 << fmt.total_bits) - 1
        flipped = (raw & mask) ^ (1 << bit)
        if flipped >= 1 << (fmt.total_bits - 1):
            flipped -= 1 << fmt.total_bits  # sign-extend back to two's complement
        if word >= 3 and flipped < 1:
            flipped = 1  # half extents stay positive (hardware round-up floor)
        target[axis] = fmt.from_raw(flipped)
        self._fire(site, "bit_flip", (word, bit))
        return OBB(center, half, obb.rotation)

    def lane_fault(self) -> Optional[Tuple]:
        """Fault decision for one SAS dispatch.

        Returns ``None`` (healthy), ``("drop",)`` (the query's result is
        lost and its pose must be re-dispatched), or ``("stall", cycles)``
        (the query completes late by ``cycles``).  Drop takes precedence
        over stall when both models are active.
        """
        models = self.models
        if models.lane_drop_rate <= 0.0 and models.lane_stall_rate <= 0.0:
            return None
        site = "sas.lane"
        rng = self._rng(site)
        self._draws[site] += 1
        draw = rng.random()
        if draw < models.lane_drop_rate:
            self._fire(site, "lane_drop")
            return ("drop",)
        if draw < models.lane_drop_rate + models.lane_stall_rate:
            cycles = int(models.lane_stall_cycles)
            self._fire(site, "lane_stall", (cycles,))
            return ("stall", cycles)
        return None

    def sensor_dropout(self, tick: int) -> bool:
        """Whether the environment update for ``tick`` was lost."""
        models = self.models
        if models.sensor_dropout_rate <= 0.0:
            return False
        site = "runtime.sensor"
        rng = self._rng(site)
        self._draws[site] += 1
        if rng.random() < models.sensor_dropout_rate:
            self._fire(site, "sensor_dropout", (tick,))
            return True
        return False

    def engine_phase(self, label: str = "") -> None:
        """Maybe fail one engine phase; raises on injection.

        Raises :class:`TransientEngineFault` (transient software failure)
        or :class:`EngineTimeoutFault` (phase exceeded its allowance);
        exception takes precedence when both models are active.
        """
        models = self.models
        if models.engine_exception_rate <= 0.0 and models.engine_timeout_rate <= 0.0:
            return
        site = "engine.phase"
        rng = self._rng(site)
        self._draws[site] += 1
        draw = rng.random()
        if draw < models.engine_exception_rate:
            self._fire(site, "engine_exception", (label,))
            raise TransientEngineFault(
                f"injected transient engine fault (phase {label!r})"
            )
        if draw < models.engine_exception_rate + models.engine_timeout_rate:
            self._fire(site, "engine_timeout", (label,))
            raise EngineTimeoutFault(f"injected engine timeout (phase {label!r})")


def faults_active(injector: Optional[FaultInjector]) -> bool:
    """The hook-site gate, shared so every call site agrees on it."""
    return injector is not None and injector.enabled and injector.models.any_active
