"""The graceful-degradation ladder the realtime runtime walks.

When a control tick cannot afford (or repeatedly fails) a full replan, the
runtime does not crash and does not ship a guess — it steps down a ladder
of strictly cheaper behaviors, each preserving the safety invariant that
*every emitted path was validated against the octree the runtime currently
holds*:

1. :attr:`DegradationLevel.FULL_REPLAN` — a fresh plan was produced and
   validated this tick (normal operation under change).
2. :attr:`DegradationLevel.REVALIDATE_ONLY` — the current path was
   re-validated against this tick's octree and kept; no planning happened.
3. :attr:`DegradationLevel.REUSE_LAST_VALID` — the current path was
   invalid or unaffordable, but an older known-good path re-validated
   clean against this tick's octree and was restored.
4. :attr:`DegradationLevel.SAFE_STOP` — nothing could be validated inside
   the budget; the runtime emits *no* path (the controller holds pose /
   engages brakes) rather than an unvalidated one.

Levels order by severity, so reports can aggregate with ``max`` and
histograms read top-to-bottom as "how degraded was the run".
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Iterable

__all__ = ["DegradationLevel", "degradation_histogram"]


class DegradationLevel(IntEnum):
    """Ladder rungs, ordered from healthy to safe-stop."""

    FULL_REPLAN = 0
    REVALIDATE_ONLY = 1
    REUSE_LAST_VALID = 2
    SAFE_STOP = 3

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "DegradationLevel":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown degradation level {label!r}; expected one of "
                f"{[level.label for level in cls]}"
            ) from None


def degradation_histogram(levels: Iterable[DegradationLevel]) -> Dict[str, int]:
    """Ladder-ordered ``{level label: count}`` over a run's tick levels."""
    counts = {level.label: 0 for level in DegradationLevel}
    for level in levels:
        counts[DegradationLevel(level).label] += 1
    return counts
