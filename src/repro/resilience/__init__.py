"""Resilience: deterministic fault injection, deadlines, degradation.

The robustness layer that turns the reproduction's realtime loop from a
latency *meter* into a system that survives faults: seeded fault injection
across the collision/scheduler/engine datapaths
(:mod:`repro.resilience.faults`), enforceable per-tick deadline budgets
with bounded retry backoff (:mod:`repro.resilience.deadline`), and the
graceful-degradation ladder the runtime walks when a tick cannot afford a
full replan (:mod:`repro.resilience.degradation`).
"""

from repro.resilience.deadline import DeadlineBudget, TickTimer
from repro.resilience.degradation import DegradationLevel, degradation_histogram
from repro.resilience.faults import (
    FAULT_KINDS,
    EngineTimeoutFault,
    FaultEvent,
    FaultInjector,
    FaultModels,
    FaultSchedule,
    InjectedFault,
    TransientEngineFault,
    faults_active,
)

__all__ = [
    "FAULT_KINDS",
    "FaultModels",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "InjectedFault",
    "TransientEngineFault",
    "EngineTimeoutFault",
    "faults_active",
    "DeadlineBudget",
    "TickTimer",
    "DegradationLevel",
    "degradation_histogram",
]
