"""Per-tick deadline budgets and bounded retry backoff.

The paper's deployment constraint is a ~1 ms actuator period: a control
tick that takes longer has already failed, however good its plan.  The
:class:`DeadlineBudget` makes that constraint *enforceable* rather than
merely measurable: :class:`repro.accel.runtime.RobotRuntime` charges each
tick's simulated cost (and optionally wall clock) against it and walks the
degradation ladder (:mod:`repro.resilience.degradation`) when the budget is
gone.

Two clocks, deliberately separate:

- ``sim_ms`` budgets the *modeled* tick cost — MPAccel planning latency
  plus the octree-update bus time plus retry backoff penalties.  It is a
  pure function of the workload, so deadline decisions driven by it are
  deterministic and replayable (the chaos tests pin them).
- ``wall_ms`` budgets the host's real elapsed time per tick.  Useful on a
  deployed controller; left ``None`` in tests because wall clock is not
  reproducible.

Retries of transient engine faults are budgeted too: attempt ``k`` adds
``backoff_ms * 2**k`` of simulated backoff, and at most ``max_retries``
retries are spent before the tick gives up and degrades.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["DeadlineBudget", "TickTimer"]


@dataclass(frozen=True)
class DeadlineBudget:
    """Per-tick time budget plus the transient-fault retry policy.

    ``sim_ms``/``wall_ms`` of ``None`` disable that clock; a budget with
    both disabled never triggers (it still bounds retries).
    """

    #: Simulated per-tick budget (MPAccel latency + bus time + backoff), ms.
    sim_ms: Optional[float] = 1.0
    #: Wall-clock per-tick budget, ms (None = not enforced).
    wall_ms: Optional[float] = None
    #: Retries allowed per tick for transient engine faults.
    max_retries: int = 2
    #: Simulated backoff charged for retry ``k``: ``backoff_ms * 2**k``.
    backoff_ms: float = 0.05

    def __post_init__(self):
        if self.sim_ms is not None and self.sim_ms <= 0:
            raise ValueError(f"sim_ms must be positive or None, got {self.sim_ms}")
        if self.wall_ms is not None and self.wall_ms <= 0:
            raise ValueError(f"wall_ms must be positive or None, got {self.wall_ms}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_ms < 0:
            raise ValueError(f"backoff_ms must be >= 0, got {self.backoff_ms}")

    def retry_penalty_ms(self, attempt: int) -> float:
        """Simulated backoff cost of retry number ``attempt`` (0-based)."""
        return self.backoff_ms * (2.0**attempt)

    def sim_exceeded(self, spent_ms: float) -> bool:
        return self.sim_ms is not None and spent_ms > self.sim_ms

    def sim_remaining(self, spent_ms: float) -> float:
        """Simulated budget left (inf when the sim clock is disabled)."""
        if self.sim_ms is None:
            return float("inf")
        return self.sim_ms - spent_ms

    def wall_exceeded(self, spent_ms: float) -> bool:
        return self.wall_ms is not None and spent_ms > self.wall_ms


class TickTimer:
    """Wall-clock stopwatch for one tick, with an injectable clock.

    Tests substitute a fake ``clock`` to exercise wall-budget decisions
    deterministically; production uses :func:`time.perf_counter`.
    """

    __slots__ = ("_clock", "_start")

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._start = clock()

    def elapsed_ms(self) -> float:
        return (self._clock() - self._start) * 1e3

    def restart(self) -> None:
        self._start = self._clock()
