"""Closed-loop robot runtime: sense -> map -> plan -> accelerate, per tick.

The paper's motivation is a robot reacting to a *dynamic* environment under
a ~1 ms actuator period.  This module couples the substrates into that
loop: each control tick the environment may change, the mapper rebuilds the
octree, the planner revalidates (and if needed replans) the current path,
and the MPAccel simulator prices the tick's computation.  The result is a
latency series showing whether the system holds the real-time budget as
obstacles move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from contextlib import nullcontext

from repro.accel.cecdu import CECDUModel
from repro.accel.config import MPAccelConfig
from repro.accel.mpaccel import MPAccelSimulator
from repro.accel.telemetry import MetricsRegistry
from repro.collision.checker import RobotEnvironmentChecker
from repro.env.mapping import scan_scene_points
from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.planning.engine import make_engine
from repro.planning.mpnet import MPNetPlanner, PlanResult
from repro.planning.recorder import CDTraceRecorder
from repro.planning.samplers import HeuristicSampler
from repro.robot.model import RobotModel


@dataclass
class TickReport:
    """What happened during one control tick."""

    tick: int
    replanned: bool
    plan_valid: bool
    planning_ms: float
    phases: int
    poses_checked: int
    #: Time to ship the environment octree delta over the 5 GBPS bus.
    octree_update_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.planning_ms + self.octree_update_ms


@dataclass
class RuntimeReport:
    """The full run: per-tick reports plus the final plan state."""

    ticks: List[TickReport] = field(default_factory=list)
    final_path: List[np.ndarray] = field(default_factory=list)

    @property
    def worst_tick_ms(self) -> float:
        return max((t.total_ms for t in self.ticks), default=0.0)

    @property
    def replan_count(self) -> int:
        return sum(1 for t in self.ticks if t.replanned)

    def meets_budget(self, budget_ms: float = 1.0) -> bool:
        return self.worst_tick_ms <= budget_ms


class RobotRuntime:
    """Drives plan maintenance against a mutating scene.

    ``scene_update(scene, tick, rng)`` mutates the scene in place (move or
    add obstacles) and returns True when something changed; ticks without
    changes only revalidate the current path.

    ``backend`` selects the collision checker implementation; with
    ``"batch"`` the MPAccel simulator primes every CD phase's ground truth
    through one vectorized dispatch before pricing it (bit-identical
    verdicts, see :func:`repro.accel.sas.prime_phase`).  ``engine`` selects
    the planner-side query engine (``"sequential"`` or ``"batch"``; see
    :mod:`repro.planning.engine`) — with ``engine="batch"`` every planner
    phase is answered by one vectorized dispatch *during* planning, which
    both speeds up the tick and leaves the phases pre-primed for pricing.
    The inline ``"simulated"`` engine is rejected here because the runtime
    already prices each tick through :class:`MPAccelSimulator`; routing
    planning through SAS as well would double-count the work.
    ``telemetry`` receives a per-tick scope with the SAS counters.
    """

    def __init__(
        self,
        robot: RobotModel,
        scene: Scene,
        config: MPAccelConfig,
        scene_update: Callable[[Scene, int, np.random.Generator], bool],
        octree_resolution: int = 16,
        motion_step: float = 0.05,
        backend: str = "scalar",
        engine: str = "sequential",
        telemetry: MetricsRegistry | None = None,
    ):
        if engine not in ("sequential", "batch"):
            raise ValueError(
                f"RobotRuntime supports engine 'sequential' or 'batch', got {engine!r}"
            )
        if engine == "batch" and backend != "batch":
            raise ValueError("engine='batch' requires backend='batch'")
        self.robot = robot
        self.scene = scene
        self.config = config
        self.scene_update = scene_update
        self.octree_resolution = octree_resolution
        self.motion_step = motion_step
        self.backend = backend
        self.engine = engine
        self.telemetry = telemetry
        self._previous_octree = None

    def _tick_scope(self, tick: int):
        if self.telemetry is not None and self.telemetry.enabled:
            return self.telemetry.scope("tick", str(tick))
        return nullcontext()

    def _octree_update_ms(self, octree: Octree) -> float:
        """Bus time to ship the environment update (delta when possible)."""
        from repro.env.diff import octree_delta

        if self._previous_octree is None:
            bits = octree.memory_bits
        else:
            bits = octree_delta(self._previous_octree, octree).transfer_bits()
        self._previous_octree = octree
        return bits / (self.config.io_gbps * 1e9) * 1e3

    def _build_stack(self, rng):
        octree = Octree.from_scene(self.scene, resolution=self.octree_resolution)
        checker = RobotEnvironmentChecker(
            self.robot, octree, motion_step=self.motion_step, collect_stats=False,
            backend=self.backend,
        )
        recorder = CDTraceRecorder(
            checker,
            engine=make_engine(self.engine, checker, telemetry=self.telemetry),
        )
        planner = MPNetPlanner(
            recorder,
            HeuristicSampler(self.robot),
            environment_points=scan_scene_points(self.scene, 60, rng=rng),
        )
        cecdu = CECDUModel(self.robot, octree, self.config.cecdu)
        accel = MPAccelSimulator(
            self.config, cecdu, sampler_pnet_macs=3_800_000,
            sampler_enet_macs=1_300_000, checker=checker,
            telemetry=self.telemetry,
        )
        return octree, checker, recorder, planner, accel

    def run(
        self,
        q_start,
        q_goal,
        n_ticks: int,
        rng: np.random.Generator,
    ) -> RuntimeReport:
        """Plan once, then maintain the plan through ``n_ticks`` updates."""
        report = RuntimeReport()
        with self._tick_scope(0):
            octree, checker, recorder, planner, accel = self._build_stack(rng)
            update_ms = self._octree_update_ms(octree)
            result = planner.plan(q_start, q_goal, rng)
            timing = accel.run_query(result, recorder.phases)
        report.ticks.append(
            TickReport(
                tick=0,
                replanned=True,
                plan_valid=result.success,
                planning_ms=timing.total_ms,
                phases=len(recorder.phases),
                poses_checked=recorder.total_poses,
                octree_update_ms=update_ms,
            )
        )
        path = list(result.path)

        for tick in range(1, n_ticks + 1):
            changed = self.scene_update(self.scene, tick, rng)
            if not changed and path:
                report.ticks.append(
                    TickReport(tick, False, bool(path), 0.0, 0, 0)
                )
                continue
            with self._tick_scope(tick):
                octree, checker, recorder, planner, accel = self._build_stack(rng)
                update_ms = self._octree_update_ms(octree)
                bad: Optional[int] = None
                if path:
                    bad = recorder.feasibility(path, label="revalidate")
                if path and bad is None:
                    # Path survived the update: the tick only paid revalidation.
                    result = PlanResult(success=True, path=path)
                    timing = accel.run_query(result, recorder.phases)
                    report.ticks.append(
                        TickReport(
                            tick, False, True, timing.total_ms,
                            len(recorder.phases), recorder.total_poses,
                            octree_update_ms=update_ms,
                        )
                    )
                    continue
                result = planner.plan(q_start, q_goal, rng)
                timing = accel.run_query(result, recorder.phases)
                path = list(result.path) if result.success else []
                report.ticks.append(
                    TickReport(
                        tick, True, result.success, timing.total_ms,
                        len(recorder.phases), recorder.total_poses,
                        octree_update_ms=update_ms,
                    )
                )
        report.final_path = path
        return report
