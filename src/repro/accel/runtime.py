"""Closed-loop robot runtime: sense -> map -> plan -> accelerate, per tick.

The paper's motivation is a robot reacting to a *dynamic* environment under
a ~1 ms actuator period.  This module couples the substrates into that
loop: each control tick the environment may change, the mapper rebuilds the
octree, the planner revalidates (and if needed replans) the current path,
and the MPAccel simulator prices the tick's computation.  The result is a
latency series showing whether the system holds the real-time budget as
obstacles move.

The loop does not merely *measure* the budget — it can enforce it.  With a
:class:`~repro.resilience.deadline.DeadlineBudget` attached, each tick
charges its simulated cost (octree-update bus time + MPAccel planning
latency + retry backoff) and optionally its wall clock against the budget,
retries transient engine faults with bounded exponential backoff, and walks
the graceful-degradation ladder
(:class:`~repro.resilience.degradation.DegradationLevel`) when the budget
or the retries are exhausted:

1. **full replan** — a fresh plan was produced and validated this tick;
2. **revalidate only** — the current path re-validated against this tick's
   octree and was kept;
3. **reuse last validated** — the current path was invalid or planning was
   unaffordable/failing, but an older known-good path re-validated clean
   against this tick's octree and was restored;
4. **safe stop** — nothing could be validated; the tick emits *no* path.

Safety invariant (pinned by ``tests/test_resilience_runtime.py``): every
path the loop emits was validated against the octree the runtime holds
that tick — under any injected fault sequence, an unvalidatable tick
reaches safe-stop instead of shipping a stale or unchecked path.

A :class:`~repro.resilience.faults.FaultInjector` plugs the loop into the
fault models (sensor dropout here; bit flips, lane faults, and engine
faults in the layers below).  With no deadline and no faults attached the
loop follows exactly the pre-resilience code path — fixed-seed runs are
bit-identical to it.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from contextlib import nullcontext

from repro.accel.cecdu import CECDUModel
from repro.accel.config import MPAccelConfig
from repro.accel.mpaccel import MPAccelSimulator
from repro.accel.telemetry import MetricsRegistry
from repro.collision.cache import CollisionCache
from repro.collision.checker import RobotEnvironmentChecker
from repro.config import EngineConfig, ReproConfig
from repro.env.diff import octree_delta_regions
from repro.env.mapping import scan_scene_points
from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.planning.engine import make_engine
from repro.planning.mpnet import MPNetPlanner, PlanResult
from repro.planning.recorder import CDTraceRecorder
from repro.planning.samplers import HeuristicSampler
from repro.resilience.deadline import DeadlineBudget, TickTimer
from repro.resilience.degradation import DegradationLevel, degradation_histogram
from repro.resilience.faults import FaultInjector, TransientEngineFault

#: Collision-checker backends the runtime accepts.
VALID_BACKENDS = ("scalar", "batch")
#: Query engines the runtime accepts ("simulated" is rejected: the runtime
#: already prices each tick through MPAccelSimulator, so routing planning
#: through SAS as well would double-count the work).
VALID_ENGINES = ("sequential", "batch")

#: Retry policy used when engine faults fire but no DeadlineBudget is
#: attached (resilience without deadlines still must not crash the loop).
DEFAULT_MAX_RETRIES = 2
DEFAULT_BACKOFF_MS = 0.05


@dataclass
class TickReport:
    """What happened during one control tick."""

    tick: int
    replanned: bool
    plan_valid: bool
    planning_ms: float
    phases: int
    poses_checked: int
    #: Time to ship the environment octree delta over the 5 GBPS bus.
    octree_update_ms: float = 0.0
    #: Ladder rung that produced this tick's emitted path (None for quiet
    #: ticks that did no validation work).
    degradation: Optional[str] = None
    #: Whether the tick exceeded its simulated or wall-clock budget.
    deadline_miss: bool = False
    #: Whether the tick ran against a stale octree (sensor dropout).
    stale_octree: bool = False
    #: Faults injected during this tick (all models).
    faults: int = 0
    #: Transient engine faults retried during this tick.
    retries: int = 0

    @property
    def total_ms(self) -> float:
        return self.planning_ms + self.octree_update_ms

    _KEYS = (
        "tick",
        "replanned",
        "plan_valid",
        "planning_ms",
        "phases",
        "poses_checked",
        "octree_update_ms",
        "degradation",
        "deadline_miss",
        "stale_octree",
        "faults",
        "retries",
    )

    def to_dict(self) -> dict:
        """JSON-native payload (nested inside a serialized report)."""
        return {
            "tick": self.tick,
            "replanned": self.replanned,
            "plan_valid": self.plan_valid,
            "planning_ms": self.planning_ms,
            "phases": self.phases,
            "poses_checked": self.poses_checked,
            "octree_update_ms": self.octree_update_ms,
            "degradation": self.degradation,
            "deadline_miss": self.deadline_miss,
            "stale_octree": self.stale_octree,
            "faults": self.faults,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TickReport":
        from repro.harness.reports import check_keys

        check_keys("TickReport", data, cls._KEYS)
        return cls(**data)


@dataclass
class RuntimeReport:
    """The full run: per-tick reports plus the final plan state."""

    ticks: List[TickReport] = field(default_factory=list)
    final_path: List[np.ndarray] = field(default_factory=list)

    @property
    def worst_tick_ms(self) -> float:
        return max((t.total_ms for t in self.ticks), default=0.0)

    @property
    def replan_count(self) -> int:
        return sum(1 for t in self.ticks if t.replanned)

    def meets_budget(self, budget_ms: float = 1.0) -> bool:
        return self.worst_tick_ms <= budget_ms

    # -- resilience accounting ----------------------------------------

    @property
    def deadline_miss_count(self) -> int:
        return sum(1 for t in self.ticks if t.deadline_miss)

    @property
    def safe_stop_count(self) -> int:
        return sum(
            1
            for t in self.ticks
            if t.degradation == DegradationLevel.SAFE_STOP.label
        )

    @property
    def fault_count(self) -> int:
        return sum(t.faults for t in self.ticks)

    @property
    def retry_count(self) -> int:
        return sum(t.retries for t in self.ticks)

    @property
    def stale_tick_count(self) -> int:
        return sum(1 for t in self.ticks if t.stale_octree)

    def degradation_levels(self) -> List[DegradationLevel]:
        """Ladder rungs of the ticks that did validation work, in order."""
        return [
            DegradationLevel.from_label(t.degradation)
            for t in self.ticks
            if t.degradation is not None
        ]

    @property
    def degradation_histogram(self) -> Dict[str, int]:
        """Ladder-ordered ``{rung label: tick count}`` for the run."""
        return degradation_histogram(self.degradation_levels())

    _KEYS = ("ticks", "final_path")

    def to_dict(self) -> dict:
        """Serialize under the common report protocol (kind
        ``"runtime_report"``; see :mod:`repro.harness.reports`)."""
        from repro.harness.reports import stamp_report

        return stamp_report(
            "runtime_report",
            {
                "ticks": [tick.to_dict() for tick in self.ticks],
                "final_path": [
                    np.asarray(q, dtype=float).tolist()
                    for q in self.final_path
                ],
            },
        )

    @classmethod
    def from_dict(cls, data: dict) -> "RuntimeReport":
        from repro.harness.reports import unpack_report

        body = unpack_report(data, "runtime_report", cls._KEYS)
        return cls(
            ticks=[TickReport.from_dict(tick) for tick in body["ticks"]],
            final_path=[
                np.asarray(q, dtype=float) for q in body["final_path"]
            ],
        )


class RobotRuntime:
    """Drives plan maintenance against a mutating scene.

    ``scene_update(scene, tick, rng)`` mutates the scene in place (move or
    add obstacles) and returns True when something changed; ticks without
    changes only revalidate the current path.

    ``repro`` (:class:`repro.config.ReproConfig`) is the typed way to wire
    the planning stack: collision backend, query-engine kind, motion step,
    octree resolution, resilience policy (deadline budget + audit flag),
    and the optional collision cache all come from one validated bundle.
    The legacy loose kwargs (``backend=``/``engine=`` strings, ``deadline=``,
    ``audit=``) keep working but emit a :class:`DeprecationWarning`, and
    cannot be combined with ``repro=``.

    ``backend`` selects the collision checker implementation; with
    ``"batch"`` the MPAccel simulator primes every CD phase's ground truth
    through one vectorized dispatch before pricing it (bit-identical
    verdicts, see :func:`repro.accel.sas.prime_phase`).  ``engine`` selects
    the planner-side query engine (``"sequential"`` or ``"batch"``; see
    :mod:`repro.planning.engine`) — with ``engine="batch"`` every planner
    phase is answered by one vectorized dispatch *during* planning, which
    both speeds up the tick and leaves the phases pre-primed for pricing.
    The inline ``"simulated"`` engine is rejected here because the runtime
    already prices each tick through :class:`MPAccelSimulator`; routing
    planning through SAS as well would double-count the work.
    ``telemetry`` receives a per-tick scope with the SAS counters.

    With ``repro.cache.enabled`` the runtime keeps one
    :class:`~repro.collision.cache.CollisionCache` across ticks: each tick's
    rebuilt checker shares it, and the octree delta between consecutive
    ticks selectively invalidates only the cached verdicts whose robot
    footprints overlap a changed region — verdicts for poses far from the
    moving obstacle survive the update.

    Resilience:

    - ``deadline`` (:class:`~repro.resilience.deadline.DeadlineBudget`)
      enforces a per-tick budget over the simulated tick cost (and wall
      clock when ``wall_ms`` is set) and bounds transient-fault retries;
    - ``faults`` (:class:`~repro.resilience.faults.FaultInjector`) attaches
      the deterministic fault models to every layer the runtime builds
      (checker bit flips, SAS lane faults, engine phase faults) plus the
      sensor-dropout model handled here;
    - ``audit=True`` keeps a flight-recorder list ``audit_trail`` of
      ``(tick, path, octree)`` for every emitted path, so tests (or an
      offline safety review) can re-validate each emission against the
      exact octree it was checked under;
    - ``clock`` is the wall-clock source for ``wall_ms`` budgets
      (injectable for deterministic tests).

    With ``deadline=None`` and no active faults the loop is bit-identical
    to the pre-resilience runtime (same calls, same rng draws).
    """

    def __init__(
        self,
        robot,
        scene: Scene,
        config: MPAccelConfig,
        scene_update: Callable[[Scene, int, np.random.Generator], bool],
        octree_resolution: Optional[int] = None,
        motion_step: Optional[float] = None,
        backend: Optional[str] = None,
        engine: Optional[str] = None,
        telemetry: MetricsRegistry | None = None,
        deadline: DeadlineBudget | None = None,
        faults: FaultInjector | None = None,
        audit: Optional[bool] = None,
        clock=time.perf_counter,
        repro: Optional[ReproConfig] = None,
    ):
        if repro is not None:
            overlapping = {
                "octree_resolution": octree_resolution,
                "motion_step": motion_step,
                "backend": backend,
                "engine": engine,
                "deadline": deadline,
                "audit": audit,
            }
            passed = sorted(k for k, v in overlapping.items() if v is not None)
            if passed:
                raise ValueError(
                    f"got both repro= and the legacy kwarg(s) {passed}; "
                    "express them through the ReproConfig instead"
                )
            if repro.engine.kind not in VALID_ENGINES:
                raise ValueError(
                    f"unknown engine {repro.engine.kind!r}; valid choices: "
                    f"{list(VALID_ENGINES)} (the 'simulated' engine is not "
                    "supported here: the runtime already prices ticks "
                    "through MPAccelSimulator)"
                )
            self.repro = repro
            deadline = repro.resilience.make_deadline()
            audit = repro.resilience.audit
        else:
            legacy = sorted(
                name
                for name, value in (
                    ("backend", backend),
                    ("engine", engine),
                    ("deadline", deadline),
                    ("audit", audit),
                )
                if value is not None
            )
            if legacy:
                warnings.warn(
                    f"passing {legacy} to RobotRuntime directly is "
                    "deprecated; wire them through "
                    "RobotRuntime(..., repro=ReproConfig(...)) or "
                    "repro.api.make_runtime",
                    DeprecationWarning,
                    stacklevel=2,
                )
            backend = "scalar" if backend is None else backend
            engine = "sequential" if engine is None else engine
            if backend not in VALID_BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; valid choices: {list(VALID_BACKENDS)}"
                )
            if engine not in VALID_ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; valid choices: {list(VALID_ENGINES)} "
                    "(the 'simulated' engine is not supported here: the runtime "
                    "already prices ticks through MPAccelSimulator)"
                )
            if engine == "batch" and backend != "batch":
                raise ValueError("engine='batch' requires backend='batch'")
            self.repro = ReproConfig(
                backend=backend,
                motion_step=0.05 if motion_step is None else motion_step,
                octree_resolution=(
                    16 if octree_resolution is None else octree_resolution
                ),
                collect_stats=False,
                engine=EngineConfig(kind=engine),
            )
        self.robot = robot
        self.scene = scene
        self.config = config
        self.scene_update = scene_update
        self.octree_resolution = self.repro.octree_resolution
        self.motion_step = self.repro.motion_step
        self.backend = self.repro.backend
        self.engine = self.repro.engine.kind
        self.telemetry = telemetry
        self.deadline = deadline
        self.faults = faults
        self.audit = bool(audit)
        self._clock = clock
        self._previous_octree = None
        self._stack: Optional[tuple] = None
        self._last_validated_path: List[np.ndarray] = []
        #: (tick, path, octree) per emitted path when ``audit=True``.
        self.audit_trail: List[tuple] = []
        #: Persistent verdict cache (``repro.cache.enabled``): survives the
        #: per-tick checker rebuild and is selectively invalidated from the
        #: octree delta each tick instead of being dropped.
        self._cache: Optional[CollisionCache] = None
        self._cache_octree: Optional[Octree] = None
        if self.repro.cache.enabled:
            self._cache = CollisionCache(
                quantum=self.repro.cache.quantum,
                max_entries=self.repro.cache.max_entries,
                telemetry=telemetry,
            )

    # -- plumbing ------------------------------------------------------

    def _tick_scope(self, tick: int):
        if self.telemetry is not None and self.telemetry.enabled:
            return self.telemetry.scope("tick", str(tick))
        return nullcontext()

    def _faults_on(self) -> bool:
        return (
            self.faults is not None
            and self.faults.enabled
            and self.faults.models.any_active
        )

    def _resilient(self) -> bool:
        return self.deadline is not None or self._faults_on()

    def _retry_policy(self) -> Tuple[int, float]:
        if self.deadline is not None:
            return self.deadline.max_retries, self.deadline.backoff_ms
        return DEFAULT_MAX_RETRIES, DEFAULT_BACKOFF_MS

    def _octree_update_ms(self, octree: Octree) -> float:
        """Bus time to ship the environment update (delta when possible)."""
        from repro.env.diff import octree_delta

        if self._previous_octree is None:
            bits = octree.memory_bits
        else:
            bits = octree_delta(self._previous_octree, octree).transfer_bits()
        self._previous_octree = octree
        return bits / (self.config.io_gbps * 1e9) * 1e3

    def _build_stack(self, rng):
        octree = Octree.from_scene(self.scene, resolution=self.octree_resolution)
        if self._cache is not None:
            if self._cache_octree is not None:
                self._cache.invalidate_regions(
                    octree_delta_regions(self._cache_octree, octree)
                )
            self._cache_octree = octree
        checker = RobotEnvironmentChecker.from_config(
            self.robot, octree, self.repro,
            fault_injector=self.faults, cache=self._cache,
            telemetry=self.telemetry,
        )
        recorder = CDTraceRecorder(
            checker,
            engine=make_engine(
                self.repro.engine, checker, telemetry=self.telemetry,
                fault_injector=self.faults,
            ),
        )
        planner = MPNetPlanner(
            recorder,
            HeuristicSampler(self.robot),
            environment_points=scan_scene_points(self.scene, 60, rng=rng),
        )
        cecdu = CECDUModel(self.robot, octree, self.config.cecdu)
        accel = MPAccelSimulator(
            self.config, cecdu, sampler_pnet_macs=3_800_000,
            sampler_enet_macs=1_300_000, checker=checker,
            telemetry=self.telemetry, fault_injector=self.faults,
        )
        self._stack = (octree, checker, recorder, planner, accel)
        return self._stack

    # -- the per-tick deliberation -------------------------------------

    def _with_retries(self, fn, budget: dict):
        """Run ``fn``, retrying transient engine faults with backoff.

        ``budget`` carries the tick's mutable ``retries``/``penalty_ms``
        counters.  Returns ``(value, True)`` on success or ``(None, False)``
        when the per-tick retry allowance is exhausted.
        """
        max_retries, backoff_ms = self._retry_policy()
        while True:
            try:
                return fn(), True
            except TransientEngineFault:
                if budget["retries"] >= max_retries:
                    return None, False
                budget["penalty_ms"] += backoff_ms * (2.0 ** budget["retries"])
                budget["retries"] += 1

    def _emit(self, tick: int, path, octree) -> None:
        if path:
            self._last_validated_path = list(path)
            if self.audit:
                self.audit_trail.append((tick, list(path), octree))

    def _record_resilience(self, report: TickReport) -> None:
        tel = self.telemetry
        if tel is None or not tel.enabled:
            return
        if report.deadline_miss:
            tel.counter("runtime.deadline_misses").inc()
        if report.retries:
            tel.counter("runtime.retries").inc(report.retries)
        if report.stale_octree:
            tel.counter("runtime.stale_ticks").inc()
        if report.degradation is not None:
            tel.counter(f"runtime.degradation.{report.degradation}").inc()

    def _deliberate_tick(
        self,
        tick: int,
        path: List[np.ndarray],
        q_start,
        q_goal,
        rng,
        update_ms: float,
        timer: Optional[TickTimer],
        stale: bool = False,
    ) -> Tuple[TickReport, List[np.ndarray]]:
        """Run one working tick's ladder; returns (report, emitted path).

        In non-resilient mode this follows the legacy flow exactly:
        revalidate (when a path exists), else replan, emit whatever the
        planner produced.  In resilient mode the flow adds retry-with-
        backoff around engine faults, a budget gate before the (expensive)
        replan rung, and the two fallback rungs below it.
        """
        octree, checker, recorder, planner, accel = self._stack
        deadline = self.deadline
        resilient = self._resilient()
        budget = {"retries": 0, "penalty_ms": 0.0}
        faults_before = self.faults.fault_count if self._faults_on() else 0
        miss = False
        planned = False
        result: Optional[PlanResult] = None
        level: Optional[DegradationLevel] = None
        new_path: List[np.ndarray] = []

        def over_budget(spent_ms: float) -> bool:
            if deadline is None:
                return False
            if deadline.sim_exceeded(spent_ms):
                return True
            return timer is not None and deadline.wall_exceeded(timer.elapsed_ms())

        # Rung 2 attempt: revalidate the current path against this octree.
        if path:
            if resilient:
                bad, ok = self._with_retries(
                    lambda: recorder.feasibility(path, label="revalidate"), budget
                )
            else:
                bad, ok = recorder.feasibility(path, label="revalidate"), True
            if ok and bad is None:
                # Path survived the update: the tick only paid revalidation.
                result = PlanResult(success=True, path=path)
                level = DegradationLevel.REVALIDATE_ONLY
                new_path = list(path)

        # Rung 1: full replan — unless the budget is already gone.
        if level is None:
            gated = False
            if resilient and deadline is not None:
                spent = update_ms + budget["penalty_ms"]
                if recorder.phases:
                    probe = accel.run_query(
                        PlanResult(success=False, path=[]), recorder.phases
                    )
                    spent += probe.total_ms
                gated = over_budget(spent)
                miss = miss or gated
            if not gated:
                planned = True
                if resilient:
                    result, ok = self._with_retries(
                        lambda: planner.plan(q_start, q_goal, rng), budget
                    )
                else:
                    result, ok = planner.plan(q_start, q_goal, rng), True
                if ok and result.success:
                    level = DegradationLevel.FULL_REPLAN
                    new_path = list(result.path)
                elif not resilient:
                    # Legacy behavior: a failed plan emits an empty path.
                    level = DegradationLevel.SAFE_STOP
                    new_path = []

        # Rung 3: restore the last known-good path if it still validates.
        if level is None and resilient:
            fallback = self._last_validated_path
            if fallback and not (
                len(fallback) == len(path)
                and all(np.array_equal(a, b) for a, b in zip(fallback, path))
            ):
                bad, ok = self._with_retries(
                    lambda: recorder.feasibility(fallback, label="reuse_last_valid"),
                    budget,
                )
                if ok and bad is None:
                    level = DegradationLevel.REUSE_LAST_VALID
                    new_path = list(fallback)

        # Rung 4: safe stop — emit nothing rather than an unvalidated path.
        if level is None:
            level = DegradationLevel.SAFE_STOP
            new_path = []

        if result is None:
            result = PlanResult(success=bool(new_path), path=new_path)
        timing = accel.run_query(result, recorder.phases)
        planning_ms = timing.total_ms + budget["penalty_ms"]
        miss = miss or over_budget(update_ms + planning_ms)

        plan_valid = bool(new_path)
        faults_now = self.faults.fault_count if self._faults_on() else 0
        tick_report = TickReport(
            tick=tick,
            replanned=planned,
            plan_valid=plan_valid,
            planning_ms=planning_ms,
            phases=len(recorder.phases),
            poses_checked=recorder.total_poses,
            octree_update_ms=update_ms,
            degradation=level.label,
            deadline_miss=miss,
            stale_octree=stale,
            faults=faults_now - faults_before,
            retries=budget["retries"],
        )
        self._emit(tick, new_path, octree)
        self._record_resilience(tick_report)
        return tick_report, new_path

    # -- the loop ------------------------------------------------------

    def run(
        self,
        q_start,
        q_goal,
        n_ticks: int,
        rng: np.random.Generator,
    ) -> RuntimeReport:
        """Plan once, then maintain the plan through ``n_ticks`` updates."""
        report = RuntimeReport()
        deadline = self.deadline
        self._last_validated_path = []
        self.audit_trail = []

        timer = TickTimer(self._clock) if deadline is not None else None
        with self._tick_scope(0):
            octree, *_ = self._build_stack(rng)
            update_ms = self._octree_update_ms(octree)
            tick_report, path = self._deliberate_tick(
                0, [], q_start, q_goal, rng, update_ms, timer
            )
        report.ticks.append(tick_report)

        for tick in range(1, n_ticks + 1):
            changed = self.scene_update(self.scene, tick, rng)
            dropout = False
            if changed and self._faults_on():
                dropout = self.faults.sensor_dropout(tick)
            if dropout and path:
                # The update was lost: the runtime observes nothing, keeps
                # its stale octree, and (having a validated path for that
                # octree) does no work — exactly a quiet tick, plus the
                # fault on the books.
                quiet = TickReport(
                    tick, False, bool(path), 0.0, 0, 0,
                    stale_octree=True, faults=1,
                )
                self._record_resilience(quiet)
                report.ticks.append(quiet)
                continue
            if not changed and path and not dropout:
                report.ticks.append(
                    TickReport(tick, False, bool(path), 0.0, 0, 0)
                )
                continue
            if deadline is not None:
                timer = TickTimer(self._clock)
            with self._tick_scope(tick):
                if dropout:
                    # No path to lean on and no update arrived: replan
                    # against the stale map (nothing new to ship, so no
                    # octree-update cost).  The cached stack's recorder
                    # still holds the previous tick's phases — clear it so
                    # this tick prices only its own work.
                    self._stack[2].clear()
                    tick_report, path = self._deliberate_tick(
                        tick, path, q_start, q_goal, rng, 0.0, timer, stale=True
                    )
                    tick_report.faults += 1  # the dropout itself
                else:
                    octree, *_ = self._build_stack(rng)
                    update_ms = self._octree_update_ms(octree)
                    tick_report, path = self._deliberate_tick(
                        tick, path, q_start, q_goal, rng, update_ms, timer
                    )
            report.ticks.append(tick_report)
        report.final_path = path
        return report
