"""The MPAccel cycle-level simulator.

Structure mirrors Figure 11: a Spatially Aware Scheduler (SAS) dispatches
collision detection queries to a pool of Cascaded Early-exit Collision
Detection Units (CECDUs); each CECDU contains an OBB Generation Unit and one
or four OBB-octree Collision Detectors (OOCDs) whose Intersection Units are
multi-cycle or pipelined.  The energy/area/power model composes per-block
constants calibrated to the paper's 45 nm synthesis (Table 2).
"""

from repro.accel.cecdu import CECDUModel, PoseCDOutcome
from repro.accel.config import (
    CECDUConfig,
    IntersectionUnitKind,
    MPAccelConfig,
    SASConfig,
)
from repro.accel.energy import EnergyModel, HardwareBlockLibrary
from repro.accel.limit import limit_study
from repro.accel.mpaccel import MPAccelSimulator, MotionPlanningTiming
from repro.accel.power_report import (
    BlockActivity,
    PowerReport,
    activity_from_sas_run,
    runtime_power_report,
)
from repro.accel.design_space import (
    DesignPoint,
    enumerate_configs,
    evaluate_design_space,
    pareto_frontier,
)
from repro.accel.runtime import RobotRuntime, RuntimeReport, TickReport
from repro.accel.policies import (
    POLICY_NAMES,
    SchedulingPolicy,
    make_policy,
    pose_order,
)
from repro.accel.sas import (
    DispatchEvent,
    PhaseStats,
    SASResult,
    SASSimulator,
    prime_phase,
    prime_phases,
)
from repro.accel.telemetry import MetricsRegistry, ScopeRecord, TraceEvent
from repro.accel.invariants import (
    InvariantViolation,
    SASInvariantError,
    check_sas_result,
    verify_sas_result,
)

__all__ = [
    "IntersectionUnitKind",
    "CECDUConfig",
    "SASConfig",
    "MPAccelConfig",
    "EnergyModel",
    "HardwareBlockLibrary",
    "CECDUModel",
    "PoseCDOutcome",
    "SASSimulator",
    "SASResult",
    "DispatchEvent",
    "PhaseStats",
    "prime_phase",
    "prime_phases",
    "MetricsRegistry",
    "ScopeRecord",
    "TraceEvent",
    "InvariantViolation",
    "SASInvariantError",
    "check_sas_result",
    "verify_sas_result",
    "limit_study",
    "MPAccelSimulator",
    "MotionPlanningTiming",
    "SchedulingPolicy",
    "make_policy",
    "pose_order",
    "POLICY_NAMES",
    "BlockActivity",
    "PowerReport",
    "activity_from_sas_run",
    "runtime_power_report",
    "RobotRuntime",
    "RuntimeReport",
    "TickReport",
    "DesignPoint",
    "enumerate_configs",
    "evaluate_design_space",
    "pareto_frontier",
]
