"""Structured metrics and event tracing for the accelerator simulators.

The paper's headline results are *accounting* claims — speedup, extra CD
tests, utilization of a cycle-stepped scheduler — so the simulators need an
observability layer that makes their counters inspectable and checkable.
This module provides it in three parts:

1. :class:`MetricsRegistry` — a counter/timer/histogram registry with
   per-phase and per-tick scopes and JSON/CSV export.  Simulators take an
   optional registry; the default (``None``) costs one predicate per run,
   and a disabled registry hands out shared no-op instruments, so the hot
   loops pay nothing measurable when telemetry is off.  The planner-side
   query engines (:mod:`repro.planning.engine`) report through the same
   registry: every answered phase gets an ``engine.phase`` scope plus
   per-engine/per-function-mode counters, so planning and simulation share
   one observability surface.
2. :class:`TraceEvent` — the scheduler event trace (dispatch, completion,
   kill, refill, stop) that rides alongside the per-query
   ``DispatchEvent`` timeline.  ``SASSimulator.run_phases`` aggregates both
   with per-phase cycle offsets, and ``repro.harness.serialization`` can
   save/load them for offline replay.
3. The invariant checker in :mod:`repro.accel.invariants` consumes the
   recorded trace to validate any SAS run.

Vectorized planners (VAMP, pRRTC) validate their batched pipelines with
exactly this instrumentation-plus-invariant tooling; here it locks the
reproduced figures to the simulator's actual behavior.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Timer",
    "Histogram",
    "ScopeRecord",
    "MetricsRegistry",
    "TraceEvent",
    "EVENT_KINDS",
]


#: The scheduler event vocabulary (Section 5.1's state machine, observable).
#: ``drop``/``stall`` only appear when a fault injector is attached to the
#: simulator (:mod:`repro.resilience.faults`).
EVENT_KINDS = ("dispatch", "complete", "kill", "refill", "stop", "drop", "stall")


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler event, in phase-local cycles until aggregation.

    ``phase`` is 0 for a single :meth:`SASSimulator.run`;
    :meth:`SASSimulator.run_phases` rewrites it to the phase index and
    shifts ``cycle`` by the phase's cumulative cycle offset, so an
    aggregated trace is globally ordered yet still attributable.
    """

    kind: str  # one of EVENT_KINDS
    cycle: int
    motion_index: int = -1
    pose_index: int = -1
    hit: Optional[bool] = None
    phase: int = 0


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Timer:
    """Accumulated wall-clock time across any number of measured sections."""

    __slots__ = ("total_s", "count")

    def __init__(self):
        self.total_s = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.total_s += seconds
        self.count += 1

    def time(self) -> "_TimerContext":
        return _TimerContext(self)


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add(time.perf_counter() - self._start)


class Histogram:
    """Power-of-two bucketed distribution (exact count/sum/min/max).

    Bucket ``b`` holds values whose integer part has bit length ``b``
    (bucket 0 is the value 0), so cycle latencies bin into <1, 1, 2-3,
    4-7, ... without storing samples.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = max(0, int(value)).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


@dataclass
class ScopeRecord:
    """Counter deltas attributed to one scope (a phase, a tick, a query)."""

    kind: str
    label: str
    duration_s: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)


class _NullInstrument:
    """Shared no-op counter/timer/histogram for disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def add(self, seconds: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL = _NullInstrument()


class _Scope:
    """Context manager that attributes counter deltas to a labeled scope."""

    __slots__ = ("_registry", "_kind", "_label", "_snapshot", "_start")

    def __init__(self, registry: "MetricsRegistry", kind: str, label: str):
        self._registry = registry
        self._kind = kind
        self._label = label
        self._snapshot: Dict[str, int] = {}
        self._start = 0.0

    def __enter__(self) -> "_Scope":
        self._snapshot = {
            name: c.value for name, c in self._registry._counters.items()
        }
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self._start
        before = self._snapshot
        deltas = {}
        for name, counter in self._registry._counters.items():
            delta = counter.value - before.get(name, 0)
            if delta:
                deltas[name] = delta
        self._registry.scopes.append(
            ScopeRecord(
                kind=self._kind,
                label=self._label,
                duration_s=duration,
                counters=deltas,
            )
        )


class MetricsRegistry:
    """Named counters, timers, and histograms with scope attribution.

    Instruments are created on first use and identified by dotted names
    (``"sas.dispatches"``).  A disabled registry (``enabled=False``) hands
    out a shared no-op instrument and records nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.scopes: List[ScopeRecord] = []

    # -- instruments ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def timer(self, name: str) -> Timer:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer()
        return timer

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    def scope(self, kind: str, label: str):
        """Attribute counter deltas inside the block to (kind, label)."""
        if not self.enabled:
            return _NULL
        return _Scope(self, kind, label)

    # -- introspection -------------------------------------------------

    def counter_value(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def scopes_of(self, kind: str) -> List[ScopeRecord]:
        return [s for s in self.scopes if s.kind == kind]

    # -- export --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "timers": {
                name: {"total_s": t.total_s, "count": t.count}
                for name, t in sorted(self._timers.items())
            },
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
            "scopes": [
                {
                    "kind": s.kind,
                    "label": s.label,
                    "duration_s": s.duration_s,
                    "counters": dict(s.counters),
                }
                for s in self.scopes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls(enabled=bool(data.get("enabled", True)))
        for name, value in data.get("counters", {}).items():
            counter = registry._counters[name] = Counter()
            counter.value = int(value)
        for name, spec in data.get("timers", {}).items():
            timer = registry._timers[name] = Timer()
            timer.total_s = float(spec["total_s"])
            timer.count = int(spec["count"])
        for name, spec in data.get("histograms", {}).items():
            histogram = registry._histograms[name] = Histogram()
            histogram.count = int(spec["count"])
            histogram.total = float(spec["total"])
            histogram.min = spec["min"]
            histogram.max = spec["max"]
            histogram.buckets = {int(k): int(v) for k, v in spec["buckets"].items()}
        for spec in data.get("scopes", []):
            registry.scopes.append(
                ScopeRecord(
                    kind=spec["kind"],
                    label=spec["label"],
                    duration_s=float(spec["duration_s"]),
                    counters={k: int(v) for k, v in spec["counters"].items()},
                )
            )
        return registry

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def csv_rows(self) -> List[Dict[str, object]]:
        """Flat metric rows for spreadsheet export (scopes excluded)."""
        rows: List[Dict[str, object]] = []
        for name, counter in sorted(self._counters.items()):
            rows.append({"metric": "counter", "name": name, "value": counter.value})
        for name, timer in sorted(self._timers.items()):
            rows.append(
                {
                    "metric": "timer",
                    "name": name,
                    "value": timer.total_s,
                    "count": timer.count,
                }
            )
        for name, histogram in sorted(self._histograms.items()):
            rows.append(
                {
                    "metric": "histogram",
                    "name": name,
                    "value": histogram.mean,
                    "count": histogram.count,
                }
            )
        return rows

    def write_csv(self, path: str) -> None:
        rows = self.csv_rows()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=["metric", "name", "value", "count"]
            )
            writer.writeheader()
            for row in rows:
                writer.writerow(row)
