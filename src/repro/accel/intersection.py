"""Intersection Unit timing (Section 5.2).

The cascaded intersection test of Figure 10 maps onto the unit as stages:
cycle 1 runs both sphere filters, and each executed SAT stage (6-5-4 axes)
adds a cycle — that is the ``exit_cycle`` a :class:`CascadeResult` carries.

- A *multi-cycle* unit processes one test at a time: a node's tests run
  back to back, each occupying the unit for its exit cycle count.
- A *pipelined* unit accepts one test per cycle; test ``i`` (0-based issue
  order) completes at ``i + exit_cycle_i``.  Both styles therefore have the
  same end-to-end latency per test, as the paper states; the pipelined unit
  wins on throughput within a node.
"""

from __future__ import annotations

from typing import Sequence

from repro.accel.config import IntersectionUnitKind
from repro.collision.cascade import CascadeResult

#: FSM overhead per visited octree node: memory request issue + node-word
#: receive/decode by the Node Processing Unit.
NODE_OVERHEAD_CYCLES = 1

#: Depth of the pipelined unit (sphere stage + three SAT stages).
PIPELINE_DEPTH = 4


def multi_cycle_node_cycles(tests: Sequence[CascadeResult]) -> int:
    """Cycles a multi-cycle IU spends on one node's intersection tests."""
    return sum(test.exit_cycle for test in tests)


def pipelined_node_cycles(tests: Sequence[CascadeResult]) -> int:
    """Cycles a pipelined IU spends on one node's intersection tests.

    Tests issue one per cycle; each result pops out of the pipeline at its
    exit stage, so the node finishes when the slowest in-flight test does.
    """
    if not tests:
        return 0
    return max(issue + test.exit_cycle for issue, test in enumerate(tests))


def node_cycles(tests: Sequence[CascadeResult], kind: IntersectionUnitKind) -> int:
    """Dispatch on the IU style; includes the per-node FSM overhead."""
    if kind is IntersectionUnitKind.PIPELINED:
        busy = pipelined_node_cycles(tests)
    else:
        busy = multi_cycle_node_cycles(tests)
    return NODE_OVERHEAD_CYCLES + busy
