"""Energy, area, and power models.

The paper synthesizes RTL at 45 nm (Synopsys DC + OpenRAM) and builds a
Wattch-style activity-based power model (Section 6).  We cannot run
synthesis here, so the per-block area/power constants below are taken from
the paper's published Table 2 and the activity energy coefficients are
representative 45 nm values; the simulator multiplies them by the activity
counts (multiplies, SRAM reads, node fetches) it measures.  Absolute joules
are therefore calibrated, but every comparison the figures make is a ratio
of activity counts, which we measure directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.config import CECDUConfig, IntersectionUnitKind, MPAccelConfig
from repro.collision.stats import CollisionStats


@dataclass(frozen=True)
class BlockSpec:
    """Area/power of one synthesized hardware block."""

    area_mm2: float
    power_mw: float


class HardwareBlockLibrary:
    """Per-block constants from Table 2 (45 nm, FreePDK)."""

    SCHEDULER = BlockSpec(area_mm2=0.110, power_mw=60.7)
    OBB_TRANSFORM_UNIT = BlockSpec(area_mm2=0.054, power_mw=51.6)
    OCTREE_TRAVERSAL_UNIT = BlockSpec(area_mm2=0.029, power_mw=16.7)
    INTERSECTION_UNIT_MC = BlockSpec(area_mm2=0.143, power_mw=24.34)
    INTERSECTION_UNIT_P = BlockSpec(area_mm2=0.251, power_mw=32.57)

    @classmethod
    def intersection_unit(cls, kind: IntersectionUnitKind) -> BlockSpec:
        if kind is IntersectionUnitKind.PIPELINED:
            return cls.INTERSECTION_UNIT_P
        return cls.INTERSECTION_UNIT_MC

    @classmethod
    def oocd(cls, kind: IntersectionUnitKind) -> BlockSpec:
        """One OOCD = Octree Traversal Unit + one Intersection Unit."""
        iu = cls.intersection_unit(kind)
        trav = cls.OCTREE_TRAVERSAL_UNIT
        return BlockSpec(
            area_mm2=trav.area_mm2 + iu.area_mm2,
            power_mw=trav.power_mw + iu.power_mw,
        )

    @classmethod
    def cecdu(cls, config: CECDUConfig) -> BlockSpec:
        """One CECDU = OBB Generation Unit + n OOCDs.

        Composition reproduces the paper's Table 1/2 power entries exactly
        (e.g. 51.6 + 4x(16.7 + 24.34) = 215.7 mW) and its area entries to
        within ~10% (the paper's synthesized top level shares some glue
        logic the composition double counts).
        """
        obbgen = cls.OBB_TRANSFORM_UNIT
        oocd = cls.oocd(config.iu_kind)
        return BlockSpec(
            area_mm2=obbgen.area_mm2 + config.n_oocds * oocd.area_mm2,
            power_mw=obbgen.power_mw + config.n_oocds * oocd.power_mw,
        )

    @classmethod
    def mpaccel(cls, config: MPAccelConfig) -> BlockSpec:
        """Full accelerator = scheduler + n CECDUs (Table 2 bottom rows)."""
        cecdu = cls.cecdu(config.cecdu)
        return BlockSpec(
            area_mm2=cls.SCHEDULER.area_mm2 + config.n_cecdus * cecdu.area_mm2,
            power_mw=cls.SCHEDULER.power_mw + config.n_cecdus * cecdu.power_mw,
        )


@dataclass(frozen=True)
class EnergyModel:
    """Activity-based dynamic energy coefficients (representative 45 nm).

    The dominant term is 16-bit fixed-point multiplies, matching the paper's
    use of multiply count as its computation/energy proxy.
    """

    multiply_pj: float = 0.9
    addition_pj: float = 0.12
    sram_read_pj: float = 4.0
    node_process_pj: float = 1.5
    #: OBB generation per link: trig evaluations + 4x4 matrix products.
    obb_generation_pj_per_link: float = 180.0

    def cascade_energy_pj(self, stats: CollisionStats) -> float:
        """Dynamic energy of the intersection tests recorded in ``stats``."""
        return (
            stats.multiplies * self.multiply_pj
            + stats.additions * self.addition_pj
            + stats.sram_reads * self.sram_read_pj
            + stats.node_visits * self.node_process_pj
        )

    def pose_cd_energy_pj(self, stats: CollisionStats, links_generated: int) -> float:
        """Energy of one robot-pose collision check including OBB generation."""
        return (
            self.cascade_energy_pj(stats)
            + links_generated * self.obb_generation_pj_per_link
        )


DEFAULT_ENERGY_MODEL = EnergyModel()
