"""Design-space exploration over MPAccel configurations.

Enumerates accelerator configurations (CECDU count, OOCDs per CECDU, IU
style), evaluates each on a workload, and extracts the Pareto frontier of
latency versus silicon cost — the analysis behind Figure 20's discussion
of which configuration to build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence

from repro.accel.config import CECDUConfig, IntersectionUnitKind, MPAccelConfig
from repro.accel.energy import HardwareBlockLibrary


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    config: MPAccelConfig
    mean_latency_ms: float
    area_mm2: float
    power_w: float

    @property
    def silicon_cost(self) -> float:
        """The Figure 20 denominator: watts x mm^2."""
        return self.power_w * self.area_mm2

    @property
    def performance_density(self) -> float:
        """Queries / (second x watt x mm^2)."""
        if self.mean_latency_ms <= 0:
            return 0.0
        return (1e3 / self.mean_latency_ms) / self.silicon_cost

    @property
    def label(self) -> str:
        return self.config.label()


def enumerate_configs(
    cecdu_counts: Sequence[int] = (8, 16),
    oocd_counts: Sequence[int] = (1, 4),
    iu_kinds: Sequence[IntersectionUnitKind] = tuple(IntersectionUnitKind),
) -> List[MPAccelConfig]:
    """The Figure 20 configuration grid (extensible to wider sweeps)."""
    configs = []
    for n_cecdus in cecdu_counts:
        for n_oocds in oocd_counts:
            for kind in iu_kinds:
                configs.append(
                    MPAccelConfig(
                        n_cecdus=n_cecdus,
                        cecdu=CECDUConfig(n_oocds=n_oocds, iu_kind=kind),
                    )
                )
    return configs


def evaluate_design_space(
    configs: Iterable[MPAccelConfig],
    latency_evaluator: Callable[[MPAccelConfig], float],
) -> List[DesignPoint]:
    """Evaluate each configuration's mean query latency (ms) and cost."""
    points = []
    for config in configs:
        spec = HardwareBlockLibrary.mpaccel(config)
        points.append(
            DesignPoint(
                config=config,
                mean_latency_ms=float(latency_evaluator(config)),
                area_mm2=spec.area_mm2,
                power_w=spec.power_mw / 1e3,
            )
        )
    return points


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated on (latency, silicon cost), sorted by latency.

    A point dominates another when it is no worse on both axes and strictly
    better on at least one.
    """
    frontier: List[DesignPoint] = []
    for candidate in points:
        dominated = any(
            other.mean_latency_ms <= candidate.mean_latency_ms
            and other.silicon_cost <= candidate.silicon_cost
            and (
                other.mean_latency_ms < candidate.mean_latency_ms
                or other.silicon_cost < candidate.silicon_cost
            )
            for other in points
        )
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda p: p.mean_latency_ms)
