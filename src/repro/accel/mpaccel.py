"""End-to-end MPAccel motion planning timing (Sections 5, 7.4).

The controller runs the planner, offloading neural inference to the DNN
accelerator (12 TOPS) and collision detection to SAS + CECDUs; data moves
over a 5 GBPS bus.  Given a planner run (its :class:`PlanResult` and the
recorded CD phases), this simulator prices each component and reports the
total motion planning latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.accel.cecdu import CECDUModel
from repro.accel.config import MPAccelConfig
from repro.accel.energy import HardwareBlockLibrary
from repro.accel.sas import SASSimulator, prime_phases
from repro.accel.telemetry import MetricsRegistry
from repro.planning.motion import CDPhase
from repro.planning.mpnet import PlanResult

#: Controller instruction estimates (Section 7.4 estimates controller
#: latency "using the number of instructions"): per planning query overhead
#: plus per-motion marshalling work.
CONTROLLER_INSTRUCTIONS_PER_QUERY = 2000
CONTROLLER_INSTRUCTIONS_PER_MOTION = 60

#: Bytes shipped per motion descriptor: start pose + per-step delta (16-bit
#: per DOF each) + pose count and mode header.
def _motion_bytes(dof: int) -> int:
    return 2 * (2 * dof) + 4


@dataclass
class MotionPlanningTiming:
    """Latency breakdown of one motion planning query on MPAccel."""

    collision_detection_s: float
    nn_inference_s: float
    io_s: float
    controller_s: float
    cd_cycles: int = 0
    cd_tests: int = 0
    cd_energy_pj: float = 0.0
    phase_count: int = 0
    #: CDU-cycles inside the measured windows (stop-boundary truncated) and
    #: the in-flight remainder abandoned at early stops — mirrors
    #: ``SASResult`` so telemetry and timing reports agree.
    cd_busy_cycles: int = 0
    cd_abandoned_cycles: int = 0
    #: Poses resolved through one vectorized ``check_poses`` dispatch before
    #: simulation (0 unless a ``backend="batch"`` checker is attached).
    primed_poses: int = 0

    @property
    def total_s(self) -> float:
        return (
            self.collision_detection_s
            + self.nn_inference_s
            + self.io_s
            + self.controller_s
        )

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3


class MPAccelSimulator:
    """Prices a recorded planner run on a full MPAccel configuration.

    ``checker`` (optional) is the collision checker that produced the
    phases; when it reports ``backend="batch"`` every query's ground truth
    is primed through one vectorized ``check_poses`` dispatch per phase
    before simulation (verdicts are bit-identical by the batch backend's
    contract).  ``telemetry`` receives per-query scopes and the SAS
    counters; ``check_invariants`` audits every simulated phase.
    """

    def __init__(
        self,
        config: MPAccelConfig,
        cecdu_model: CECDUModel,
        sampler_pnet_macs: int,
        sampler_enet_macs: int,
        seed: int = 0,
        checker=None,
        telemetry: MetricsRegistry | None = None,
        check_invariants: bool = False,
        fault_injector=None,
    ):
        self.config = config
        self.cecdu_model = cecdu_model
        self.sampler_pnet_macs = sampler_pnet_macs
        self.sampler_enet_macs = sampler_enet_macs
        self.checker = checker
        self.telemetry = telemetry
        self.sas = SASSimulator(
            n_cdus=config.n_cecdus,
            policy=config.sas.policy,
            config=config.sas,
            latency_model=cecdu_model.sas_latency_model(),
            seed=seed,
            telemetry=telemetry,
            check_invariants=check_invariants,
            fault_injector=fault_injector,
        )

    # ------------------------------------------------------------------

    def nn_inference_time_s(self, macs: int) -> float:
        """DNN accelerator time: 2 ops per MAC at the configured TOPS."""
        return (2.0 * macs) / (self.config.dnn_tops * 1e12)

    def io_time_s(self, n_motions: int, dof: int) -> float:
        """Bus transfer time for a phase's motion descriptors + results."""
        payload = n_motions * _motion_bytes(dof) + n_motions  # results: 1B each
        return payload / (self.config.io_gbps * 1e9)

    def controller_time_s(self, n_motions: int) -> float:
        instructions = (
            CONTROLLER_INSTRUCTIONS_PER_QUERY
            + CONTROLLER_INSTRUCTIONS_PER_MOTION * n_motions
        )
        return instructions / (self.config.controller_ghz * 1e9)

    def run_query(
        self, result: PlanResult, phases: List[CDPhase], dof: Optional[int] = None
    ) -> MotionPlanningTiming:
        """Price one motion planning query (planner result + its CD phases)."""
        if dof is None:
            dof = self.cecdu_model.robot.dof
        clock_period_s = self.cecdu_model.config.clock_period_ns * 1e-9

        primed = 0
        if self.checker is not None and getattr(self.checker, "backend", "scalar") == "batch":
            primed = prime_phases(phases, self.checker, self.telemetry)

        cd_cycles = 0
        cd_tests = 0
        cd_energy = 0.0
        cd_busy = 0
        cd_abandoned = 0
        io_s = 0.0
        total_motions = 0
        for phase in phases:
            sas_result = self.sas.run(phase)
            cd_cycles += sas_result.cycles
            cd_tests += sas_result.tests
            cd_energy += sas_result.energy_pj
            cd_busy += sas_result.busy_cycles
            cd_abandoned += sas_result.abandoned_cycles
            io_s += self.io_time_s(len(phase.motions), dof)
            total_motions += len(phase.motions)

        nn_s = result.nn_inferences * self.nn_inference_time_s(self.sampler_pnet_macs)
        nn_s += result.encoder_inferences * self.nn_inference_time_s(
            self.sampler_enet_macs
        )
        controller_s = self.controller_time_s(total_motions)

        timing = MotionPlanningTiming(
            collision_detection_s=cd_cycles * clock_period_s,
            nn_inference_s=nn_s,
            io_s=io_s,
            controller_s=controller_s,
            cd_cycles=cd_cycles,
            cd_tests=cd_tests,
            cd_energy_pj=cd_energy,
            phase_count=len(phases),
            cd_busy_cycles=cd_busy,
            cd_abandoned_cycles=cd_abandoned,
            primed_poses=primed,
        )
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.counter("mpaccel.queries").inc()
            tel.counter("mpaccel.phases").inc(len(phases))
            tel.timer("mpaccel.modeled_query_s").add(timing.total_s)
        return timing

    # ------------------------------------------------------------------

    def area_mm2(self) -> float:
        return HardwareBlockLibrary.mpaccel(self.config).area_mm2

    def power_w(self) -> float:
        return HardwareBlockLibrary.mpaccel(self.config).power_mw / 1e3

    def performance_metric(self, queries_per_second: float) -> float:
        """Figure 20's metric: queries / (second x watt x mm^2)."""
        return queries_per_second / (self.power_w() * self.area_mm2())
