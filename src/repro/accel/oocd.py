"""OOCD timing: replaying a traversal trace through the FSM model.

The behavioral collider (:mod:`repro.collision.octree_cd`) records which
nodes were fetched and which cascade tests ran; this module prices that
trace in cycles and picojoules for a given Intersection Unit style.  The
Octree Traverser processes one node at a time (single Address Register +
Node Queue), so node costs add up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.config import IntersectionUnitKind
from repro.accel.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.accel.intersection import node_cycles
from repro.collision.octree_cd import TraversalTrace


@dataclass(frozen=True)
class OOCDTiming:
    """Cycle/energy cost of one OBB-vs-octree collision query."""

    cycles: int
    tests: int
    multiplies: int
    node_visits: int
    energy_pj: float
    hit: bool


def price_traversal(
    trace: TraversalTrace,
    kind: IntersectionUnitKind,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> OOCDTiming:
    """Cycles and energy for one traversal trace on one OOCD."""
    cycles = 0
    tests = 0
    multiplies = 0
    for visit in trace.visits:
        results = [t.result for t in visit.tests]
        cycles += node_cycles(results, kind)
        tests += len(results)
        multiplies += sum(r.multiplies for r in results)
    node_visits = trace.node_visits
    energy = (
        multiplies * energy_model.multiply_pj
        + node_visits * (energy_model.sram_read_pj + energy_model.node_process_pj)
    )
    return OOCDTiming(
        cycles=cycles,
        tests=tests,
        multiplies=multiplies,
        node_visits=node_visits,
        energy_pj=energy,
        hit=trace.hit,
    )
