"""Scheduling policies for coarse-grained parallelism (Section 3).

A policy decides two things:

1. the order in which a motion's discrete poses are scheduled
   (naive front-to-back, random, binary-recursive, or coarse-step), and
2. whether inter-motion parallelism is used (the ``M`` prefix in Figure 7):
   how many motions are live at once, and whether a single motion may have
   several poses in flight (intra-motion parallelism).

The pose orderings are pure functions of the pose count, so they are easy
to test exhaustively: every ordering must be a permutation of ``range(n)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np


def naive_order(n: int) -> List[int]:
    """Front-to-back: 0, 1, 2, ... (the NP baseline)."""
    return list(range(n))


def random_order(n: int, rng: np.random.Generator) -> List[int]:
    """A uniformly random permutation (the RND baseline)."""
    return list(map(int, rng.permutation(n)))


def coarse_step_order(n: int, step: int = 8) -> List[int]:
    """CSP: 0, s, 2s, ..., 1, s+1, ..., covering coarse-to-fine.

    For step 4 and n poses: 0, 4, 8, ..., 1, 5, 9, ..., 2, 6, ..., 3, 7, ...
    (Figure 6b.iv).  Implementable in hardware with registers and adders.
    """
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    order = []
    for offset in range(min(step, n)):
        order.extend(range(offset, n, step))
    return order


def binary_recursive_order(n: int) -> List[int]:
    """BRP: endpoints first, then midpoints breadth-first (Figure 6b.iii).

    Samples the motion coarse-to-fine; needs a queue in hardware, which is
    why the paper prefers CSP.
    """
    if n <= 0:
        return []
    if n == 1:
        return [0]
    order = [0, n - 1]
    seen = {0, n - 1}
    intervals = deque([(0, n - 1)])
    while intervals:
        lo, hi = intervals.popleft()
        if hi - lo < 2:
            continue
        mid = (lo + hi) // 2
        if mid not in seen:
            order.append(mid)
            seen.add(mid)
        intervals.append((lo, mid))
        intervals.append((mid, hi))
    return order


@dataclass(frozen=True)
class SchedulingPolicy:
    """A named combination of pose ordering and inter-motion behavior."""

    name: str
    order_kind: str  # "naive" | "random" | "coarse" | "binary"
    inter_motion: bool  # M prefix: multiple motions live at once
    intra_motion: bool  # may one motion have several poses in flight?
    step_size: int = 8

    def pose_order(self, n_poses: int, rng: Optional[np.random.Generator] = None) -> List[int]:
        if self.order_kind == "naive":
            return naive_order(n_poses)
        if self.order_kind == "coarse":
            return coarse_step_order(n_poses, self.step_size)
        if self.order_kind == "binary":
            return binary_recursive_order(n_poses)
        if self.order_kind == "random":
            if rng is None:
                rng = np.random.default_rng(0)
            return random_order(n_poses, rng)
        raise ValueError(f"unknown order kind {self.order_kind!r}")


#: Figure 7's policy menu.  Non-M policies process one motion at a time;
#: MS uses inter-motion parallelism only (one in-flight pose per motion).
_POLICIES = {
    "seq": ("naive", False, False),
    "np": ("naive", False, True),
    "rnd": ("random", False, True),
    "brp": ("binary", False, True),
    "csp": ("coarse", False, True),
    "ms": ("naive", True, False),
    "mnp": ("naive", True, True),
    "mrnd": ("random", True, True),
    "mbrp": ("binary", True, True),
    "mcsp": ("coarse", True, True),
}

POLICY_NAMES = tuple(_POLICIES)


def make_policy(name: str, step_size: int = 8) -> SchedulingPolicy:
    """Look up a Figure 7 policy by its lowercase name (e.g. ``"mcsp"``)."""
    key = name.lower()
    if key not in _POLICIES:
        raise ValueError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")
    order_kind, inter, intra = _POLICIES[key]
    return SchedulingPolicy(
        name=key,
        order_kind=order_kind,
        inter_motion=inter,
        intra_motion=intra,
        step_size=step_size,
    )


def pose_order(
    name: str, n_poses: int, step_size: int = 8, rng: Optional[np.random.Generator] = None
) -> List[int]:
    """Convenience: the pose ordering a named policy would use."""
    return make_policy(name, step_size).pose_order(n_poses, rng)
