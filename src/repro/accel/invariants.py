"""Invariant checking for SAS runs: the accounting audit layer.

The reproduced figures are accounting claims (speedup, extra CD tests,
utilization), so any SAS result must satisfy structural invariants that
hold for the real hardware regardless of policy, latency model, or CDU
count:

- **dispatch conservation** — every dispatched query is retired inside the
  measured window or abandoned at an early stop; nothing is double counted
  or dropped;
- **dispatch throttle** — at most ``dispatch_per_cycle`` dispatches share a
  cycle when the CD Query Generator is rate limited;
- **CDU capacity** — never more than ``n_cdus`` queries in flight at any
  instant;
- **busy-cycle consistency** — ``busy_cycles`` equals the timeline's
  CDU-cycles truncated at the stop boundary, and ``abandoned_cycles`` the
  in-flight remainder;
- **pose orders** — no pose of a motion is dispatched twice, and a motion
  proven collision-free had every pose dispatched exactly once (a
  permutation);
- **utilization** — a true fraction in [0, 1] *without* clamping.

Run the checker standalone on any recorded :class:`SASResult`
(:func:`check_sas_result` / :func:`verify_sas_result`), or inline during
simulation with ``SASSimulator(check_invariants=True)``.  Tests carry the
``invariants`` pytest marker so CI can run the audit as a dedicated job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accel.config import SASConfig
from repro.planning.motion import CDPhase, FunctionMode

__all__ = [
    "InvariantViolation",
    "SASInvariantError",
    "check_sas_result",
    "verify_sas_result",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One failed invariant: which rule, and the evidence."""

    name: str
    message: str

    def __str__(self) -> str:
        return f"[{self.name}] {self.message}"


class SASInvariantError(AssertionError):
    """Raised by :func:`verify_sas_result` when any invariant fails."""

    def __init__(self, violations: List[InvariantViolation]):
        self.violations = violations
        lines = "\n".join(f"  - {v}" for v in violations)
        super().__init__(f"{len(violations)} SAS invariant violation(s):\n{lines}")


@dataclass(frozen=True)
class _Window:
    """One phase's cycle window inside an (aggregated) result."""

    index: int
    start: int
    end: int
    stopped_early: bool
    mode: Optional[str]
    busy_cycles: Optional[int]
    abandoned_cycles: Optional[int]
    tests: Optional[int]


def _windows(result) -> List[_Window]:
    if result.phase_breakdown:
        return [
            _Window(
                index=stats.index,
                start=stats.cycle_offset,
                end=stats.cycle_offset + stats.cycles,
                stopped_early=stats.stopped_early,
                mode=stats.mode,
                busy_cycles=stats.busy_cycles,
                abandoned_cycles=stats.abandoned_cycles,
                tests=stats.tests,
            )
            for stats in result.phase_breakdown
        ]
    return [
        _Window(
            index=0,
            start=0,
            end=result.cycles,
            stopped_early=result.stopped_early,
            mode=None,
            busy_cycles=result.busy_cycles,
            abandoned_cycles=result.abandoned_cycles,
            tests=result.tests,
        )
    ]


def check_sas_result(
    result,
    config: Optional[SASConfig] = None,
    phases: Optional[Sequence[CDPhase]] = None,
) -> List[InvariantViolation]:
    """Audit one SAS result; returns the (possibly empty) violation list.

    Counter-level invariants always run.  Timeline/event invariants run
    when the result carries a recorded timeline (``run(...,
    record_timeline=True)`` or ``check_invariants=True``).  ``config``
    enables the dispatch-throttle check; ``phases`` enables ground-truth
    checks (pose bounds, permutations, verdicts, outcome counts).
    """
    violations: List[InvariantViolation] = []

    def bad(name: str, message: str) -> None:
        violations.append(InvariantViolation(name, message))

    windows = _windows(result)

    # ---- counter sanity + utilization range (always) ------------------
    if result.cycles < 0:
        bad("counter-sanity", f"negative cycles: {result.cycles}")
    if result.tests < 0:
        bad("counter-sanity", f"negative tests: {result.tests}")
    if result.busy_cycles < 0:
        bad("counter-sanity", f"negative busy_cycles: {result.busy_cycles}")
    if result.abandoned_cycles < 0:
        bad("counter-sanity", f"negative abandoned_cycles: {result.abandoned_cycles}")
    if result.abandoned_cycles > 0 and not result.stopped_early:
        bad(
            "dispatch-conservation",
            f"abandoned_cycles={result.abandoned_cycles} without an early stop",
        )
    capacity = result.cycles * result.n_cdus
    if result.busy_cycles > capacity:
        bad(
            "utilization-range",
            f"busy_cycles={result.busy_cycles} exceeds window capacity "
            f"{result.cycles} cycles x {result.n_cdus} CDUs = {capacity}",
        )
    utilization = result.utilization
    if not 0.0 <= utilization <= 1.0:
        bad("utilization-range", f"utilization {utilization} outside [0, 1]")

    # ---- phase breakdown must sum to the aggregate --------------------
    if result.phase_breakdown:
        sums = {
            "cycles": sum(s.cycles for s in result.phase_breakdown),
            "tests": sum(s.tests for s in result.phase_breakdown),
            "busy_cycles": sum(s.busy_cycles for s in result.phase_breakdown),
            "abandoned_cycles": sum(s.abandoned_cycles for s in result.phase_breakdown),
        }
        for name, total in sums.items():
            if total != getattr(result, name):
                bad(
                    "phase-breakdown",
                    f"breakdown {name} sums to {total}, result has "
                    f"{getattr(result, name)}",
                )
        if result.phase_count != len(result.phase_breakdown):
            bad(
                "phase-breakdown",
                f"phase_count={result.phase_count} but breakdown has "
                f"{len(result.phase_breakdown)} phases",
            )
        offset = 0
        for stats in result.phase_breakdown:
            if stats.cycle_offset != offset:
                bad(
                    "phase-breakdown",
                    f"phase {stats.index} offset {stats.cycle_offset}, "
                    f"expected cumulative {offset}",
                )
            offset += stats.cycles

    # ---- ground-truth cross-checks (when phases are provided) ---------
    if phases is not None:
        n_motions = sum(len(p.motions) for p in phases)
        if len(result.motion_outcomes) != n_motions:
            bad(
                "outcome-count",
                f"{len(result.motion_outcomes)} outcomes for {n_motions} motions",
            )
        slice_start = 0
        for window, phase in zip(windows, phases):
            outcomes = result.motion_outcomes[
                slice_start : slice_start + len(phase.motions)
            ]
            slice_start += len(phase.motions)
            if phase.mode is FunctionMode.COMPLETE:
                if window.stopped_early:
                    bad(
                        "stop-semantics",
                        f"phase {window.index} is COMPLETE but stopped early",
                    )
                if None in outcomes:
                    bad(
                        "stop-semantics",
                        f"phase {window.index} is COMPLETE with undecided motions",
                    )

    # ---- timeline invariants ------------------------------------------
    if result.timeline:
        if len(result.timeline) != result.tests:
            bad(
                "dispatch-conservation",
                f"{len(result.timeline)} timeline events for {result.tests} tests",
            )
        by_phase: Dict[int, list] = {}
        for event in result.timeline:
            by_phase.setdefault(event.phase, []).append(event)
        window_by_index = {w.index: w for w in windows}
        for phase_index, events in sorted(by_phase.items()):
            window = window_by_index.get(phase_index)
            if window is None:
                bad(
                    "phase-breakdown",
                    f"timeline events reference unknown phase {phase_index}",
                )
                continue
            _check_phase_timeline(
                events, window, result, config, phases, bad
            )

    # ---- event-trace conservation -------------------------------------
    if result.events:
        _check_event_trace(result, windows, bad)

    return violations


def _check_phase_timeline(events, window, result, config, phases, bad) -> None:
    """Timeline invariants local to one phase's cycle window."""
    phase = None
    if phases is not None and window.index < len(phases):
        phase = phases[window.index]

    dispatch_counts: Dict[int, int] = {}
    seen_poses: Dict[int, set] = {}
    busy = 0
    abandoned = 0
    previous_dispatch = None
    for event in events:
        if event.dispatch_cycle < window.start or event.dispatch_cycle > window.end:
            bad(
                "dispatch-conservation",
                f"phase {window.index}: dispatch at cycle {event.dispatch_cycle} "
                f"outside window [{window.start}, {window.end}]",
            )
        if event.complete_cycle < event.dispatch_cycle:
            bad(
                "dispatch-conservation",
                f"phase {window.index}: completion {event.complete_cycle} before "
                f"dispatch {event.dispatch_cycle}",
            )
        if event.complete_cycle > window.end and not window.stopped_early:
            bad(
                "dispatch-conservation",
                f"phase {window.index}: query completes at {event.complete_cycle} "
                f"past window end {window.end} without an early stop",
            )
        if previous_dispatch is not None and event.dispatch_cycle < previous_dispatch:
            bad(
                "dispatch-order",
                f"phase {window.index}: timeline not in dispatch order "
                f"({event.dispatch_cycle} after {previous_dispatch})",
            )
        previous_dispatch = event.dispatch_cycle
        dispatch_counts[event.dispatch_cycle] = (
            dispatch_counts.get(event.dispatch_cycle, 0) + 1
        )
        poses = seen_poses.setdefault(event.motion_index, set())
        if event.pose_index in poses:
            bad(
                "pose-order",
                f"phase {window.index}: motion {event.motion_index} pose "
                f"{event.pose_index} dispatched twice",
            )
        poses.add(event.pose_index)
        busy += min(event.complete_cycle, window.end) - min(
            event.dispatch_cycle, window.end
        )
        abandoned += max(0, event.complete_cycle - window.end)
        if phase is not None:
            motion = phase.motions[event.motion_index]
            if not 0 <= event.pose_index < motion.num_poses:
                bad(
                    "pose-order",
                    f"phase {window.index}: motion {event.motion_index} pose "
                    f"{event.pose_index} out of range [0, {motion.num_poses})",
                )
            elif event.hit != motion.pose_collides(event.pose_index):
                bad(
                    "verdict-truth",
                    f"phase {window.index}: motion {event.motion_index} pose "
                    f"{event.pose_index} recorded hit={event.hit}, ground truth "
                    f"{motion.pose_collides(event.pose_index)}",
                )

    # Throttle: the CD Query Generator's dispatch rate bound.
    if config is not None and config.dispatch_per_cycle is not None:
        limit = config.dispatch_per_cycle
        for cycle, count in dispatch_counts.items():
            if count > limit:
                bad(
                    "dispatch-throttle",
                    f"phase {window.index}: {count} dispatches at cycle {cycle} "
                    f"(limit {limit})",
                )
                break

    # Capacity: sweep dispatch/completion edges; completions at a cycle
    # free their CDU before same-cycle dispatches claim one (the simulator
    # processes due results first).
    edges: List[Tuple[int, int, int]] = []
    for event in events:
        edges.append((event.dispatch_cycle, 1, +1))
        edges.append((event.complete_cycle, 0, -1))
    in_flight = 0
    for _cycle, _order, delta in sorted(edges):
        in_flight += delta
        if in_flight > result.n_cdus:
            bad(
                "cdu-capacity",
                f"phase {window.index}: {in_flight} queries in flight with only "
                f"{result.n_cdus} CDUs",
            )
            break

    # Busy/abandoned consistency with the recorded schedule.
    if window.busy_cycles is not None and busy != window.busy_cycles:
        bad(
            "busy-consistency",
            f"phase {window.index}: timeline implies {busy} busy cycles, "
            f"result reports {window.busy_cycles}",
        )
    if window.abandoned_cycles is not None and abandoned != window.abandoned_cycles:
        bad(
            "busy-consistency",
            f"phase {window.index}: timeline implies {abandoned} abandoned "
            f"cycles, result reports {window.abandoned_cycles}",
        )
    if window.tests is not None and len(events) != window.tests:
        bad(
            "dispatch-conservation",
            f"phase {window.index}: {len(events)} dispatches for "
            f"{window.tests} recorded tests",
        )

    # Permutation completeness: a motion proven collision-free must have
    # had every pose dispatched exactly once.
    if phase is not None and not window.stopped_early:
        offset = sum(len(p.motions) for p in phases[: window.index])
        for motion_idx, motion in enumerate(phase.motions):
            outcome_idx = offset + motion_idx
            if outcome_idx >= len(result.motion_outcomes):
                continue
            if result.motion_outcomes[outcome_idx] is False:
                dispatched = seen_poses.get(motion_idx, set())
                if dispatched != set(range(motion.num_poses)):
                    missing = set(range(motion.num_poses)) - dispatched
                    bad(
                        "pose-order",
                        f"phase {window.index}: motion {motion_idx} decided free "
                        f"but poses {sorted(missing)[:5]} were never dispatched",
                    )


def _check_event_trace(result, windows, bad) -> None:
    """Conservation over the dispatch/complete/kill/stop event trace."""
    dispatches: Dict[Tuple[int, int, int], int] = {}
    completes: Dict[Tuple[int, int, int], int] = {}
    stops_per_phase: Dict[int, int] = {}
    kills_per_phase: Dict[int, int] = {}
    for event in result.events:
        key = (event.phase, event.motion_index, event.pose_index)
        if event.kind == "dispatch":
            dispatches[key] = dispatches.get(key, 0) + 1
        elif event.kind == "complete":
            completes[key] = completes.get(key, 0) + 1
        elif event.kind == "stop":
            stops_per_phase[event.phase] = stops_per_phase.get(event.phase, 0) + 1
        elif event.kind == "kill":
            kills_per_phase[event.phase] = kills_per_phase.get(event.phase, 0) + 1
    n_dispatch = sum(dispatches.values())
    n_complete = sum(completes.values())
    if n_dispatch != result.tests:
        bad(
            "dispatch-conservation",
            f"{n_dispatch} dispatch events for {result.tests} tests",
        )
    if n_complete != n_dispatch:
        bad(
            "dispatch-conservation",
            f"{n_dispatch} dispatches but {n_complete} completions "
            "(dispatched != retired + abandoned-at-stop)",
        )
    for key, count in dispatches.items():
        if count > 1:
            bad(
                "pose-order",
                f"phase {key[0]}: motion {key[1]} pose {key[2]} dispatched "
                f"{count} times",
            )
            break
    unmatched = [k for k in dispatches if k not in completes]
    if unmatched:
        k = unmatched[0]
        bad(
            "dispatch-conservation",
            f"phase {k[0]}: motion {k[1]} pose {k[2]} dispatched but its "
            "completion was dropped",
        )
    window_by_index = {w.index: w for w in windows}
    for phase_index, count in stops_per_phase.items():
        window = window_by_index.get(phase_index)
        if count > 1:
            bad(
                "stop-semantics",
                f"phase {phase_index}: {count} stop events (at most one allowed)",
            )
        if window is not None and not window.stopped_early:
            bad(
                "stop-semantics",
                f"phase {phase_index}: stop event recorded but stopped_early "
                "is False",
            )
    for window in windows:
        if window.stopped_early and stops_per_phase.get(window.index, 0) == 0:
            bad(
                "stop-semantics",
                f"phase {window.index}: stopped_early without a stop event",
            )


def verify_sas_result(
    result,
    config: Optional[SASConfig] = None,
    phases: Optional[Sequence[CDPhase]] = None,
) -> None:
    """Raise :class:`SASInvariantError` if any invariant fails."""
    violations = check_sas_result(result, config=config, phases=phases)
    if violations:
        raise SASInvariantError(violations)
