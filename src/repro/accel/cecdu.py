"""The CECDU model: pose-level collision detection timing (Figure 13).

A CECDU receives a robot pose, generates the link OBBs on-chip, and farms
them out to its OOCDs:

- with a single OOCD the links are checked serially, stopping at the first
  colliding link (the Result Collector's kill);
- with four OOCDs links run in synchronous batches of four — a batch costs
  the *maximum* of its traversal times, and a hit in a batch discards the
  later batches but not its batch-mates (Section 7.2.2 explains both
  effects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.accel.config import CECDUConfig
from repro.accel.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.accel.obbgen import OBBGenerationUnit
from repro.accel.oocd import OOCDTiming, price_traversal
from repro.collision.cascade import CascadeConfig, DEFAULT_CASCADE
from repro.collision.octree_cd import OBBOctreeCollider
from repro.env.octree import Octree
from repro.geometry.fixed_point import DEFAULT_FORMAT, FixedPointFormat
from repro.robot.model import RobotModel


@dataclass(frozen=True)
class PoseCDOutcome:
    """Full cost/verdict of one robot-pose collision detection on a CECDU."""

    hit: bool
    cycles: int
    tests: int
    multiplies: int
    node_visits: int
    energy_pj: float
    links_checked: int


class CECDUModel:
    """Cycle/energy model of one CECDU bound to a robot and environment."""

    def __init__(
        self,
        robot: RobotModel,
        octree: Octree,
        config: CECDUConfig = CECDUConfig(),
        cascade: CascadeConfig = DEFAULT_CASCADE,
        fixed_point: Optional[FixedPointFormat] = DEFAULT_FORMAT,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ):
        self.robot = robot
        self.octree = octree
        self.config = config
        self.collider = OBBOctreeCollider(octree, cascade)
        self.obb_generator = OBBGenerationUnit(robot, fixed_point)
        self.energy_model = energy_model
        self._cache: Dict[bytes, PoseCDOutcome] = {}

    # ------------------------------------------------------------------

    def simulate_pose(self, q) -> PoseCDOutcome:
        """Collision-detect one pose; returns verdict plus cycles/energy."""
        generation = self.obb_generator.generate(q)
        obbs = generation.obbs
        ready = generation.ready_cycles
        n_oocds = self.config.n_oocds
        kind = self.config.iu_kind

        tests = 0
        multiplies = generation.multiplies
        node_visits = 0
        energy = len(obbs) * self.energy_model.obb_generation_pj_per_link
        links_checked = 0
        hit = False

        if n_oocds == 1:
            # Serial link checks with early exit on the first collision.
            time = 0
            for index, obb in enumerate(obbs):
                trace = self.collider.collide(obb)
                timing = price_traversal(trace, kind, self.energy_model)
                time = max(time, ready[index]) + timing.cycles
                tests += timing.tests
                multiplies += timing.multiplies
                node_visits += timing.node_visits
                energy += timing.energy_pj
                links_checked += 1
                if timing.hit:
                    hit = True
                    break
            total_cycles = time
        else:
            # Synchronous batches of n_oocds links: a batch costs its
            # slowest member; a hit stops later batches only.
            time = 0
            for start in range(0, len(obbs), n_oocds):
                batch = list(range(start, min(start + n_oocds, len(obbs))))
                timings: List[OOCDTiming] = []
                for index in batch:
                    trace = self.collider.collide(obbs[index])
                    timings.append(price_traversal(trace, kind, self.energy_model))
                batch_start = max(time, max(ready[index] for index in batch))
                time = batch_start + max(t.cycles for t in timings)
                for t in timings:
                    tests += t.tests
                    multiplies += t.multiplies
                    node_visits += t.node_visits
                    energy += t.energy_pj
                links_checked += len(batch)
                if any(t.hit for t in timings):
                    hit = True
                    break
            total_cycles = time

        return PoseCDOutcome(
            hit=hit,
            cycles=total_cycles,
            tests=tests,
            multiplies=multiplies,
            node_visits=node_visits,
            energy_pj=energy,
            links_checked=links_checked,
        )

    def simulate_pose_cached(self, q) -> PoseCDOutcome:
        """Memoized :meth:`simulate_pose` (poses repeat across schedulers)."""
        key = np.asarray(q, dtype=float).tobytes()
        outcome = self._cache.get(key)
        if outcome is None:
            outcome = self.simulate_pose(q)
            self._cache[key] = outcome
        return outcome

    def time_ns(self, outcome: PoseCDOutcome) -> float:
        return outcome.cycles * self.config.clock_period_ns

    # ------------------------------------------------------------------

    def sas_latency_model(self):
        """Adapter: use this CECDU as the SAS simulator's latency model."""

        def model(motion, pose_index: int):
            outcome = self.simulate_pose_cached(motion.poses[pose_index])
            return outcome.hit, outcome.cycles, outcome.energy_pj

        return model
