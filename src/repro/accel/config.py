"""Hardware configuration dataclasses for the MPAccel simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class IntersectionUnitKind(Enum):
    """Intersection Unit implementation style (Section 5.2).

    Both have the same end-to-end latency per test; the pipelined unit
    accepts a new test every cycle (at a higher clock), the multi-cycle unit
    one test at a time.
    """

    MULTI_CYCLE = "mc"
    PIPELINED = "p"


#: Clock periods from the synthesized critical paths (Section 7.3).
CLOCK_PERIOD_NS = {
    IntersectionUnitKind.MULTI_CYCLE: 2.24,
    IntersectionUnitKind.PIPELINED: 1.48,
}


@dataclass(frozen=True)
class CECDUConfig:
    """One CECDU: how many OOCDs it contains and their IU style.

    The paper evaluates 1 and 4 OOCDs per CECDU (Table 1).  With one OOCD
    the robot's links are checked serially (early exit on the first
    colliding link); with four, links run in synchronous batches of four.
    """

    n_oocds: int = 4
    iu_kind: IntersectionUnitKind = IntersectionUnitKind.MULTI_CYCLE

    def __post_init__(self):
        if self.n_oocds < 1:
            raise ValueError(f"n_oocds must be >= 1, got {self.n_oocds}")

    @property
    def pipelined(self) -> bool:
        return self.iu_kind is IntersectionUnitKind.PIPELINED

    @property
    def clock_period_ns(self) -> float:
        return CLOCK_PERIOD_NS[self.iu_kind]

    @property
    def clock_hz(self) -> float:
        return 1e9 / self.clock_period_ns

    def label(self) -> str:
        return f"{self.n_oocds}oocd_{self.iu_kind.value}"


@dataclass(frozen=True)
class SASConfig:
    """Scheduler parameters (Section 5.1).

    ``step_size`` is the MCSP coarse step (hardware default 8);
    ``group_size`` the number of motions considered for inter-motion
    parallelism (hardware default 16); ``dispatch_per_cycle`` how many CD
    queries the CD Query Generator can issue per cycle (1 in hardware;
    ``None`` models the zero-latency scheduler of the limit study).
    """

    policy: str = "mcsp"
    step_size: int = 8
    group_size: int = 16
    dispatch_per_cycle: int | None = 1

    def __post_init__(self):
        if self.step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {self.step_size}")
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if self.dispatch_per_cycle is not None and self.dispatch_per_cycle < 1:
            raise ValueError(
                f"dispatch_per_cycle must be >= 1 or None, got {self.dispatch_per_cycle}"
            )


@dataclass(frozen=True)
class MPAccelConfig:
    """A full MPAccel instance: scheduler plus a pool of CECDUs.

    Figure 20's configurations are ``X_Y_mc/p``: X CECDUs with Y OOCDs each
    and multi-cycle or pipelined Intersection Units.
    """

    n_cecdus: int = 16
    cecdu: CECDUConfig = field(default_factory=CECDUConfig)
    sas: SASConfig = field(default_factory=SASConfig)
    #: DNN accelerator throughput for neural planner inference (Section 7.4).
    dnn_tops: float = 12.0
    #: Controller <-> accelerator bus bandwidth (Section 5).
    io_gbps: float = 5.0
    #: Simple-CPU controller clock for instruction-count latency estimates.
    controller_ghz: float = 1.0

    def __post_init__(self):
        if self.n_cecdus < 1:
            raise ValueError(f"n_cecdus must be >= 1, got {self.n_cecdus}")
        if self.dnn_tops <= 0 or self.io_gbps <= 0 or self.controller_ghz <= 0:
            raise ValueError("throughput parameters must be positive")

    def label(self) -> str:
        return f"{self.n_cecdus}_{self.cecdu.n_oocds}_{self.cecdu.iu_kind.value}"
