"""Wattch-style architectural power reporting (Section 6).

The paper builds "an accurate architectural power model to speed up power
measurement of OOCD": RTL simulation provides per-block leakage and dynamic
power, and the microarchitectural simulator supplies activity factors.
This module mirrors that flow: the block library's synthesis constants are
split into leakage and full-activity dynamic components, and a workload's
measured activity scales the dynamic part per block.

The output is a Table-2-style runtime power report for a given MPAccel
configuration and workload, plus per-query energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.accel.config import MPAccelConfig
from repro.accel.energy import HardwareBlockLibrary

#: Fraction of a synthesized block's power that is leakage at 45 nm — the
#: paper's technology node leaks heavily; the remainder is the dynamic
#: power at full activity (activity factor 1.0).
LEAKAGE_FRACTION = 0.35


@dataclass(frozen=True)
class BlockActivity:
    """Activity factors (0..1) for each block class over a workload window.

    An activity factor is the fraction of cycles the block's datapath
    toggles: e.g. an Intersection Unit that evaluated tests on 30% of the
    window's cycles has activity 0.3.
    """

    scheduler: float = 0.0
    obb_generation: float = 0.0
    octree_traversal: float = 0.0
    intersection: float = 0.0

    def __post_init__(self):
        for name in ("scheduler", "obb_generation", "octree_traversal", "intersection"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"activity factor {name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class BlockPowerRow:
    """One row of the runtime power report."""

    block: str
    count: int
    leakage_mw: float
    dynamic_mw: float

    @property
    def total_mw(self) -> float:
        return self.leakage_mw + self.dynamic_mw


@dataclass
class PowerReport:
    """Runtime power broken down per block class."""

    rows: List[BlockPowerRow]
    window_cycles: int
    clock_hz: float

    @property
    def total_mw(self) -> float:
        return sum(row.total_mw for row in self.rows)

    @property
    def energy_pj(self) -> float:
        """Energy over the window: P x t."""
        seconds = self.window_cycles / self.clock_hz
        return self.total_mw * 1e-3 * seconds * 1e12

    def as_rows(self) -> List[Dict]:
        return [
            {
                "block": row.block,
                "count": row.count,
                "leakage_mw": row.leakage_mw,
                "dynamic_mw": row.dynamic_mw,
                "total_mw": row.total_mw,
            }
            for row in self.rows
        ]


def activity_from_sas_run(
    config: MPAccelConfig,
    window_cycles: int,
    tests: int,
    poses: int,
    mean_test_cycles: float = 1.4,
) -> BlockActivity:
    """Derive activity factors from SAS run counters.

    ``tests`` is the number of pose-level CD queries dispatched, ``poses``
    the number of OBB generations (one per query), ``window_cycles`` the
    run's duration.  Intersection activity is spread over the pool of
    Intersection Units; the scheduler toggles once per dispatch.
    """
    if window_cycles <= 0:
        raise ValueError(f"window_cycles must be positive, got {window_cycles}")
    n_iu = config.n_cecdus * config.cecdu.n_oocds
    links = 7  # pose query fans out to one traversal per link on average
    iu_busy = tests * links * mean_test_cycles * 4.0  # ~4 octant tests/node visit
    return BlockActivity(
        scheduler=min(1.0, tests / window_cycles),
        obb_generation=min(1.0, poses * 15.0 / (window_cycles * config.n_cecdus)),
        octree_traversal=min(1.0, iu_busy / (window_cycles * n_iu)),
        intersection=min(1.0, iu_busy / (window_cycles * n_iu)),
    )


def runtime_power_report(
    config: MPAccelConfig,
    activity: BlockActivity,
    window_cycles: int,
) -> PowerReport:
    """Build the per-block runtime power report for one workload window."""
    lib = HardwareBlockLibrary
    iu = lib.intersection_unit(config.cecdu.iu_kind)
    n_oocds_total = config.n_cecdus * config.cecdu.n_oocds

    def split(spec_power_mw: float, count: int, factor: float) -> BlockPowerRow:
        leakage = spec_power_mw * LEAKAGE_FRACTION * count
        dynamic = spec_power_mw * (1.0 - LEAKAGE_FRACTION) * count * factor
        return leakage, dynamic

    rows: List[BlockPowerRow] = []
    for block, spec, count, factor in (
        ("Scheduler", lib.SCHEDULER, 1, activity.scheduler),
        (
            "OBB Generation Units",
            lib.OBB_TRANSFORM_UNIT,
            config.n_cecdus,
            activity.obb_generation,
        ),
        (
            "Octree Traversal Units",
            lib.OCTREE_TRAVERSAL_UNIT,
            n_oocds_total,
            activity.octree_traversal,
        ),
        ("Intersection Units", iu, n_oocds_total, activity.intersection),
    ):
        leakage, dynamic = split(spec.power_mw, count, factor)
        rows.append(
            BlockPowerRow(
                block=block, count=count, leakage_mw=leakage, dynamic_mw=dynamic
            )
        )
    return PowerReport(
        rows=rows,
        window_cycles=window_cycles,
        clock_hz=config.cecdu.clock_hz,
    )
