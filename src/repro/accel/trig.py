"""The fixed-point trigonometric function unit (Section 5.2).

The OBB Generation Unit evaluates sines and cosines with a fifth-order
polynomial approximation (de Dinechin et al.): a 5-stage pipeline of 8
multipliers and 3 adders.  We implement the same approximation numerically
so its error can be validated, and expose the pipeline's timing constants
for the OBB generation latency model.  (Behavioral collision outcomes use
exact trigonometry; the approximation error shown by
:func:`max_approximation_error` is below the 16-bit rotation quantization
noise, so this does not change any verdicts.)
"""

from __future__ import annotations

import math

import numpy as np

#: Pipeline depth of the trig unit (5 stages).
TRIG_PIPELINE_DEPTH = 5
#: Resource footprint used in energy accounting.
TRIG_MULTIPLIERS = 8
TRIG_ADDERS = 3


def _reduce_angle(theta: float) -> float:
    """Range-reduce to [-pi, pi]."""
    reduced = math.fmod(theta, 2.0 * math.pi)
    if reduced > math.pi:
        reduced -= 2.0 * math.pi
    elif reduced < -math.pi:
        reduced += 2.0 * math.pi
    return reduced


# Least-squares-fit odd quintic for sin on [-pi/2, pi/2] (the same degree
# the FPGA unit of de Dinechin et al. uses); max error ~1.4e-4, below the
# Q1.14 rotation-entry quantization step of 6.1e-5 x 2.
_SIN_C0 = 0.99991229
_SIN_C1 = -0.16602245
_SIN_C2 = 0.00762765


def sin_approx(theta: float) -> float:
    """Fifth-order polynomial sine after symmetry-based range reduction.

    The odd quintic ``x (c0 + c1 x^2 + c2 x^4)`` is evaluated on
    [-pi/2, pi/2]; quadrant symmetries extend it to the full circle.
    Max error ~1.4e-4.
    """
    x = _reduce_angle(float(theta))
    # Fold into [-pi/2, pi/2] using sin(pi - x) = sin(x).
    if x > math.pi / 2.0:
        x = math.pi - x
    elif x < -math.pi / 2.0:
        x = -math.pi - x
    x2 = x * x
    return x * (_SIN_C0 + x2 * (_SIN_C1 + x2 * _SIN_C2))


def cos_approx(theta: float) -> float:
    """Cosine via the sine unit: cos(x) = sin(x + pi/2)."""
    return sin_approx(float(theta) + math.pi / 2.0)


def max_approximation_error(n_samples: int = 10000) -> float:
    """Worst-case |sin_approx - sin| over a dense sweep (for tests/docs)."""
    angles = np.linspace(-2.0 * math.pi, 2.0 * math.pi, n_samples)
    errors = [abs(sin_approx(a) - math.sin(a)) for a in angles]
    return max(errors)


class TrigFunctionUnit:
    """Timing façade: one sin or cos issue per cycle, 5-cycle latency."""

    pipeline_depth = TRIG_PIPELINE_DEPTH

    def __init__(self):
        self.operations_issued = 0

    def evaluate(self, theta: float, kind: str = "sin") -> float:
        self.operations_issued += 1
        if kind == "sin":
            return sin_approx(theta)
        if kind == "cos":
            return cos_approx(theta)
        raise ValueError(f"kind must be 'sin' or 'cos', got {kind!r}")

    def latency_for(self, n_operations: int) -> int:
        """Cycles to produce ``n_operations`` results (pipelined issue)."""
        if n_operations <= 0:
            return 0
        return self.pipeline_depth + (n_operations - 1)
