"""The limit study of Section 3 (Figure 7).

Assumptions: zero-latency scheduling (unlimited dispatch per cycle) and a
one-cycle collision detection unit.  For each policy and CDU count the
study reports speedup over the early-exiting sequential evaluation and the
number of collision detection tests normalized to sequential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.accel.config import SASConfig
from repro.accel.sas import SASSimulator, unit_latency_model
from repro.accel.telemetry import MetricsRegistry
from repro.planning.motion import CDPhase


@dataclass
class LimitStudyPoint:
    """One (policy, n_cdus) cell of Figure 7."""

    policy: str
    n_cdus: int
    cycles: int
    tests: int
    sequential_cycles: int
    sequential_tests: int

    @property
    def speedup(self) -> float:
        return self.sequential_cycles / max(1, self.cycles)

    @property
    def normalized_tests(self) -> float:
        return self.tests / max(1, self.sequential_tests)


def limit_study(
    phases: Sequence[CDPhase],
    policies: Sequence[str] = ("np", "rnd", "brp", "csp", "ms", "mnp", "mbrp", "mcsp"),
    cdu_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    step_size: int = 8,
    group_size: int = 16,
    seed: int = 0,
    telemetry: MetricsRegistry | None = None,
    check_invariants: bool = False,
) -> List[LimitStudyPoint]:
    """Run the Figure 7 sweep and return one point per (policy, CDU count).

    The sequential baseline (1 test per cycle, early exit, in-order) is
    computed once per phase and shared across all points.  ``telemetry``
    collects one scope per (policy, CDU count) cell; ``check_invariants``
    audits every simulated phase with :mod:`repro.accel.invariants`.
    """
    sequential_tests = sum(p.sequential_reference().tests for p in phases)
    sequential_cycles = sequential_tests  # one test per cycle, one CDU

    points: List[LimitStudyPoint] = []
    for policy in policies:
        for n_cdus in cdu_counts:
            config = SASConfig(
                policy=policy,
                step_size=step_size,
                group_size=group_size,
                dispatch_per_cycle=None,  # zero-latency scheduler
            )
            simulator = SASSimulator(
                n_cdus=n_cdus,
                policy=policy,
                config=config,
                latency_model=unit_latency_model,
                seed=seed,
                telemetry=telemetry,
                check_invariants=check_invariants,
            )
            if telemetry is not None and telemetry.enabled:
                with telemetry.scope("limit_study", f"{policy}x{n_cdus}"):
                    total = simulator.run_phases(list(phases))
            else:
                total = simulator.run_phases(list(phases))
            points.append(
                LimitStudyPoint(
                    policy=policy,
                    n_cdus=n_cdus,
                    cycles=total.cycles,
                    tests=total.tests,
                    sequential_cycles=sequential_cycles,
                    sequential_tests=sequential_tests,
                )
            )
    return points


def tabulate(points: List[LimitStudyPoint]) -> Dict[str, Dict[int, LimitStudyPoint]]:
    """Index the study as table[policy][n_cdus] for plotting/reporting."""
    table: Dict[str, Dict[int, LimitStudyPoint]] = {}
    for point in points:
        table.setdefault(point.policy, {})[point.n_cdus] = point
    return table
