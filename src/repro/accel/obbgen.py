"""The OBB Generation Unit (Figure 14a): timing and energy model.

At runtime the unit receives a pose, computes sin/cos of every joint angle
on the trig pipeline, chains the per-joint DH transforms through the matrix
multiplier, and emits one OBB per link (center + orientation from the
link's stored box size and sphere radii).  Behavioral OBB values come from
the exact robot model (see :mod:`repro.accel.trig` for why that is sound);
this module supplies the cycle and energy costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import math

import numpy as np

from repro.accel.trig import TRIG_PIPELINE_DEPTH, cos_approx, sin_approx
from repro.geometry.fixed_point import DEFAULT_FORMAT, FixedPointFormat, quantize_obb
from repro.geometry.obb import OBB
from repro.geometry.transform import RigidTransform
from repro.robot.model import RobotModel

#: Cycles for one 4x4 transform chain step on the matrix multiplier array.
MATMUL_CYCLES_PER_LINK = 2
#: Sin + cos issues per joint on the trig pipeline.
TRIG_ISSUES_PER_JOINT = 2
#: Fixed-point multiplies per link: one 4x4 matrix product (64), the OBB
#: center/orientation extraction (~24), and the trig unit's share (2 ops x
#: 8 multipliers x 5 stages amortized across links).
OBB_GEN_MULTIPLIES_PER_LINK = 64 + 24 + 80


@dataclass(frozen=True)
class OBBGenerationResult:
    """The generated OBBs plus when each became available."""

    obbs: List[OBB]
    ready_cycles: List[int]  # per-link availability time
    total_cycles: int  # when the last OBB is ready
    multiplies: int


class OBBGenerationUnit:
    """Generates the robot's link OBBs for a pose, with cycle accounting."""

    def __init__(
        self,
        robot: RobotModel,
        fixed_point: Optional[FixedPointFormat] = DEFAULT_FORMAT,
    ):
        self.robot = robot
        self.fixed_point = fixed_point

    def first_obb_latency(self) -> int:
        """Cycles until the first link's OBB is available."""
        return TRIG_PIPELINE_DEPTH + TRIG_ISSUES_PER_JOINT + MATMUL_CYCLES_PER_LINK

    def generate(self, q) -> OBBGenerationResult:
        """OBBs for pose ``q`` and the cycle each one becomes ready.

        The trig pipeline issues sin/cos for joint i at cycle 2i, so joint
        i's values are ready at ``TRIG_DEPTH + 2(i+1)``; the transform chain
        then adds ``MATMUL_CYCLES_PER_LINK`` per link, serialized because
        link i's frame depends on link i-1's.
        """
        obbs = self.robot.link_obbs(q)
        if self.fixed_point is not None:
            obbs = [quantize_obb(obb, self.fixed_point) for obb in obbs]
        ready: List[int] = []
        chain_time = TRIG_PIPELINE_DEPTH
        for link in self.robot.links:
            joint_count = max(link.frame_index, 1)
            trig_ready = TRIG_PIPELINE_DEPTH + TRIG_ISSUES_PER_JOINT * joint_count
            chain_time = max(chain_time, trig_ready) + MATMUL_CYCLES_PER_LINK
            ready.append(chain_time)
        return OBBGenerationResult(
            obbs=obbs,
            ready_cycles=ready,
            total_cycles=ready[-1] if ready else 0,
            multiplies=OBB_GEN_MULTIPLIES_PER_LINK * len(obbs),
        )

    def generate_with_trig_unit(self, q) -> List[OBB]:
        """OBBs computed through the quintic trig approximation.

        This is what the silicon actually evaluates: the DH chain with
        ``sin_approx``/``cos_approx`` instead of exact trigonometry.  The
        behavioral simulator uses exact trig (see :mod:`repro.accel.trig`
        for why that is sound); this method exists so the equivalence can
        be *measured* rather than assumed — see the OBB generation tests.
        """
        robot = self.robot
        q = robot.validate_configuration(q)
        current = robot.base
        frames = [current]
        for param, theta in zip(robot.dh, q):
            th = float(theta) + param.theta_offset
            ct, st = cos_approx(th), sin_approx(th)
            ca, sa = math.cos(param.alpha), math.sin(param.alpha)
            matrix = np.array(
                [
                    [ct, -st * ca, st * sa, param.a * ct],
                    [st, ct * ca, -ct * sa, param.a * st],
                    [0.0, sa, ca, param.d],
                    [0.0, 0.0, 0.0, 1.0],
                ]
            )
            current = current @ RigidTransform(matrix)
            frames.append(current)
        obbs = [
            link.obb_in_world(frames[link.frame_index]) for link in robot.links
        ]
        if self.fixed_point is not None:
            obbs = [quantize_obb(obb, self.fixed_point) for obb in obbs]
        return obbs
