"""The Spatially Aware Scheduler: an event-driven cycle-accurate simulator.

Models the SAS microarchitecture of Section 5.1: the CD Query Generator
dispatches at most one collision detection query per cycle to a free CDU,
ordering poses by the configured policy and keeping ``group_size`` motions
live for inter-motion parallelism.  Results retire queries; a colliding
pose kills its motion (its unscheduled poses are dropped), and the function
mode decides when the whole phase may stop:

- FEASIBILITY stops at the first colliding pose,
- CONNECTIVITY stops at the first motion proven collision-free,
- COMPLETE runs until every motion is decided.

Queries in flight when the stop condition fires were already dispatched, so
their work counts toward energy — exactly the redundant computation the
paper's schedulers are designed to minimize.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.accel.config import SASConfig
from repro.accel.policies import SchedulingPolicy, make_policy
from repro.planning.motion import CDPhase, FunctionMode, MotionRecord

#: A latency model maps (motion, pose_index) to the query's outcome:
#: (hit, latency_cycles, energy_pj).  The limit study uses a constant
#: single-cycle model; Section 7.1 plugs in the CECDU timing model.
LatencyModel = Callable[[MotionRecord, int], tuple]


@dataclass(frozen=True)
class DispatchEvent:
    """One scheduled query, for timeline inspection/debugging."""

    dispatch_cycle: int
    complete_cycle: int
    motion_index: int
    pose_index: int
    hit: bool


def unit_latency_model(motion: MotionRecord, pose_index: int) -> tuple:
    """The limit-study CDU: ground-truth verdict in exactly one cycle."""
    return motion.pose_collides(pose_index), 1, 1.0


@dataclass
class SASResult:
    """Outcome of simulating one CD phase on SAS."""

    cycles: int
    tests: int
    energy_pj: float
    motion_outcomes: List[Optional[bool]] = field(default_factory=list)
    stopped_early: bool = False
    #: Total CDU-cycles spent executing queries (sum of query latencies).
    busy_cycles: int = 0
    #: CDU count the phase ran on (for utilization computation).
    n_cdus: int = 1
    #: Per-dispatch events (populated only when the simulator records them).
    timeline: List["DispatchEvent"] = field(default_factory=list)

    @property
    def any_collision(self) -> bool:
        return any(outcome is True for outcome in self.motion_outcomes)

    @property
    def any_free(self) -> bool:
        return any(outcome is False for outcome in self.motion_outcomes)

    @property
    def utilization(self) -> float:
        """Fraction of CDU-cycles that executed a query (0..1).

        Low utilization at high CDU counts is the dispatch-rate bound the
        paper describes in Section 7.1 ("if the latency of CDUs is less
        than the number of CDUs ... the scheduler can not dispatch CD
        queries fast enough").
        """
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (self.cycles * self.n_cdus))


class _MotionState:
    """Scheduler-side bookkeeping for one motion."""

    __slots__ = ("motion", "order", "next_index", "in_flight", "returned", "killed", "decided")

    def __init__(self, motion: MotionRecord, order: List[int]):
        self.motion = motion
        self.order = order
        self.next_index = 0  # next position in `order` to dispatch
        self.in_flight = 0
        self.returned = 0
        self.killed = False
        self.decided: Optional[bool] = None  # True=colliding, False=free

    @property
    def exhausted(self) -> bool:
        """No more poses to dispatch (killed motions stop scheduling)."""
        return self.killed or self.next_index >= len(self.order)

    def pop_pose(self) -> int:
        pose = self.order[self.next_index]
        self.next_index += 1
        self.in_flight += 1
        return pose


class SASSimulator:
    """Simulates SAS + a pool of CDUs over one CD phase."""

    def __init__(
        self,
        n_cdus: int,
        policy: SchedulingPolicy | str = "mcsp",
        config: SASConfig | None = None,
        latency_model: LatencyModel = unit_latency_model,
        seed: int = 0,
    ):
        if n_cdus < 1:
            raise ValueError(f"n_cdus must be >= 1, got {n_cdus}")
        if config is None:
            config = SASConfig()
        if isinstance(policy, str):
            policy = make_policy(policy, step_size=config.step_size)
        self.n_cdus = n_cdus
        self.policy = policy
        self.config = config
        self.latency_model = latency_model
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def run(self, phase: CDPhase, record_timeline: bool = False) -> SASResult:
        """Simulate one phase; optionally record the dispatch timeline.

        ``record_timeline=True`` fills ``SASResult.timeline`` with one
        :class:`DispatchEvent` per query, in dispatch order — useful for
        inspecting a schedule or asserting scheduling properties in tests.
        """
        policy = self.policy
        group_size = self.config.group_size if policy.inter_motion else 1
        throttled = self.config.dispatch_per_cycle is not None
        timeline: List[DispatchEvent] = []
        motion_index = {id(m): i for i, m in enumerate(phase.motions)}

        states = [
            _MotionState(m, policy.pose_order(m.num_poses, self._rng))
            for m in phase.motions
        ]
        active: List[_MotionState] = []
        backlog = list(states)

        def refill_active():
            while len(active) < group_size and backlog:
                candidate = backlog.pop(0)
                if candidate.exhausted and candidate.in_flight == 0:
                    continue
                active.append(candidate)

        refill_active()

        free_cdus = self.n_cdus
        completions: list = []  # heap of (time, seq, state, pose_index, hit, energy)
        seq = 0
        now = 0
        next_dispatch = 0
        dispatch_cycle = -1
        dispatch_budget = 0
        rr_index = 0  # round-robin cursor over `active`
        tests = 0
        energy = 0.0
        busy_cycles = 0
        stop = False
        stop_time = 0

        def select_query() -> Optional[_MotionState]:
            """Next motion to dispatch from, round-robin over the group."""
            nonlocal rr_index
            if not active:
                return None
            n = len(active)
            for k in range(n):
                state = active[(rr_index + k) % n]
                if state.exhausted:
                    continue
                if not policy.intra_motion and state.in_flight > 0:
                    continue
                rr_index = (rr_index + k + 1) % n
                return state
            return None

        def process(state: _MotionState, pose_index: int, hit: bool, t: int):
            nonlocal stop, stop_time
            state.in_flight -= 1
            state.returned += 1
            if state.decided is None:
                if hit:
                    # Kill: drop the motion's unscheduled poses and free its
                    # slot in the scheduling group immediately.
                    state.killed = True
                    state.decided = True
                    if state in active:
                        active.remove(state)
                        refill_active()
                elif state.returned == len(state.order):
                    state.decided = False
            if not stop:
                if phase.mode is FunctionMode.FEASIBILITY and state.decided is True:
                    stop = True
                    stop_time = t
                elif phase.mode is FunctionMode.CONNECTIVITY and state.decided is False:
                    stop = True
                    stop_time = t

        last_completion = 0
        while True:
            candidate = None if stop else select_query()
            if candidate is not None and free_cdus > 0:
                t = max(now, next_dispatch)
                # Results that land strictly before this dispatch slot must
                # be processed first: they may kill the motion we would
                # otherwise schedule from.
                if completions and completions[0][0] <= t:
                    ct, _, state, pose_index, hit, _energy = heapq.heappop(completions)
                    free_cdus += 1
                    now = ct
                    last_completion = max(last_completion, ct)
                    process(state, pose_index, hit, ct)
                    continue
                pose_index = candidate.pop_pose()
                if candidate.exhausted:
                    # No poses left to schedule: free the group slot so the
                    # next backlog motion can enter (Section 5.1).
                    active.remove(candidate)
                    refill_active()
                hit, latency, query_energy = self.latency_model(
                    candidate.motion, pose_index
                )
                tests += 1
                energy += query_energy
                busy_cycles += latency
                if record_timeline:
                    timeline.append(
                        DispatchEvent(
                            dispatch_cycle=t,
                            complete_cycle=t + latency,
                            motion_index=motion_index[id(candidate.motion)],
                            pose_index=pose_index,
                            hit=hit,
                        )
                    )
                free_cdus -= 1
                seq += 1
                heapq.heappush(
                    completions, (t + latency, seq, candidate, pose_index, hit, query_energy)
                )
                if throttled:
                    if t == dispatch_cycle:
                        dispatch_budget -= 1
                    else:
                        dispatch_cycle = t
                        dispatch_budget = self.config.dispatch_per_cycle - 1
                    if dispatch_budget <= 0:
                        next_dispatch = t + 1
                now = t
                continue
            if completions:
                ct, _, state, pose_index, hit, _energy = heapq.heappop(completions)
                free_cdus += 1
                now = ct
                last_completion = max(last_completion, ct)
                process(state, pose_index, hit, ct)
                continue
            break  # no dispatchable work and nothing in flight

        if stop:
            cycles = stop_time
        else:
            cycles = last_completion
        outcomes = [state.decided for state in states]
        return SASResult(
            cycles=cycles,
            tests=tests,
            energy_pj=energy,
            motion_outcomes=outcomes,
            stopped_early=stop,
            busy_cycles=busy_cycles,
            n_cdus=self.n_cdus,
            timeline=timeline,
        )

    def run_phases(self, phases: List[CDPhase]) -> SASResult:
        """Simulate a sequence of phases; totals cycles/tests/energy."""
        total = SASResult(cycles=0, tests=0, energy_pj=0.0, n_cdus=self.n_cdus)
        for phase in phases:
            result = self.run(phase)
            total.cycles += result.cycles
            total.tests += result.tests
            total.energy_pj += result.energy_pj
            total.busy_cycles += result.busy_cycles
            total.motion_outcomes.extend(result.motion_outcomes)
            total.stopped_early = total.stopped_early or result.stopped_early
        return total


def prime_phase(phase: CDPhase, checker) -> int:
    """Resolve every undecided pose of a phase in one batched dispatch.

    The lazy ``MotionRecord`` cache answers the simulator's out-of-order
    probes with one scalar ``check_pose`` call each; priming instead stacks
    all unevaluated poses across the phase's motions into a single
    ``checker.check_poses`` call — with a ``backend="batch"`` checker that is
    one vectorized pipeline invocation for the whole MCSP batch.  Verdicts
    and recorded stats are bit-identical either way (the batch backend's
    contract), so simulation results do not change.  Returns the number of
    poses primed.
    """
    targets = [
        (motion, index)
        for motion in phase.motions
        for index in motion.unevaluated_indices()
    ]
    if not targets:
        return 0
    stacked = np.stack([motion.poses[index] for motion, index in targets])
    verdicts = checker.check_poses(stacked)
    for (motion, index), hit in zip(targets, verdicts):
        motion.set_pose_outcome(index, bool(hit))
    return len(targets)


def sequential_reference_tests(phase: CDPhase) -> int:
    """Work of the early-exiting sequential evaluation (the efficiency baseline)."""
    return phase.sequential_reference().tests
