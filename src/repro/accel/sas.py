"""The Spatially Aware Scheduler: an event-driven cycle-accurate simulator.

Models the SAS microarchitecture of Section 5.1: the CD Query Generator
dispatches at most one collision detection query per cycle to a free CDU,
ordering poses by the configured policy and keeping ``group_size`` motions
live for inter-motion parallelism.  Results retire queries; a colliding
pose kills its motion (its unscheduled poses are dropped), and the function
mode decides when the whole phase may stop:

- FEASIBILITY stops at the first colliding pose,
- CONNECTIVITY stops at the first motion proven collision-free,
- COMPLETE runs until every motion is decided.

Queries in flight when the stop condition fires were already dispatched, so
their work counts toward energy — exactly the redundant computation the
paper's schedulers are designed to minimize.  Time accounting splits that
work at the stop boundary: ``busy_cycles`` covers only CDU-cycles inside
the measured window (so utilization is a true 0..1 fraction), and the
in-flight remainder is reported as ``abandoned_cycles``.

Phases reach the simulator two ways: post-hoc replay of a recorded trace
(:meth:`SASSimulator.run_phases`), or inline during planning through
:class:`repro.planning.engine.SimulatedEngine`, which runs each phase the
moment the planner issues it.  With matching seed/policy/config and a
deterministic pose ordering the two routes produce identical results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.accel.config import SASConfig
from repro.accel.policies import SchedulingPolicy, make_policy
from repro.accel.telemetry import MetricsRegistry, TraceEvent
from repro.planning.motion import CDPhase, FunctionMode, MotionRecord

#: A latency model maps (motion, pose_index) to the query's outcome:
#: (hit, latency_cycles, energy_pj).  The limit study uses a constant
#: single-cycle model; Section 7.1 plugs in the CECDU timing model.
LatencyModel = Callable[[MotionRecord, int], tuple]


@dataclass(frozen=True)
class DispatchEvent:
    """One scheduled query, for timeline inspection/debugging.

    ``phase`` is 0 for a single-phase run; multi-phase aggregation
    (:meth:`SASSimulator.run_phases`) rewrites it so every event stays
    attributable after cycle offsets are applied.
    """

    dispatch_cycle: int
    complete_cycle: int
    motion_index: int
    pose_index: int
    hit: bool
    phase: int = 0


@dataclass(frozen=True)
class PhaseStats:
    """Per-phase breakdown of an aggregated :meth:`run_phases` result."""

    index: int
    label: str
    mode: str
    cycle_offset: int
    cycles: int
    tests: int
    energy_pj: float
    busy_cycles: int
    abandoned_cycles: int
    stopped_early: bool
    n_motions: int


def unit_latency_model(motion: MotionRecord, pose_index: int) -> tuple:
    """The limit-study CDU: ground-truth verdict in exactly one cycle."""
    return motion.pose_collides(pose_index), 1, 1.0


@dataclass
class SASResult:
    """Outcome of simulating one CD phase (or an aggregated sequence) on SAS."""

    cycles: int
    tests: int
    energy_pj: float
    motion_outcomes: List[Optional[bool]] = field(default_factory=list)
    stopped_early: bool = False
    #: Queries whose result was lost to an injected lane drop (each one is
    #: re-dispatched; the lost work still counts toward tests/energy).
    dropped_queries: int = 0
    #: Queries delayed by an injected lane stall.
    stalled_queries: int = 0
    #: CDU-cycles spent executing queries *inside* the measured window —
    #: latencies truncated at the stop boundary on early exit.
    busy_cycles: int = 0
    #: CDU count the phase ran on (for utilization computation).
    n_cdus: int = 1
    #: Per-dispatch events (populated only when the simulator records them).
    timeline: List["DispatchEvent"] = field(default_factory=list)
    #: In-flight CDU-cycles past the stop boundary on early exit.  This
    #: work still counts toward ``tests``/``energy_pj`` (it was dispatched,
    #: so the hardware pays for it) but not toward window utilization.
    abandoned_cycles: int = 0
    #: Number of CD phases aggregated into this result (1 for ``run``).
    phase_count: int = 1
    #: Per-phase stats with cycle offsets (populated by ``run_phases``).
    phase_breakdown: List["PhaseStats"] = field(default_factory=list)
    #: Scheduler event trace (populated alongside ``timeline``).
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def any_collision(self) -> bool:
        return any(outcome is True for outcome in self.motion_outcomes)

    @property
    def any_free(self) -> bool:
        return any(outcome is False for outcome in self.motion_outcomes)

    @property
    def total_busy_cycles(self) -> int:
        """All CDU-cycles dispatched, including work abandoned at a stop."""
        return self.busy_cycles + self.abandoned_cycles

    @property
    def utilization(self) -> float:
        """Fraction of CDU-cycles that executed a query (0..1, unclamped).

        ``busy_cycles`` is truncated at the stop boundary, so the ratio is
        a true fraction — any value outside [0, 1] is an accounting bug
        (``repro.accel.invariants`` asserts this).  Low utilization at high
        CDU counts is the dispatch-rate bound the paper describes in
        Section 7.1 ("if the latency of CDUs is less than the number of
        CDUs ... the scheduler can not dispatch CD queries fast enough").
        """
        if self.cycles <= 0:
            return 0.0
        return self.busy_cycles / (self.cycles * self.n_cdus)


class _MotionState:
    """Scheduler-side bookkeeping for one motion."""

    __slots__ = (
        "motion", "order", "n_poses", "next_index", "in_flight", "returned",
        "killed", "decided",
    )

    def __init__(self, motion: MotionRecord, order: List[int]):
        self.motion = motion
        self.order = order
        # `order` starts as a permutation of the poses but may grow when an
        # injected lane drop requeues a pose, so the free-motion decision
        # compares against the pose count, not len(order).
        self.n_poses = len(order)
        self.next_index = 0  # next position in `order` to dispatch
        self.in_flight = 0
        self.returned = 0
        self.killed = False
        self.decided: Optional[bool] = None  # True=colliding, False=free

    @property
    def exhausted(self) -> bool:
        """No more poses to dispatch (killed motions stop scheduling)."""
        return self.killed or self.next_index >= len(self.order)

    def pop_pose(self) -> int:
        pose = self.order[self.next_index]
        self.next_index += 1
        self.in_flight += 1
        return pose


class SASSimulator:
    """Simulates SAS + a pool of CDUs over one CD phase.

    ``telemetry`` (optional) receives dispatch/completion/kill counters and
    latency histograms; ``check_invariants=True`` records the timeline and
    validates every run with :mod:`repro.accel.invariants`, raising
    ``SASInvariantError`` on any accounting violation.
    """

    def __init__(
        self,
        n_cdus: int,
        policy: SchedulingPolicy | str = "mcsp",
        config: SASConfig | None = None,
        latency_model: LatencyModel = unit_latency_model,
        seed: int = 0,
        telemetry: MetricsRegistry | None = None,
        check_invariants: bool = False,
        fault_injector=None,
    ):
        if n_cdus < 1:
            raise ValueError(f"n_cdus must be >= 1, got {n_cdus}")
        if config is None:
            config = SASConfig()
        if isinstance(policy, str):
            policy = make_policy(policy, step_size=config.step_size)
        self.n_cdus = n_cdus
        self.policy = policy
        self.config = config
        self.latency_model = latency_model
        self.telemetry = telemetry
        self.check_invariants = check_invariants
        # Optional repro.resilience.faults.FaultInjector: dispatched queries
        # may be dropped (result lost, pose re-dispatched) or stalled (late
        # completion).  One predicate per run when absent or disabled.
        self.fault_injector = fault_injector
        self._rng = np.random.default_rng(seed)

    def _lane_faults_active(self) -> bool:
        injector = self.fault_injector
        return (
            injector is not None
            and injector.enabled
            and (
                injector.models.lane_drop_rate > 0.0
                or injector.models.lane_stall_rate > 0.0
            )
        )

    # ------------------------------------------------------------------

    def run(self, phase: CDPhase, record_timeline: bool = False) -> SASResult:
        """Simulate one phase; optionally record the dispatch timeline.

        ``record_timeline=True`` fills ``SASResult.timeline`` with one
        :class:`DispatchEvent` per query (in dispatch order) and
        ``SASResult.events`` with the scheduler event trace — useful for
        inspecting a schedule or asserting scheduling properties in tests.
        """
        record = record_timeline or self.check_invariants
        policy = self.policy
        group_size = self.config.group_size if policy.inter_motion else 1
        throttled = self.config.dispatch_per_cycle is not None
        injector = self.fault_injector
        lane_faults = self._lane_faults_active()
        timeline: List[DispatchEvent] = []
        events: List[TraceEvent] = []
        motion_index = {id(m): i for i, m in enumerate(phase.motions)}

        tel = self.telemetry
        if tel is not None and tel.enabled:
            c_dispatch = tel.counter("sas.dispatches")
            c_complete = tel.counter("sas.completions")
            c_kill = tel.counter("sas.kills")
            c_refill = tel.counter("sas.refills")
            c_stop = tel.counter("sas.early_stops")
            h_latency = tel.histogram("sas.query_latency_cycles")
        else:
            tel = None
            c_dispatch = c_complete = c_kill = c_refill = c_stop = None
            h_latency = None

        states = [
            _MotionState(m, policy.pose_order(m.num_poses, self._rng))
            for m in phase.motions
        ]
        active: List[_MotionState] = []
        backlog = list(states)

        free_cdus = self.n_cdus
        # heap of (time, seq, state, pose_index, hit, energy, dropped)
        completions: list = []
        seq = 0
        now = 0
        next_dispatch = 0
        dispatch_cycle = -1
        dispatch_budget = 0
        rr_index = 0  # round-robin cursor over `active`
        tests = 0
        energy = 0.0
        busy_cycles = 0
        abandoned = 0
        dropped_queries = 0
        stalled_queries = 0
        stop = False
        stop_time = 0

        def refill_active(cycle: int):
            while len(active) < group_size and backlog:
                candidate = backlog.pop(0)
                if candidate.exhausted and candidate.in_flight == 0:
                    continue
                active.append(candidate)
                if record:
                    events.append(
                        TraceEvent(
                            "refill", cycle, motion_index[id(candidate.motion)]
                        )
                    )
                if c_refill is not None:
                    c_refill.inc()

        def remove_active(state: _MotionState, cycle: int):
            """Drop a motion from the group, keeping the round-robin cursor
            pointed at the same next motion (removal must not skew fairness)."""
            nonlocal rr_index
            index = active.index(state)
            active.pop(index)
            if index < rr_index:
                rr_index -= 1
            if rr_index >= len(active):
                rr_index = 0
            refill_active(cycle)

        refill_active(0)

        def select_query() -> Optional[_MotionState]:
            """Next motion to dispatch from, round-robin over the group."""
            nonlocal rr_index
            if not active:
                return None
            n = len(active)
            for k in range(n):
                state = active[(rr_index + k) % n]
                if state.exhausted:
                    continue
                if not policy.intra_motion and state.in_flight > 0:
                    continue
                rr_index = (rr_index + k + 1) % n
                return state
            return None

        def process(state: _MotionState, pose_index: int, hit: bool, t: int):
            nonlocal stop, stop_time
            state.in_flight -= 1
            state.returned += 1
            index = motion_index[id(state.motion)]
            if record:
                events.append(TraceEvent("complete", t, index, pose_index, hit))
            if c_complete is not None:
                c_complete.inc()
            if state.decided is None:
                if hit:
                    # Kill: drop the motion's unscheduled poses and free its
                    # slot in the scheduling group immediately.
                    state.killed = True
                    state.decided = True
                    if record:
                        events.append(TraceEvent("kill", t, index, pose_index, True))
                    if c_kill is not None:
                        c_kill.inc()
                    if state in active:
                        remove_active(state, t)
                elif state.returned == state.n_poses:
                    state.decided = False
            if not stop:
                if phase.mode is FunctionMode.FEASIBILITY and state.decided is True:
                    stop = True
                    stop_time = t
                elif phase.mode is FunctionMode.CONNECTIVITY and state.decided is False:
                    stop = True
                    stop_time = t
                else:
                    return
                if record:
                    events.append(TraceEvent("stop", t, index, pose_index, hit))
                if c_stop is not None:
                    c_stop.inc()

        last_completion = 0

        def requeue(state: _MotionState, pose_index: int, t: int):
            """A lane drop lost this query's result: schedule the pose again.

            The pose goes back to the front of the motion's dispatch order;
            if the motion had already left the scheduling group (exhausted),
            it re-enters through the backlog.  Moot once the motion is
            killed or the phase has stopped — the result would be discarded
            anyway.
            """
            state.in_flight -= 1
            if state.killed or stop:
                return
            state.order.insert(state.next_index, pose_index)
            if state not in active and state not in backlog:
                backlog.insert(0, state)
                refill_active(t)

        def drain_one():
            """Retire the earliest completion; truncate post-stop latency."""
            nonlocal free_cdus, now, last_completion, abandoned
            ct, _, state, pose_index, hit, _energy, dropped = heapq.heappop(
                completions
            )
            free_cdus += 1
            now = ct
            if ct > last_completion:
                last_completion = ct
            if dropped:
                if record:
                    events.append(
                        TraceEvent(
                            "drop", ct, motion_index[id(state.motion)], pose_index
                        )
                    )
                requeue(state, pose_index, ct)
            else:
                process(state, pose_index, hit, ct)
            if stop and ct > stop_time:
                # The query was in flight when the phase stopped: the CDU-
                # cycles past the stop boundary are abandoned work, outside
                # the measured window.
                abandoned += ct - stop_time

        while True:
            t = max(now, next_dispatch)
            can_dispatch = not stop and free_cdus > 0
            # Results due at or before this dispatch slot must be processed
            # first: they may kill the motion we would otherwise schedule
            # from.  Draining before selection also keeps the round-robin
            # cursor untouched until a dispatch actually happens — an
            # aborted attempt must not cost a motion its turn.
            if can_dispatch and completions and completions[0][0] <= t:
                drain_one()
                continue
            candidate = select_query() if can_dispatch else None
            if candidate is not None:
                pose_index = candidate.pop_pose()
                if candidate.exhausted:
                    # No poses left to schedule: free the group slot so the
                    # next backlog motion can enter (Section 5.1).
                    remove_active(candidate, t)
                hit, latency, query_energy = self.latency_model(
                    candidate.motion, pose_index
                )
                dropped = False
                if lane_faults:
                    fault = injector.lane_fault()
                    if fault is not None:
                        if fault[0] == "stall":
                            latency += fault[1]
                            stalled_queries += 1
                            if record:
                                events.append(
                                    TraceEvent(
                                        "stall", t,
                                        motion_index[id(candidate.motion)],
                                        pose_index,
                                    )
                                )
                        else:
                            # The CDU runs the query but its result is lost:
                            # the work is paid for, the verdict never lands.
                            dropped = True
                            dropped_queries += 1
                tests += 1
                energy += query_energy
                busy_cycles += latency
                if record:
                    index = motion_index[id(candidate.motion)]
                    timeline.append(
                        DispatchEvent(
                            dispatch_cycle=t,
                            complete_cycle=t + latency,
                            motion_index=index,
                            pose_index=pose_index,
                            hit=hit,
                        )
                    )
                    events.append(TraceEvent("dispatch", t, index, pose_index))
                if c_dispatch is not None:
                    c_dispatch.inc()
                    h_latency.record(latency)
                free_cdus -= 1
                seq += 1
                heapq.heappush(
                    completions,
                    (t + latency, seq, candidate, pose_index, hit, query_energy,
                     dropped),
                )
                if throttled:
                    if t == dispatch_cycle:
                        dispatch_budget -= 1
                    else:
                        dispatch_cycle = t
                        dispatch_budget = self.config.dispatch_per_cycle - 1
                    if dispatch_budget <= 0:
                        next_dispatch = t + 1
                now = t
                continue
            if completions:
                drain_one()
                continue
            break  # no dispatchable work and nothing in flight

        if stop:
            cycles = stop_time
        else:
            cycles = last_completion
        outcomes = [state.decided for state in states]
        if tel is not None:
            tel.counter("sas.runs").inc()
            tel.counter("sas.cycles").inc(cycles)
            tel.counter("sas.tests").inc(tests)
            tel.counter("sas.busy_cycles").inc(busy_cycles - abandoned)
            tel.counter("sas.abandoned_cycles").inc(abandoned)
        result = SASResult(
            cycles=cycles,
            tests=tests,
            energy_pj=energy,
            motion_outcomes=outcomes,
            stopped_early=stop,
            busy_cycles=busy_cycles - abandoned,
            n_cdus=self.n_cdus,
            timeline=timeline,
            abandoned_cycles=abandoned,
            events=events,
            dropped_queries=dropped_queries,
            stalled_queries=stalled_queries,
        )
        if self.check_invariants and not (dropped_queries or stalled_queries):
            # Lane faults deliberately break the accounting invariants a
            # healthy schedule must satisfy (a dropped pose dispatches
            # twice, a stall decouples latency from the latency model), so
            # the audit only runs on fault-free schedules.
            from repro.accel.invariants import verify_sas_result

            verify_sas_result(result, config=self.config, phases=[phase])
        return result

    def run_phases(
        self, phases: List[CDPhase], record_timeline: bool = False
    ) -> SASResult:
        """Simulate a sequence of phases; totals cycles/tests/energy.

        The aggregate keeps per-phase state: ``phase_breakdown`` holds one
        :class:`PhaseStats` per phase (with its cycle offset), and when
        ``record_timeline=True`` the per-phase timelines/event traces are
        merged with those offsets applied, so an aggregated trace is
        globally ordered and phase-attributable.
        """
        tel = self.telemetry
        total = SASResult(
            cycles=0, tests=0, energy_pj=0.0, n_cdus=self.n_cdus, phase_count=0
        )
        for index, phase in enumerate(phases):
            if tel is not None and tel.enabled:
                label = f"{index}:{phase.label or phase.mode.value}"
                with tel.scope("phase", label):
                    result = self.run(phase, record_timeline=record_timeline)
            else:
                result = self.run(phase, record_timeline=record_timeline)
            offset = total.cycles
            total.cycles += result.cycles
            total.tests += result.tests
            total.energy_pj += result.energy_pj
            total.busy_cycles += result.busy_cycles
            total.abandoned_cycles += result.abandoned_cycles
            total.dropped_queries += result.dropped_queries
            total.stalled_queries += result.stalled_queries
            total.motion_outcomes.extend(result.motion_outcomes)
            total.stopped_early = total.stopped_early or result.stopped_early
            total.phase_count += 1
            total.phase_breakdown.append(
                PhaseStats(
                    index=index,
                    label=phase.label,
                    mode=phase.mode.value,
                    cycle_offset=offset,
                    cycles=result.cycles,
                    tests=result.tests,
                    energy_pj=result.energy_pj,
                    busy_cycles=result.busy_cycles,
                    abandoned_cycles=result.abandoned_cycles,
                    stopped_early=result.stopped_early,
                    n_motions=len(phase.motions),
                )
            )
            if record_timeline:
                total.timeline.extend(
                    replace(
                        event,
                        dispatch_cycle=event.dispatch_cycle + offset,
                        complete_cycle=event.complete_cycle + offset,
                        phase=index,
                    )
                    for event in result.timeline
                )
                total.events.extend(
                    replace(event, cycle=event.cycle + offset, phase=index)
                    for event in result.events
                )
        if self.check_invariants and not (
            total.dropped_queries or total.stalled_queries
        ):
            from repro.accel.invariants import verify_sas_result

            verify_sas_result(total, config=self.config, phases=list(phases))
        return total


def prime_phase(phase: CDPhase, checker) -> int:
    """Resolve every undecided pose of a phase in one batched dispatch.

    The lazy ``MotionRecord`` cache answers the simulator's out-of-order
    probes with one scalar ``check_pose`` call each; priming instead stacks
    all unevaluated poses across the phase's motions into a single
    ``checker.check_poses`` call — with a ``backend="batch"`` checker that is
    one vectorized pipeline invocation for the whole MCSP batch.  Verdicts
    and recorded stats are bit-identical either way (the batch backend's
    contract), so simulation results do not change.  Returns the number of
    poses primed.
    """
    targets = [
        (motion, index)
        for motion in phase.motions
        for index in motion.unevaluated_indices()
    ]
    if not targets:
        return 0
    stacked = np.stack([motion.poses[index] for motion, index in targets])
    verdicts = checker.check_poses(stacked)
    for (motion, index), hit in zip(targets, verdicts):
        motion.set_pose_outcome(index, bool(hit))
    return len(targets)


def prime_phases(
    phases: Sequence[CDPhase], checker, telemetry: MetricsRegistry | None = None
) -> int:
    """Prime a sequence of phases; returns total poses primed.

    Used by :class:`repro.accel.mpaccel.MPAccelSimulator` and
    :class:`repro.accel.runtime.RobotRuntime` when the checker reports the
    vectorized backend, so every simulated query resolves its ground truth
    through the batch pipeline instead of N scalar calls.
    """
    primed = 0
    for phase in phases:
        primed += prime_phase(phase, checker)
    if telemetry is not None and telemetry.enabled and primed:
        telemetry.counter("sas.primed_poses").inc(primed)
    return primed


def sequential_reference_tests(phase: CDPhase) -> int:
    """Work of the early-exiting sequential evaluation (the efficiency baseline)."""
    return phase.sequential_reference().tests
