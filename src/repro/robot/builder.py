"""Spec-driven robot construction.

Lets downstream users describe a serial manipulator as plain data (e.g.
loaded from JSON/YAML) instead of writing preset code:

```python
spec = {
    "name": "myarm",
    "joints": [
        {"d": 0.3, "alpha": 1.5708, "limits": [-3.14, 3.14]},
        {"d": 0.25, "alpha": -1.5708},
    ],
    "links": [
        {"frame": 0, "length": 0.3, "width": 0.08},
        {"frame": 1, "length": 0.25, "width": 0.06},
    ],
}
robot = robot_from_spec(spec)
```

Joints default to full-circle limits; links default to the pure-z segment
shape the presets use, or accept explicit ``half_extents`` + ``offset``.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.geometry.transform import RigidTransform
from repro.robot.dh import DHParam
from repro.robot.link import LinkGeometry, link_along_z
from repro.robot.model import RobotModel

_DEFAULT_LIMIT = math.pi


def _joint_from_spec(spec: dict) -> DHParam:
    unknown = set(spec) - {"a", "alpha", "d", "theta_offset", "limits"}
    if unknown:
        raise ValueError(f"unknown joint fields: {sorted(unknown)}")
    return DHParam(
        a=float(spec.get("a", 0.0)),
        alpha=float(spec.get("alpha", 0.0)),
        d=float(spec.get("d", 0.0)),
        theta_offset=float(spec.get("theta_offset", 0.0)),
    )


def _link_from_spec(index: int, spec: dict) -> LinkGeometry:
    unknown = set(spec) - {"frame", "length", "width", "half_extents", "offset", "name"}
    if unknown:
        raise ValueError(f"unknown link fields: {sorted(unknown)}")
    name = spec.get("name", f"link{index}")
    frame = int(spec.get("frame", index))
    if "half_extents" in spec:
        offset = spec.get("offset", [0.0, 0.0, 0.0])
        return LinkGeometry(
            name=name,
            frame_index=frame,
            half_extents=tuple(float(h) for h in spec["half_extents"]),
            local=RigidTransform.from_translation(offset),
        )
    if "length" not in spec or "width" not in spec:
        raise ValueError(
            f"link {name!r} needs either half_extents or length+width"
        )
    return link_along_z(name, frame, float(spec["length"]), float(spec["width"]))


def robot_from_spec(spec: dict, base: RigidTransform | None = None) -> RobotModel:
    """Build a :class:`RobotModel` from a plain-data description."""
    unknown = set(spec) - {"name", "joints", "links"}
    if unknown:
        raise ValueError(f"unknown robot fields: {sorted(unknown)}")
    if "joints" not in spec or not spec["joints"]:
        raise ValueError("robot spec needs a non-empty 'joints' list")
    joints: List[DHParam] = [_joint_from_spec(j) for j in spec["joints"]]

    limits = []
    for joint_spec in spec["joints"]:
        lo, hi = joint_spec.get("limits", (-_DEFAULT_LIMIT, _DEFAULT_LIMIT))
        limits.append([float(lo), float(hi)])

    link_specs = spec.get("links")
    if not link_specs:
        # Default: one segment link per joint, sized from the DH offsets.
        link_specs = [
            {"frame": i, "length": max(abs(j.d) + abs(j.a), 0.05), "width": 0.06}
            for i, j in enumerate(joints)
        ]
    links = [_link_from_spec(i, s) for i, s in enumerate(link_specs)]

    return RobotModel(
        name=str(spec.get("name", "custom")),
        dh=joints,
        links=links,
        joint_limits=np.asarray(limits),
        base=base,
    )


def spec_from_robot(robot: RobotModel) -> dict:
    """The inverse: a plain-data description of an existing model.

    Links are exported in explicit ``half_extents``/``offset`` form, so
    ``robot_from_spec(spec_from_robot(r))`` reproduces the geometry exactly
    for translation-only link offsets (which covers every preset; the spec
    format does not carry link-local rotations).
    """
    return {
        "name": robot.name,
        "joints": [
            {
                "a": p.a,
                "alpha": p.alpha,
                "d": p.d,
                "theta_offset": p.theta_offset,
                "limits": [float(lo), float(hi)],
            }
            for p, (lo, hi) in zip(robot.dh, robot.joint_limits)
        ],
        "links": [
            {
                "name": link.name,
                "frame": link.frame_index,
                "half_extents": [float(h) for h in link.half_extents],
                "offset": [float(v) for v in link.local.translation],
            }
            for link in robot.links
        ],
    }
