"""The robot model: DH chain + link geometry + joint limits."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.geometry.obb import OBB
from repro.geometry.transform import RigidTransform
from repro.robot.dh import DHParam, chain_forward_kinematics
from repro.robot.link import LinkGeometry


class RobotModel:
    """A serial-chain manipulator with revolute joints.

    ``dh`` lists one :class:`DHParam` per joint, ``links`` the collision
    boxes, and ``joint_limits`` the (dof, 2) array of [lower, upper] bounds
    in radians.  ``base`` places the robot in the world.
    """

    def __init__(
        self,
        name: str,
        dh: Sequence[DHParam],
        links: Sequence[LinkGeometry],
        joint_limits: np.ndarray,
        base: RigidTransform | None = None,
    ):
        self.name = name
        self.dh = list(dh)
        self.links = list(links)
        self.joint_limits = np.asarray(joint_limits, dtype=float)
        self.base = base if base is not None else RigidTransform.identity()
        if not self.dh:
            raise ValueError("robot needs at least one joint")
        if not self.links:
            raise ValueError("robot needs at least one link geometry")
        if self.joint_limits.shape != (self.dof, 2):
            raise ValueError(
                f"joint_limits must be ({self.dof}, 2), got {self.joint_limits.shape}"
            )
        if np.any(self.joint_limits[:, 0] >= self.joint_limits[:, 1]):
            raise ValueError("every joint's lower limit must be below its upper limit")
        max_frame = max(link.frame_index for link in self.links)
        if max_frame > self.dof:
            raise ValueError(
                f"link frame index {max_frame} exceeds frame count {self.dof}"
            )

    @property
    def dof(self) -> int:
        """Number of degrees of freedom (revolute joints)."""
        return len(self.dh)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def validate_configuration(self, q) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        if q.shape != (self.dof,):
            raise ValueError(f"configuration must have shape ({self.dof},), got {q.shape}")
        return q

    def within_limits(self, q) -> bool:
        q = self.validate_configuration(q)
        return bool(
            np.all(q >= self.joint_limits[:, 0]) and np.all(q <= self.joint_limits[:, 1])
        )

    def clamp(self, q) -> np.ndarray:
        q = self.validate_configuration(q)
        return np.clip(q, self.joint_limits[:, 0], self.joint_limits[:, 1])

    def random_configuration(self, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.joint_limits[:, 0], self.joint_limits[:, 1]
        return rng.uniform(lo, hi)

    def forward_kinematics(self, q) -> List[RigidTransform]:
        """World poses of frames 0..dof for configuration ``q``."""
        q = self.validate_configuration(q)
        return chain_forward_kinematics(self.dh, q, base=self.base)

    def link_obbs(self, q) -> List[OBB]:
        """The world-space OBB of every link for configuration ``q``.

        This is the behavioral twin of the OBB Generation Unit: at runtime
        the hardware evaluates the same DH chain with its trig unit and
        matrix multipliers to orient each precomputed link box.
        """
        frames = self.forward_kinematics(q)
        return [link.obb_in_world(frames[link.frame_index]) for link in self.links]

    def reach(self) -> float:
        """Upper bound on the robot's reach (sum of DH offsets and lengths)."""
        return float(sum(abs(p.d) + abs(p.a) for p in self.dh))

    def __repr__(self) -> str:
        return (
            f"RobotModel({self.name!r}, dof={self.dof}, links={self.num_links})"
        )
