"""Robot models: DH kinematics and per-link collision geometry.

A robot is a chain of revolute joints described by Denavit-Hartenberg
parameters plus a set of link bounding boxes.  Evaluating forward kinematics
for a configuration yields one OBB per link — the exact quantities the OBB
Generation Unit produces on-chip (Section 5.2).
"""

from repro.robot.builder import robot_from_spec, spec_from_robot
from repro.robot.dh import DHParam, dh_transform
from repro.robot.link import LinkGeometry
from repro.robot.model import RobotModel
from repro.robot.presets import baxter_arm, jaco2, planar_arm

__all__ = [
    "DHParam",
    "dh_transform",
    "LinkGeometry",
    "RobotModel",
    "jaco2",
    "baxter_arm",
    "planar_arm",
    "robot_from_spec",
    "spec_from_robot",
]
