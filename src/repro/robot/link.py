"""Per-link collision geometry.

Each link carries one OBB expressed in the coordinate frame of the joint it
is rigidly attached to.  The hardware stores, per link, the OBB size plus the
radii of its bounding and inscribed spheres in SRAM (Section 5.2); both radii
derive from the half extents, so they are computed properties here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.obb import OBB
from repro.geometry.transform import RigidTransform


@dataclass(frozen=True)
class LinkGeometry:
    """An OBB rigidly attached to a kinematic frame.

    ``frame_index`` selects which forward-kinematics frame the box rides on
    (0 = robot base).  ``local`` places the box within that frame.
    """

    name: str
    frame_index: int
    half_extents: tuple
    local: RigidTransform = field(default_factory=RigidTransform.identity)

    def __post_init__(self):
        if self.frame_index < 0:
            raise ValueError(f"frame_index must be >= 0, got {self.frame_index}")
        if len(self.half_extents) != 3 or any(h <= 0 for h in self.half_extents):
            raise ValueError(
                f"half_extents must be 3 positive values, got {self.half_extents}"
            )

    @property
    def bounding_sphere_radius(self) -> float:
        hx, hy, hz = self.half_extents
        return math.sqrt(hx * hx + hy * hy + hz * hz)

    @property
    def inscribed_sphere_radius(self) -> float:
        return min(self.half_extents)

    def obb_in_world(self, frame: RigidTransform) -> OBB:
        """The link's OBB in world coordinates for a given frame pose."""
        pose = frame @ self.local
        return OBB(pose.translation, np.asarray(self.half_extents), pose.rotation)


def link_along_z(name: str, frame_index: int, length: float, width: float) -> LinkGeometry:
    """Convenience: a box spanning [0, length] on the frame's z axis.

    This is the common shape for arms whose DH tables use pure ``d`` offsets:
    the physical link runs from the joint origin to the next joint origin.
    A small width margin makes the box slightly fatter than the offset line,
    standing in for the actual link shell.
    """
    if length <= 0 or width <= 0:
        raise ValueError(f"length and width must be positive, got {length}, {width}")
    local = RigidTransform.from_translation([0.0, 0.0, length / 2.0])
    return LinkGeometry(
        name=name,
        frame_index=frame_index,
        half_extents=(width / 2.0, width / 2.0, length / 2.0 + width / 4.0),
        local=local,
    )
