"""Classic Denavit-Hartenberg joint parameterization.

Each revolute joint contributes the transform

    A(theta) = Rz(theta + theta_offset) * Tz(d) * Tx(a) * Rx(alpha)

mapping frame ``i`` coordinates into frame ``i-1``.  The OBB Generation Unit
evaluates exactly this chain with its trigonometric function unit and matrix
multipliers (Figure 14a).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.transform import RigidTransform


@dataclass(frozen=True)
class DHParam:
    """Classic DH parameters of one revolute joint.

    ``a``: link length along x, ``alpha``: link twist about x, ``d``: offset
    along z, ``theta_offset``: fixed bias added to the joint variable.
    """

    a: float = 0.0
    alpha: float = 0.0
    d: float = 0.0
    theta_offset: float = 0.0


def dh_transform(param: DHParam, theta: float) -> RigidTransform:
    """The frame-(i-1) <- frame-i transform for joint angle ``theta``."""
    th = theta + param.theta_offset
    ct, st = math.cos(th), math.sin(th)
    ca, sa = math.cos(param.alpha), math.sin(param.alpha)
    a, d = param.a, param.d
    matrix = np.array(
        [
            [ct, -st * ca, st * sa, a * ct],
            [st, ct * ca, -ct * sa, a * st],
            [0.0, sa, ca, d],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )
    return RigidTransform(matrix)


def chain_forward_kinematics(
    params: list, thetas, base: RigidTransform | None = None
) -> list:
    """Frames of every joint: ``frames[i]`` maps frame-i coords to world.

    ``frames[0]`` is the base frame itself; ``frames[i]`` for i >= 1 is the
    frame after applying joints 1..i.  Length is ``len(params) + 1``.
    """
    if len(params) != len(thetas):
        raise ValueError(
            f"got {len(thetas)} joint angles for {len(params)} DH joints"
        )
    current = base if base is not None else RigidTransform.identity()
    frames = [current]
    for param, theta in zip(params, thetas):
        current = current @ dh_transform(param, float(theta))
        frames.append(current)
    return frames
