"""Robot presets used throughout the paper's evaluation.

The paper evaluates a Kinova Jaco2 (6 DOF) and a Baxter arm (7 DOF), both
modeled with 7 links (Section 6).  The DH tables below use published link
lengths; twists alternate +-90 degrees, the standard articulated-arm layout.
Exact vendor DH fidelity is not required for the reproduction — the collision
workload depends on the scale and articulation of the link boxes, which these
presets match — but the proportions follow the Kinova and Rethink spec sheets.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.transform import RigidTransform
from repro.robot.dh import DHParam
from repro.robot.link import LinkGeometry, link_along_z
from repro.robot.model import RobotModel

_HALF_PI = math.pi / 2.0


def _symmetric_limits(dof: int, span: float = math.pi) -> np.ndarray:
    return np.array([[-span, span]] * dof)


def jaco2(base: RigidTransform | None = None) -> RobotModel:
    """Kinova Jaco2: 6 revolute joints, 7 links, ~0.9 m reach.

    Link offsets follow the Jaco2 spec (D1=0.2755, arm 0.41, forearm 0.2073,
    wrist 2x0.0741, hand 0.16), distributed over a pure-d DH chain.
    """
    d = [0.2755, 0.2050, 0.2050, 0.2073, 0.0741, 0.1600]
    alphas = [_HALF_PI, -_HALF_PI, _HALF_PI, -_HALF_PI, _HALF_PI, 0.0]
    dh = [DHParam(a=0.0, alpha=al, d=di) for al, di in zip(alphas, d)]
    widths = [0.10, 0.09, 0.07, 0.06, 0.055, 0.05]
    links = [
        # Base column: rides on the fixed base frame.
        LinkGeometry(
            name="base",
            frame_index=0,
            half_extents=(0.06, 0.06, 0.09),
            local=RigidTransform.from_translation([0.0, 0.0, 0.09]),
        )
    ]
    links += [
        link_along_z(f"link{i + 1}", frame_index=i, length=d[i], width=widths[i])
        for i in range(6)
    ]
    return RobotModel(
        name="jaco2",
        dh=dh,
        links=links,
        joint_limits=_symmetric_limits(6),
        base=base,
    )


def baxter_arm(base: RigidTransform | None = None) -> RobotModel:
    """One Baxter arm: 7 revolute joints, 7 links, ~1.2 m reach.

    Segment lengths follow the Rethink Baxter arm (upper arm 0.364, forearm
    0.374, shoulder/elbow/wrist offsets).
    """
    d = [0.2703, 0.1690, 0.3644, 0.1690, 0.3743, 0.1000, 0.2295]
    alphas = [_HALF_PI, -_HALF_PI, _HALF_PI, -_HALF_PI, _HALF_PI, -_HALF_PI, 0.0]
    dh = [DHParam(a=0.0, alpha=al, d=di) for al, di in zip(alphas, d)]
    widths = [0.12, 0.11, 0.09, 0.08, 0.07, 0.06, 0.05]
    links = [
        link_along_z(f"link{i + 1}", frame_index=i, length=d[i], width=widths[i])
        for i in range(7)
    ]
    limits = np.array(
        [
            [-1.70, 1.70],
            [-2.14, 1.04],
            [-3.05, 3.05],
            [-0.05, 2.61],
            [-3.05, 3.05],
            [-1.57, 2.09],
            [-3.05, 3.05],
        ]
    )
    return RobotModel(name="baxter", dh=dh, links=links, joint_limits=limits, base=base)


def planar_arm(
    n_joints: int = 2,
    link_length: float = 0.4,
    width: float = 0.06,
    base: RigidTransform | None = None,
) -> RobotModel:
    """A planar n-joint teaching robot (all joints rotate about world z).

    Useful for tests and for illustrating C-space concepts (Figure 2): its
    links stay in the z=0 plane so collision outcomes are easy to reason
    about analytically.
    """
    if n_joints < 1:
        raise ValueError(f"need at least one joint, got {n_joints}")
    dh = [DHParam(a=link_length, alpha=0.0, d=0.0) for _ in range(n_joints)]
    # With a pure-a DH chain, the link between joints i and i+1 runs along
    # the x axis of frame i+1 from -a to 0.
    links = [
        LinkGeometry(
            name=f"link{i + 1}",
            frame_index=i + 1,
            half_extents=(link_length / 2.0, width / 2.0, width / 2.0),
            local=RigidTransform.from_translation([-link_length / 2.0, 0.0, 0.0]),
        )
        for i in range(n_joints)
    ]
    return RobotModel(
        name=f"planar{n_joints}",
        dh=dh,
        links=links,
        joint_limits=_symmetric_limits(n_joints),
        base=base,
    )
