"""Trace generation CLI: ``python -m repro.harness.tracegen``.

Mirrors the paper artifact's trace-generation scripts: run the MPNet-style
planner over a benchmark suite and store the resulting CD phase stream
(with ground-truth per-pose outcomes) as a JSON file that the SAS/MPAccel
simulators can replay without the collision substrate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.serialization import save_traces
from repro.harness.traces import generate_mpnet_traces
from repro.harness.workloads import build_benchmarks
from repro.robot.presets import baxter_arm, jaco2

ROBOTS = {"jaco2": jaco2, "baxter": baxter_arm}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.tracegen",
        description="Generate MPNet planner traces for simulator replay.",
    )
    parser.add_argument("--robot", choices=sorted(ROBOTS), default="baxter")
    parser.add_argument("--envs", type=int, default=3)
    parser.add_argument("--queries", type=int, default=3)
    parser.add_argument("--resolution", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--out", required=True, help="output JSON path")
    args = parser.parse_args(argv)

    benchmarks = build_benchmarks(
        ROBOTS[args.robot],
        n_envs=args.envs,
        queries_per_env=args.queries,
        octree_resolution=args.resolution,
        seed=args.seed,
    )
    traces = generate_mpnet_traces(benchmarks, seed=args.seed + 1)
    save_traces(args.out, traces)
    n_phases = sum(len(t.phases) for t in traces)
    n_poses = sum(p.total_poses for t in traces for p in t.phases)
    print(
        f"wrote {args.out}: {len(traces)} queries, {n_phases} phases, "
        f"{n_poses} poses ({args.robot}, {args.envs} envs)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
