"""ASCII bar/line charts for experiment reports.

EXPERIMENTS.md carries tables; these helpers add terminal-friendly charts
so trends (speedup curves, histograms) are visible without a plotting
stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

BAR_GLYPH = "█"
HALF_GLYPH = "▌"


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bars scaled to the max value, one labeled row per item."""
    if not items:
        return "(no data)"
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    peak = max(value for _, value in items)
    label_width = max(len(label) for label, _ in items)
    lines: List[str] = []
    for label, value in items:
        if peak <= 0:
            filled = 0
            half = False
        else:
            scaled = value / peak * width
            filled = int(scaled)
            half = (scaled - filled) >= 0.5
        bar = BAR_GLYPH * filled + (HALF_GLYPH if half else "")
        lines.append(f"{label.ljust(label_width)} |{bar} {value:g}{unit}")
    return "\n".join(lines)


def series_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 50,
    height: int = 12,
) -> str:
    """A rough scatter/line chart for several (x, y) series.

    Each series gets its label's first character as the glyph.  Intended
    for speedup-vs-CDU-count style curves in text reports.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for label, pts in series.items():
        glyph = label[0] if label else "?"
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = glyph
    lines = ["".join(row) for row in canvas]
    lines.append(f"x: {x_lo:g}..{x_hi:g}   y: {y_lo:g}..{y_hi:g}")
    legend = "  ".join(f"{label[0]}={label}" for label in series if label)
    if legend:
        lines.append(legend)
    return "\n".join(lines)


def histogram(
    counts: Sequence[Tuple[str, int]], width: int = 40
) -> str:
    """Alias of :func:`bar_chart` for integer-count data."""
    return bar_chart([(label, float(count)) for label, count in counts], width=width)
