"""Workload construction: benchmark environments, queries, and test pairs.

Section 6: ten environmental scenarios with 5-9 cuboid obstacles (3%-12%
of the extent per dimension) and 100 start/goal pairs each.  The harness
builds scaled-down versions by default so full figure sweeps finish in
minutes of pure Python; every size knob is a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.collision.checker import RobotEnvironmentChecker
from repro.collision.octree_cd import OBBOctreeCollider
from repro.config import ReproConfig
from repro.env.generator import random_scene
from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.geometry.aabb import AABB
from repro.geometry.fixed_point import quantize_obb
from repro.geometry.obb import OBB
from repro.robot.model import RobotModel


@dataclass
class Benchmark:
    """One environment plus its octree, checker, and planning queries."""

    index: int
    scene: Scene
    octree: Octree
    checker: RobotEnvironmentChecker
    queries: List[Tuple[np.ndarray, np.ndarray]]

    @property
    def robot(self) -> RobotModel:
        return self.checker.robot


def build_benchmarks(
    robot_factory: Callable[[], RobotModel],
    n_envs: int = 10,
    queries_per_env: int = 100,
    octree_resolution: int = 16,
    n_obstacles: Optional[int] = None,
    motion_step: float = 0.05,
    seed: int = 2023,
    backend: str = "scalar",
) -> List[Benchmark]:
    """The Section 6 benchmark suite (sizes configurable).

    ``backend`` is forwarded to every environment's checker; pass
    ``"batch"`` to drive the suite through the vectorized pipeline (e.g.
    for :class:`~repro.planning.engine.BatchedEngine` planner runs).
    """
    if n_envs < 1 or queries_per_env < 1:
        raise ValueError("need at least one environment and one query")
    config = ReproConfig(
        backend=backend,
        motion_step=motion_step,
        octree_resolution=octree_resolution,
        collect_stats=False,
    )
    rng = np.random.default_rng(seed)
    benchmarks: List[Benchmark] = []
    for index in range(n_envs):
        scene = random_scene(rng=rng, n_obstacles=n_obstacles)
        octree = Octree.from_scene(scene, resolution=octree_resolution)
        checker = RobotEnvironmentChecker.from_config(
            robot_factory(), octree, config
        )
        queries = []
        for _ in range(queries_per_env):
            q_start = checker.sample_free_configuration(rng)
            q_goal = checker.sample_free_configuration(rng)
            queries.append((q_start, q_goal))
        benchmarks.append(
            Benchmark(
                index=index,
                scene=scene,
                octree=octree,
                checker=checker,
                queries=queries,
            )
        )
    return benchmarks


def random_link_obbs(
    robot: RobotModel, n_poses: int, seed: int = 0, quantized: bool = True
) -> List[OBB]:
    """Link OBBs of random robot poses (the Figure 8/17 query population)."""
    rng = np.random.default_rng(seed)
    obbs: List[OBB] = []
    for _ in range(n_poses):
        q = robot.random_configuration(rng)
        for obb in robot.link_obbs(q):
            obbs.append(quantize_obb(obb) if quantized else obb)
    return obbs


def collect_cascade_pairs(
    obbs: List[OBB], octree: Octree, max_pairs: Optional[int] = None
) -> List[Tuple[OBB, AABB]]:
    """(OBB, octant AABB) pairs actually tested during octree traversal.

    This reproduces the Figure 8 methodology: the distribution of
    separating-axis identifiers is measured over the intersection tests a
    real traversal performs, not over synthetic box pairs.
    """
    collider = OBBOctreeCollider(octree)
    pairs: List[Tuple[OBB, AABB]] = []
    for obb in obbs:
        trace = collider.collide(obb)
        boxes = _visit_boxes(trace, octree)
        for (address, octant), aabb in boxes.items():
            pairs.append((obb, aabb))
            if max_pairs is not None and len(pairs) >= max_pairs:
                return pairs
    return pairs


def _visit_boxes(trace, octree: Octree):
    """Recover the octant AABBs for every test in a traversal trace."""
    boxes = {}
    # Re-walk the trace: we know the visit order is BFS from the root, and
    # each visit's tests carry their octant indices.
    # Reconstruct node boxes level by level.
    node_box = {0: octree.bounds}
    for visit in trace.visits:
        parent_box = node_box.get(visit.address)
        if parent_box is None:
            continue
        node = octree.nodes[visit.address]
        for test in visit.tests:
            child_box = octree.octant_aabb(parent_box, test.octant)
            boxes[(visit.address, test.octant)] = child_box
            child = node.children[test.octant]
            if child is not None and test.result.hit:
                node_box[child] = child_box
    return boxes
