"""The common schema-versioned report protocol.

:class:`~repro.serving.service.ServiceReport`,
:class:`~repro.accel.runtime.RuntimeReport`, and
:class:`~repro.serving.fleet.FleetReport` all serialize through the same
conventions: a flat dict stamped with ``"schema"`` (the protocol version)
and ``"kind"`` (the report type's registry name), every other key mapping
1:1 onto a dataclass field with JSON-native values.  Deserialization is
strict — an unknown or missing key is rejected *by name*, never silently
dropped, so a report written by a newer (or corrupted) producer fails
loudly instead of round-tripping into a subtly different object.

This module is dependency-free on purpose: the report classes live in
layers (``repro.serving``, ``repro.accel``) that must not import the
harness at module scope, so they import these helpers lazily inside their
``to_dict``/``from_dict`` methods.  The file-level save/load entry points
(with the kind registry) are :func:`repro.harness.serialization.save_report`
/ :func:`repro.harness.serialization.load_report`.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "REPORT_SCHEMA",
    "stamp_report",
    "unpack_report",
    "check_keys",
]

#: Version stamp written into every serialized report.  Bump on any
#: incompatible key change; ``unpack_report`` rejects mismatches.
REPORT_SCHEMA = 1


def stamp_report(kind: str, payload: dict) -> dict:
    """Wrap a report payload with the protocol's schema/kind stamps."""
    out = {"schema": REPORT_SCHEMA, "kind": kind}
    out.update(payload)
    return out


def check_keys(label: str, data: dict, known_keys: Sequence[str]) -> None:
    """Reject unknown and missing keys by name (strict round-trip)."""
    unknown = sorted(set(data) - set(known_keys))
    if unknown:
        raise ValueError(
            f"unknown keys in {label}: {', '.join(unknown)}"
        )
    missing = sorted(set(known_keys) - set(data))
    if missing:
        raise ValueError(
            f"missing keys in {label}: {', '.join(missing)}"
        )


def unpack_report(data: dict, kind: str, known_keys: Sequence[str]) -> dict:
    """Validate stamps and key set; returns the payload without stamps."""
    if not isinstance(data, dict):
        raise TypeError(f"expected a serialized report dict, got {type(data).__name__}")
    schema = data.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            f"unsupported report schema {schema!r} (this build reads "
            f"schema {REPORT_SCHEMA})"
        )
    got = data.get("kind")
    if got != kind:
        raise ValueError(f"expected report kind {kind!r}, got {got!r}")
    body = {k: v for k, v in data.items() if k not in ("schema", "kind")}
    check_keys(f"{kind} report", body, known_keys)
    return body
