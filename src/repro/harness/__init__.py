"""Benchmark harness: workloads, planner traces, and experiment runners.

Every table and figure in the paper's evaluation has a runner in
:mod:`repro.harness.experiments`; the pytest-benchmark files under
``benchmarks/`` are thin wrappers over those runners, and
``python -m repro.harness.experiments --all`` regenerates EXPERIMENTS.md.
"""

from repro.harness.workloads import (
    Benchmark,
    build_benchmarks,
    collect_cascade_pairs,
    random_link_obbs,
)
from repro.harness.traces import QueryTrace, generate_mpnet_traces
from repro.harness.tables import format_table

__all__ = [
    "Benchmark",
    "build_benchmarks",
    "random_link_obbs",
    "collect_cascade_pairs",
    "QueryTrace",
    "generate_mpnet_traces",
    "format_table",
]
