"""Trace serialization: the artifact-style workflow.

The paper's artifact ships pre-generated trace files (motions, per-pose
collision outcomes, phase boundaries) that drive the SAS/MPAccel simulators
without re-running the planner or the collision substrate.  This module
provides the same workflow: record planner traces once, save them as JSON,
and replay them through any simulator configuration later.

JSON schema (version 1):

```
{
  "version": 1,
  "traces": [
    {
      "benchmark_index": 0,
      "result": {"success": true, "nn_inferences": 12, ...},
      "phases": [
        {
          "mode": "feasibility",
          "label": "steer",
          "motions": [
            {"poses": [[...], ...], "outcomes": [false, ...]}
          ]
        }
      ]
    }
  ]
}
```
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.accel.sas import DispatchEvent, PhaseStats, SASResult
from repro.accel.telemetry import MetricsRegistry, TraceEvent
from repro.harness.traces import QueryTrace
from repro.planning.motion import CDPhase, FunctionMode, MotionRecord
from repro.planning.mpnet import PlanResult
from repro.resilience.faults import FaultEvent, FaultModels, FaultSchedule

if TYPE_CHECKING:
    from repro.planning.engine import PhaseAnswer

SCHEMA_VERSION = 1


def phase_to_dict(phase: CDPhase) -> dict:
    """Serialize one phase, forcing ground truth for every pose."""
    return {
        "mode": phase.mode.value,
        "label": phase.label,
        "motions": [
            {
                "poses": motion.poses.tolist(),
                "outcomes": motion.evaluate_all(),
            }
            for motion in phase.motions
        ],
    }


def phase_from_dict(data: dict) -> CDPhase:
    motions = [
        MotionRecord.from_precomputed(
            np.asarray(m["poses"], dtype=float), m["outcomes"]
        )
        for m in data["motions"]
    ]
    return CDPhase(FunctionMode(data["mode"]), motions, data.get("label", ""))


def trace_to_dict(trace: QueryTrace) -> dict:
    result = trace.result
    return {
        "benchmark_index": trace.benchmark_index,
        "result": {
            "success": result.success,
            "nn_inferences": result.nn_inferences,
            "encoder_inferences": result.encoder_inferences,
            "fallback_used": result.fallback_used,
            "replans": result.replans,
            "path": [np.asarray(q, dtype=float).tolist() for q in result.path],
        },
        "phases": [phase_to_dict(p) for p in trace.phases],
    }


def trace_from_dict(data: dict) -> QueryTrace:
    result_data = data["result"]
    result = PlanResult(
        success=result_data["success"],
        path=[np.asarray(q, dtype=float) for q in result_data.get("path", [])],
        nn_inferences=result_data["nn_inferences"],
        encoder_inferences=result_data["encoder_inferences"],
        fallback_used=result_data["fallback_used"],
        replans=result_data["replans"],
    )
    return QueryTrace(
        benchmark_index=data["benchmark_index"],
        result=result,
        phases=[phase_from_dict(p) for p in data["phases"]],
    )


def save_traces(path: str, traces: List[QueryTrace]) -> None:
    """Write traces to a JSON file (ground truth fully evaluated)."""
    payload = {
        "version": SCHEMA_VERSION,
        "traces": [trace_to_dict(t) for t in traces],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_traces(path: str) -> List[QueryTrace]:
    """Load traces written by :func:`save_traces`."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r}; expected {SCHEMA_VERSION}"
        )
    return [trace_from_dict(t) for t in payload["traces"]]


def save_phases(path: str, phases: List[CDPhase]) -> None:
    """Write a bare phase list (no planner metadata)."""
    payload = {
        "version": SCHEMA_VERSION,
        "phases": [phase_to_dict(p) for p in phases],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_phases(path: str) -> List[CDPhase]:
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r}; expected {SCHEMA_VERSION}"
        )
    return [phase_from_dict(p) for p in payload["phases"]]


# ----------------------------------------------------------------------
# SAS run serialization: a simulated result with its timeline and event
# trace, so a schedule can be saved, inspected offline, and re-audited by
# the invariant checker without re-running the simulator.


def dispatch_event_to_dict(event: DispatchEvent) -> dict:
    return {
        "dispatch_cycle": event.dispatch_cycle,
        "complete_cycle": event.complete_cycle,
        "motion_index": event.motion_index,
        "pose_index": event.pose_index,
        "hit": event.hit,
        "phase": event.phase,
    }


def dispatch_event_from_dict(data: dict) -> DispatchEvent:
    return DispatchEvent(
        dispatch_cycle=int(data["dispatch_cycle"]),
        complete_cycle=int(data["complete_cycle"]),
        motion_index=int(data["motion_index"]),
        pose_index=int(data["pose_index"]),
        hit=bool(data["hit"]),
        phase=int(data.get("phase", 0)),
    )


def trace_event_to_dict(event: TraceEvent) -> dict:
    return {
        "kind": event.kind,
        "cycle": event.cycle,
        "motion_index": event.motion_index,
        "pose_index": event.pose_index,
        "hit": event.hit,
        "phase": event.phase,
    }


def trace_event_from_dict(data: dict) -> TraceEvent:
    hit = data.get("hit")
    return TraceEvent(
        kind=data["kind"],
        cycle=int(data["cycle"]),
        motion_index=int(data.get("motion_index", -1)),
        pose_index=int(data.get("pose_index", -1)),
        hit=None if hit is None else bool(hit),
        phase=int(data.get("phase", 0)),
    )


def phase_stats_to_dict(stats: PhaseStats) -> dict:
    return {
        "index": stats.index,
        "label": stats.label,
        "mode": stats.mode,
        "cycle_offset": stats.cycle_offset,
        "cycles": stats.cycles,
        "tests": stats.tests,
        "energy_pj": stats.energy_pj,
        "busy_cycles": stats.busy_cycles,
        "abandoned_cycles": stats.abandoned_cycles,
        "stopped_early": stats.stopped_early,
        "n_motions": stats.n_motions,
    }


def phase_stats_from_dict(data: dict) -> PhaseStats:
    return PhaseStats(
        index=int(data["index"]),
        label=data["label"],
        mode=data["mode"],
        cycle_offset=int(data["cycle_offset"]),
        cycles=int(data["cycles"]),
        tests=int(data["tests"]),
        energy_pj=float(data["energy_pj"]),
        busy_cycles=int(data["busy_cycles"]),
        abandoned_cycles=int(data["abandoned_cycles"]),
        stopped_early=bool(data["stopped_early"]),
        n_motions=int(data["n_motions"]),
    )


def sas_result_to_dict(result: SASResult) -> dict:
    return {
        "cycles": result.cycles,
        "tests": result.tests,
        "energy_pj": result.energy_pj,
        "motion_outcomes": list(result.motion_outcomes),
        "stopped_early": result.stopped_early,
        "busy_cycles": result.busy_cycles,
        "n_cdus": result.n_cdus,
        "abandoned_cycles": result.abandoned_cycles,
        "phase_count": result.phase_count,
        "phase_breakdown": [phase_stats_to_dict(s) for s in result.phase_breakdown],
        "timeline": [dispatch_event_to_dict(e) for e in result.timeline],
        "events": [trace_event_to_dict(e) for e in result.events],
        "dropped_queries": result.dropped_queries,
        "stalled_queries": result.stalled_queries,
    }


def sas_result_from_dict(data: dict) -> SASResult:
    return SASResult(
        cycles=int(data["cycles"]),
        tests=int(data["tests"]),
        energy_pj=float(data["energy_pj"]),
        motion_outcomes=[
            None if o is None else bool(o) for o in data.get("motion_outcomes", [])
        ],
        stopped_early=bool(data.get("stopped_early", False)),
        busy_cycles=int(data.get("busy_cycles", 0)),
        n_cdus=int(data.get("n_cdus", 1)),
        timeline=[dispatch_event_from_dict(e) for e in data.get("timeline", [])],
        abandoned_cycles=int(data.get("abandoned_cycles", 0)),
        phase_count=int(data.get("phase_count", 1)),
        phase_breakdown=[
            phase_stats_from_dict(s) for s in data.get("phase_breakdown", [])
        ],
        events=[trace_event_from_dict(e) for e in data.get("events", [])],
        dropped_queries=int(data.get("dropped_queries", 0)),
        stalled_queries=int(data.get("stalled_queries", 0)),
    )


def save_sas_run(
    path: str, result: SASResult, phases: Optional[List[CDPhase]] = None
) -> None:
    """Write one SAS run (result + trace), optionally with its input phases.

    Including ``phases`` makes the file self-contained for replay: the
    invariant checker can re-audit the saved schedule against the saved
    ground truth (``repro.accel.invariants.check_sas_result``).
    """
    payload = {
        "version": SCHEMA_VERSION,
        "result": sas_result_to_dict(result),
    }
    if phases is not None:
        payload["phases"] = [phase_to_dict(p) for p in phases]
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_sas_run(path: str) -> tuple:
    """Load a saved SAS run; returns ``(result, phases_or_None)``."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r}; expected {SCHEMA_VERSION}"
        )
    result = sas_result_from_dict(payload["result"])
    phases = None
    if "phases" in payload:
        phases = [phase_from_dict(p) for p in payload["phases"]]
    return result, phases


# ----------------------------------------------------------------------
# Engine run serialization: the phase stream a planner issued through a
# query engine (labels, function modes, precomputed ground truth) together
# with the per-phase answers and — for SimulatedEngine runs — the inline
# SAS results.  A saved engine run can be re-audited offline: replay the
# phases through any engine and compare answers, or hand each
# (phase, sas_result) pair to ``repro.accel.invariants.check_sas_result``.


@dataclass
class EngineRun:
    """One planner run as seen by its query engine, loaded from disk."""

    engine: str
    phases: List[CDPhase]
    answers: List["PhaseAnswer"]
    sas_results: List[SASResult] = field(default_factory=list)


def save_engine_run(
    path: str,
    recorder,
    sas_results: Optional[List[SASResult]] = None,
) -> None:
    """Write a recorder's phase trace plus the engine's answers.

    ``recorder`` is a :class:`repro.planning.recorder.CDTraceRecorder`
    whose ``phases``/``answers`` lists are serialized in lockstep.  When
    ``sas_results`` is omitted and the recorder's engine is a
    :class:`~repro.planning.engine.SimulatedEngine`, its accumulated
    per-phase results are included automatically, making the file
    self-contained for offline invariant re-audit.
    """
    if sas_results is None:
        sas_results = list(getattr(recorder.engine, "results", []))
    payload = {
        "version": SCHEMA_VERSION,
        "engine": recorder.engine.name,
        "phases": [phase_to_dict(p) for p in recorder.phases],
        "answers": [list(a.outcomes) for a in recorder.answers],
        "sas_results": [sas_result_to_dict(r) for r in sas_results],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_engine_run(path: str) -> EngineRun:
    """Load an engine run written by :func:`save_engine_run`."""
    from repro.planning.engine import PhaseAnswer

    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r}; expected {SCHEMA_VERSION}"
        )
    engine = payload.get("engine", "sequential")
    phases = [phase_from_dict(p) for p in payload["phases"]]
    answers = [
        PhaseAnswer(
            outcomes=[None if o is None else bool(o) for o in outcomes],
            engine=engine,
        )
        for outcomes in payload.get("answers", [])
    ]
    if len(answers) != len(phases):
        raise ValueError(
            f"engine run has {len(phases)} phases but {len(answers)} answers"
        )
    sas_results = [
        sas_result_from_dict(r) for r in payload.get("sas_results", [])
    ]
    return EngineRun(
        engine=engine, phases=phases, answers=answers, sas_results=sas_results
    )


# ----------------------------------------------------------------------
# Fault schedule serialization: the (models, seed) generator key of a
# chaos run plus the log of faults that actually fired.  Because the
# injector is deterministic, a loaded schedule rebuilds an identical
# injector (``FaultSchedule.build_injector``), and the saved event log
# lets a replay be diffed against the original run.


def fault_event_to_dict(event: FaultEvent) -> dict:
    return {
        "site": event.site,
        "kind": event.kind,
        "index": event.index,
        "detail": list(event.detail),
    }


def fault_event_from_dict(data: dict) -> FaultEvent:
    return FaultEvent(
        site=data["site"],
        kind=data["kind"],
        index=int(data["index"]),
        detail=tuple(data.get("detail", [])),
    )


def fault_schedule_to_dict(schedule: FaultSchedule) -> dict:
    return {
        "models": schedule.models.to_dict(),
        "seed": schedule.seed,
        "events": [fault_event_to_dict(e) for e in schedule.events],
    }


def fault_schedule_from_dict(data: dict) -> FaultSchedule:
    return FaultSchedule(
        models=FaultModels.from_dict(data["models"]),
        seed=int(data["seed"]),
        events=[fault_event_from_dict(e) for e in data.get("events", [])],
    )


def save_fault_schedule(path: str, schedule: FaultSchedule) -> None:
    """Write a fault schedule (generator key + fired-event log) as JSON."""
    payload = {
        "version": SCHEMA_VERSION,
        "fault_schedule": fault_schedule_to_dict(schedule),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_fault_schedule(path: str) -> FaultSchedule:
    """Load a schedule written by :func:`save_fault_schedule`."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r}; expected {SCHEMA_VERSION}"
        )
    return fault_schedule_from_dict(payload["fault_schedule"])


# ----------------------------------------------------------------------
# Config serialization: typed configuration bundles (repro.config) as
# versioned JSON.  The payload names its config class, so any of the
# bundle's dataclasses round-trips through the same two functions, and a
# stale or hand-edited file fails loudly: unknown keys are rejected by
# name (listing the valid ones) and enum-like fields are re-validated by
# the dataclass' own __post_init__ (listing the valid choices).


def save_config(path: str, config) -> None:
    """Write any :mod:`repro.config` dataclass as versioned JSON."""
    from repro.config import CONFIG_CLASSES

    name = type(config).__name__
    if name not in CONFIG_CLASSES:
        raise TypeError(
            f"cannot serialize {name}; expected one of {sorted(CONFIG_CLASSES)}"
        )
    payload = {
        "version": SCHEMA_VERSION,
        "config_class": name,
        "config": config.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_config(path: str):
    """Load a config written by :func:`save_config` (re-validated fully)."""
    from repro.config import CONFIG_CLASSES, config_from_dict

    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported config schema version {version!r}; expected {SCHEMA_VERSION}"
        )
    name = payload.get("config_class")
    cls = CONFIG_CLASSES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown config class {name!r}; expected one of {sorted(CONFIG_CLASSES)}"
        )
    return config_from_dict(cls, payload["config"])


# ----------------------------------------------------------------------
# Scenario serialization: frozen benchmark instances (repro.scenarios) as
# versioned JSON.  A scenario file holds only the spec — (name, family,
# seed, params) — because the instance is a pure function of it:
# ``build_scenario(load_scenario(path))`` regenerates the scene, octree,
# robot placement, and query set bit-identically.  Loading re-validates
# everything through ``ScenarioSpec.from_dict`` (unknown keys, unknown
# families/params, out-of-band values all rejected by name).


def save_scenario(path: str, spec) -> None:
    """Write a :class:`repro.scenarios.ScenarioSpec` as versioned JSON."""
    from repro.scenarios.dsl import ScenarioSpec

    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"save_scenario expects a ScenarioSpec, got {type(spec).__name__}"
        )
    payload = {
        "version": SCHEMA_VERSION,
        "scenario": spec.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_scenario(path: str):
    """Load a spec written by :func:`save_scenario` (re-validated fully)."""
    from repro.scenarios.dsl import ScenarioSpec

    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported scenario file version {version!r}; expected {SCHEMA_VERSION}"
        )
    if "scenario" not in payload:
        raise ValueError("scenario file missing required key 'scenario'")
    return ScenarioSpec.from_dict(payload["scenario"])


# ----------------------------------------------------------------------
# Telemetry export: registry snapshots as JSON artifacts (the perf CI job
# uploads these).


def save_telemetry(path: str, registry: MetricsRegistry) -> None:
    payload = {"version": SCHEMA_VERSION, "telemetry": registry.to_dict()}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_telemetry(path: str) -> MetricsRegistry:
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r}; expected {SCHEMA_VERSION}"
        )
    return MetricsRegistry.from_dict(payload["telemetry"])


# ----------------------------------------------------------------------
# Traffic traces: seeded arrival schedules for overload serving
# experiments (repro.serving.traffic), saved like fault schedules — the
# file carries the generating spec *and* the expanded events, and loading
# re-validates that the events match the spec's regeneration so a
# hand-edited trace cannot silently drift from its seed.


def save_traffic_trace(path: str, trace) -> None:
    from repro.serving.traffic import TrafficTrace

    if not isinstance(trace, TrafficTrace):
        raise TypeError(
            f"save_traffic_trace expects a TrafficTrace, got "
            f"{type(trace).__name__}"
        )
    payload = {
        "version": SCHEMA_VERSION,
        "traffic": {
            "spec": trace.spec.to_dict(),
            "events": [event.to_dict() for event in trace.events],
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_traffic_trace(path: str):
    from repro.serving.traffic import TrafficEvent, TrafficSpec, TrafficTrace

    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported traffic trace version {version!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    if "traffic" not in payload:
        raise ValueError("traffic trace file missing required key 'traffic'")
    data = payload["traffic"]
    spec = TrafficSpec.from_dict(data["spec"])
    events = tuple(TrafficEvent.from_dict(event) for event in data["events"])
    trace = TrafficTrace(spec=spec, events=events)
    if trace != spec.generate():
        raise ValueError(
            "traffic trace events do not match the spec's regeneration "
            "(tampered or truncated file)"
        )
    return trace


# ----------------------------------------------------------------------
# Report serialization: the common report protocol.  ServiceReport,
# RuntimeReport, and FleetReport all serialize through schema-versioned
# to_dict/from_dict (repro.harness.reports); these are the file-level
# entry points.  The envelope names the report kind, so one loader reads
# all three, and everything is strict: unknown envelope keys, unknown
# kinds, and unknown report keys are rejected by name.


def _report_registry() -> dict:
    # Lazy: the report classes live above the harness in the layering
    # (serving/accel import nothing from harness at module scope, and the
    # harness only touches them when a report file is actually handled).
    from repro.accel.runtime import RuntimeReport
    from repro.serving.fleet import FleetReport
    from repro.serving.service import ServiceReport

    return {
        "service_report": ServiceReport,
        "runtime_report": RuntimeReport,
        "fleet_report": FleetReport,
    }


def save_report(path: str, report) -> None:
    """Write a Service/Runtime/Fleet report as versioned JSON."""
    registry = _report_registry()
    kind = next(
        (k for k, cls in registry.items() if type(report) is cls), None
    )
    if kind is None:
        expected = sorted(cls.__name__ for cls in registry.values())
        raise TypeError(
            f"cannot serialize {type(report).__name__} as a report; "
            f"expected one of {expected}"
        )
    payload = {
        "version": SCHEMA_VERSION,
        "kind": kind,
        "report": report.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_report(path: str):
    """Load a report written by :func:`save_report` (strictly validated)."""
    with open(path) as handle:
        payload = json.load(handle)
    unknown = sorted(set(payload) - {"version", "kind", "report"})
    if unknown:
        raise ValueError(
            f"unknown keys in report envelope: {', '.join(unknown)}"
        )
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported report file version {version!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    registry = _report_registry()
    kind = payload.get("kind")
    cls = registry.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown report kind {kind!r}; expected one of "
            f"{sorted(registry)}"
        )
    if "report" not in payload:
        raise ValueError("report file missing required key 'report'")
    return cls.from_dict(payload["report"])
