"""Trace serialization: the artifact-style workflow.

The paper's artifact ships pre-generated trace files (motions, per-pose
collision outcomes, phase boundaries) that drive the SAS/MPAccel simulators
without re-running the planner or the collision substrate.  This module
provides the same workflow: record planner traces once, save them as JSON,
and replay them through any simulator configuration later.

JSON schema (version 1):

```
{
  "version": 1,
  "traces": [
    {
      "benchmark_index": 0,
      "result": {"success": true, "nn_inferences": 12, ...},
      "phases": [
        {
          "mode": "feasibility",
          "label": "steer",
          "motions": [
            {"poses": [[...], ...], "outcomes": [false, ...]}
          ]
        }
      ]
    }
  ]
}
```
"""

from __future__ import annotations

import json
from typing import List, Optional

import numpy as np

from repro.harness.traces import QueryTrace
from repro.planning.motion import CDPhase, FunctionMode, MotionRecord
from repro.planning.mpnet import PlanResult

SCHEMA_VERSION = 1


def phase_to_dict(phase: CDPhase) -> dict:
    """Serialize one phase, forcing ground truth for every pose."""
    return {
        "mode": phase.mode.value,
        "label": phase.label,
        "motions": [
            {
                "poses": motion.poses.tolist(),
                "outcomes": motion.evaluate_all(),
            }
            for motion in phase.motions
        ],
    }


def phase_from_dict(data: dict) -> CDPhase:
    motions = [
        MotionRecord.from_precomputed(
            np.asarray(m["poses"], dtype=float), m["outcomes"]
        )
        for m in data["motions"]
    ]
    return CDPhase(FunctionMode(data["mode"]), motions, data.get("label", ""))


def trace_to_dict(trace: QueryTrace) -> dict:
    result = trace.result
    return {
        "benchmark_index": trace.benchmark_index,
        "result": {
            "success": result.success,
            "nn_inferences": result.nn_inferences,
            "encoder_inferences": result.encoder_inferences,
            "fallback_used": result.fallback_used,
            "replans": result.replans,
            "path": [np.asarray(q, dtype=float).tolist() for q in result.path],
        },
        "phases": [phase_to_dict(p) for p in trace.phases],
    }


def trace_from_dict(data: dict) -> QueryTrace:
    result_data = data["result"]
    result = PlanResult(
        success=result_data["success"],
        path=[np.asarray(q, dtype=float) for q in result_data.get("path", [])],
        nn_inferences=result_data["nn_inferences"],
        encoder_inferences=result_data["encoder_inferences"],
        fallback_used=result_data["fallback_used"],
        replans=result_data["replans"],
    )
    return QueryTrace(
        benchmark_index=data["benchmark_index"],
        result=result,
        phases=[phase_from_dict(p) for p in data["phases"]],
    )


def save_traces(path: str, traces: List[QueryTrace]) -> None:
    """Write traces to a JSON file (ground truth fully evaluated)."""
    payload = {
        "version": SCHEMA_VERSION,
        "traces": [trace_to_dict(t) for t in traces],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_traces(path: str) -> List[QueryTrace]:
    """Load traces written by :func:`save_traces`."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r}; expected {SCHEMA_VERSION}"
        )
    return [trace_from_dict(t) for t in payload["traces"]]


def save_phases(path: str, phases: List[CDPhase]) -> None:
    """Write a bare phase list (no planner metadata)."""
    payload = {
        "version": SCHEMA_VERSION,
        "phases": [phase_to_dict(p) for p in phases],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_phases(path: str) -> List[CDPhase]:
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r}; expected {SCHEMA_VERSION}"
        )
    return [phase_from_dict(p) for p in payload["phases"]]
