"""Scheduler experiments: Figures 1b, 7, 15, and 16.

These measure the coarse-grained parallelism story: how scheduling policy,
CDU count, and inter-motion group size trade speedup against redundant
collision detection work.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.accel.cecdu import CECDUModel
from repro.accel.config import CECDUConfig, SASConfig
from repro.accel.limit import limit_study
from repro.accel.sas import SASSimulator
from repro.harness.experiments.context import Experiment, ExperimentContext
from repro.harness.traces import QueryTrace
from repro.planning.motion import CDPhase


def _group_traces_by_benchmark(traces: Sequence[QueryTrace]) -> Dict[int, List[CDPhase]]:
    grouped: Dict[int, List[CDPhase]] = {}
    for trace in traces:
        grouped.setdefault(trace.benchmark_index, []).extend(trace.phases)
    return grouped


def _run_policy_with_cecdu(
    ctx: ExperimentContext,
    policy: str,
    n_cdus: int,
    group_size: int = 16,
    step_size: int = 8,
    multi_motion_only: bool = False,
) -> Dict[str, float]:
    """Total cycles/tests/energy for one scheduler config over the Baxter
    suite, using the CECDU latency model (per-benchmark octrees).

    ``multi_motion_only`` restricts the workload to phases with more than
    one motion — the population where inter-motion parallelism can act at
    all (used by the Figure 16 group-size sweep).
    """
    grouped = _group_traces_by_benchmark(ctx.baxter_traces())
    if multi_motion_only:
        grouped = {
            index: [p for p in phases if len(p.motions) > 1]
            for index, phases in grouped.items()
        }
        grouped = {index: phases for index, phases in grouped.items() if phases}
    benchmarks = {b.index: b for b in ctx.baxter_benchmarks()}
    totals = {"cycles": 0.0, "tests": 0.0, "energy_pj": 0.0}
    for index, phases in grouped.items():
        benchmark = benchmarks[index]
        cecdu = _cecdu_for(ctx, benchmark)
        sim = SASSimulator(
            n_cdus=n_cdus,
            policy=policy,
            config=SASConfig(
                policy=policy, step_size=step_size, group_size=group_size
            ),
            latency_model=cecdu.sas_latency_model(),
        )
        result = sim.run_phases(phases)
        totals["cycles"] += result.cycles
        totals["tests"] += result.tests
        totals["energy_pj"] += result.energy_pj
    return totals


def _cecdu_for(ctx: ExperimentContext, benchmark) -> CECDUModel:
    key = f"cecdu_model_{benchmark.index}"
    if key not in ctx._cache:
        ctx._cache[key] = CECDUModel(
            benchmark.robot, benchmark.octree, CECDUConfig(n_oocds=4)
        )
    return ctx._cache[key]


def run_fig1b(ctx: ExperimentContext) -> Experiment:
    """Figure 1b: sequential vs naive parallel (small/large) vs MPAccel."""
    sequential = _run_policy_with_cecdu(ctx, "seq", 1)
    modes = [
        ("sequential", "seq", 1),
        ("parallel_small_np8", "np", 8),
        ("parallel_large_np64", "np", 64),
        ("mpaccel_mcsp16", "mcsp", 16),
    ]
    rows = []
    for label, policy, n_cdus in modes:
        totals = _run_policy_with_cecdu(ctx, policy, n_cdus)
        rows.append(
            {
                "mode": label,
                "speedup": sequential["cycles"] / max(1.0, totals["cycles"]),
                "computation": totals["tests"] / max(1.0, sequential["tests"]),
                "energy": totals["energy_pj"] / max(1.0, sequential["energy_pj"]),
            }
        )
    return Experiment(
        id="fig1b",
        title="Speedup vs computation for execution modes on ASIC hardware",
        paper_reference=(
            "Naive parallel: ~50x speedup with 3.4x computation vs sequential; "
            "MPAccel keeps computation near 1x while retaining the speedup"
        ),
        rows=rows,
        notes="Computation = collision detection tests normalized to sequential.",
    )


def run_fig7(ctx: ExperimentContext) -> Experiment:
    """Figure 7: the limit study (1-cycle CDU, zero-latency scheduler)."""
    phases: List[CDPhase] = []
    for trace in ctx.baxter_traces():
        phases.extend(trace.phases)
    points = limit_study(phases, cdu_counts=ctx.scale.cdu_counts)
    rows = [
        {
            "policy": p.policy,
            "n_cdus": p.n_cdus,
            "speedup": p.speedup,
            "normalized_tests": p.normalized_tests,
        }
        for p in points
    ]
    from repro.harness.charts import series_chart

    # Distinct first characters so the chart glyphs stay readable.
    chart_labels = {"Naive (np)": "np", "Coarse (csp)": "csp", "Single-motion (ms)": "ms", "MCSP": "mcsp"}
    chart = series_chart(
        {
            label: [
                (p.n_cdus, p.speedup) for p in points if p.policy == policy
            ]
            for label, policy in chart_labels.items()
        },
        width=56,
        height=14,
    )
    return Experiment(
        id="fig7",
        title="Limit study: scheduling policies vs CDU count",
        chart=chart,
        paper_reference=(
            "MCSP reaches ~13.5x speedup at 16 CDUs with ~10.5% extra tests; "
            "NP's tests grow ~2.4x at 16x parallelism; MS saturates early; "
            "CSP beats in-order sequential even at 1 CDU"
        ),
        rows=rows,
    )


def run_fig15(ctx: ExperimentContext) -> Experiment:
    """Figure 15: schedulers with real CECDU latencies (MCSP/NP/CSP/MP)."""
    sequential = _run_policy_with_cecdu(ctx, "seq", 1)
    rows = []
    for policy, label in (("mcsp", "MCSP"), ("np", "NP"), ("csp", "CSP"), ("ms", "MP")):
        for n_cdus in (1, 2, 4, 8, 16, 32):
            totals = _run_policy_with_cecdu(ctx, policy, n_cdus)
            rows.append(
                {
                    "policy": label,
                    "n_cdus": n_cdus,
                    "speedup": sequential["cycles"] / max(1.0, totals["cycles"]),
                    "normalized_energy": totals["tests"]
                    / max(1.0, sequential["tests"]),
                }
            )
    return Experiment(
        id="fig15",
        title="Scheduler comparison with CECDU latency model",
        paper_reference=(
            "8 CDUs: MCSP 7x speedup / +6% energy vs NP 3.7x / +83%; "
            "16 CDUs: MCSP 11.03x / +22% vs NP 6.2x / +113%; "
            "speedup saturates as CDU count approaches 32"
        ),
        rows=rows,
        notes="Energy proxied by collision detection test count (Section 7.1).",
    )


def run_fig16(ctx: ExperimentContext) -> Experiment:
    """Figure 16: group size sweep for inter-motion parallelism (8 CDUs)."""
    baseline = None
    rows = []
    for group_size in ctx.scale.group_sizes:
        totals = _run_policy_with_cecdu(
            ctx, "mcsp", 8, group_size=group_size, multi_motion_only=True
        )
        if baseline is None:
            baseline = totals
        rows.append(
            {
                "group_size": group_size,
                "normalized_runtime": totals["cycles"] / max(1.0, baseline["cycles"]),
                "normalized_energy": totals["tests"] / max(1.0, baseline["tests"]),
            }
        )
    return Experiment(
        id="fig16",
        title="Effect of inter-motion group size on runtime and energy (MCSP, 8 CDUs)",
        paper_reference=(
            "Runtime and energy both improve up to group size ~16 and degrade "
            "beyond it (connectivity-mode motions that could be discarded get "
            "scheduled)"
        ),
        rows=rows,
        notes=(
            "Normalized to group size 1, over multi-motion phases only. "
            "Deviation: our planner traces carry fewer motions per phase "
            "than the paper's full-scale MPNet runs, so the group-size "
            "benefit is weaker here; the saturation beyond ~16 and the "
            "over-grouping energy penalty reproduce."
        ),
    )
