"""EXPERIMENTS.md generation from the experiment registry."""

from __future__ import annotations

import time
from typing import Dict, Iterable, List

from repro.harness.experiments import REGISTRY
from repro.harness.experiments.context import Experiment, ExperimentContext, SCALES
from repro.harness.tables import format_table

_HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction record for every table and figure in the evaluation of
*Energy-Efficient Realtime Motion Planning* (ISCA 2023).  Regenerate with:

```
python -m repro.harness.experiments --all [--scale quick|paper] [--out EXPERIMENTS.md]
```

Absolute cycle counts come from a behavioral Python simulator calibrated to
the paper's published synthesis constants; the claims to check are the
*shapes* — who wins, by what factor, where the crossovers fall.  Scale:
`{scale}` ({detail}).
"""


def run_experiments(
    names: Iterable[str], ctx: ExperimentContext
) -> List[Experiment]:
    results = []
    for name in names:
        if name not in REGISTRY:
            raise KeyError(f"unknown experiment {name!r}; known: {sorted(REGISTRY)}")
        results.append(REGISTRY[name](ctx))
    return results


def render_report(experiments: List[Experiment], ctx: ExperimentContext) -> str:
    detail = (
        f"{ctx.scale.n_envs} environments x {ctx.scale.queries_per_env} queries, "
        f"{ctx.scale.random_poses} random poses"
    )
    parts = [_HEADER.format(scale=ctx.scale.name, detail=detail)]
    for experiment in experiments:
        parts.append(f"\n## {experiment.id}: {experiment.title}\n")
        parts.append(f"**Paper:** {experiment.paper_reference}\n")
        parts.append("**Measured:**\n")
        parts.append(format_table(experiment.rows, experiment.columns))
        parts.append("")
        if experiment.chart:
            parts.append("```")
            parts.append(experiment.chart)
            parts.append("```")
            parts.append("")
        if experiment.notes:
            parts.append(f"*Notes:* {experiment.notes}\n")
    parts.append(f"\n---\nGenerated in {time.strftime('%Y-%m-%d %H:%M:%S')}.\n")
    return "\n".join(parts)


def main(argv: List[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.experiments",
        description="Run the paper-reproduction experiments.",
    )
    parser.add_argument("names", nargs="*", help="experiment ids (e.g. fig7 table1)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--out", default=None, help="write the report to this file")
    parser.add_argument("--seed", type=int, default=2023)
    args = parser.parse_args(argv)

    names = list(REGISTRY) if args.all else args.names
    if not names:
        parser.error("give experiment names or --all")
    ctx = ExperimentContext(scale=SCALES[args.scale], seed=args.seed)
    experiments = run_experiments(names, ctx)
    report = render_report(experiments, ctx)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0
