"""Shared experiment state: benchmark suites and planner traces.

Workloads are expensive to build (planner runs, collision ground truth),
so a context builds each one lazily and caches it; every experiment that
needs "the MPNet traces on the Baxter suite" shares the same object.

Two scales are provided: ``quick`` (default; minutes of wall clock for the
whole figure set) and ``paper`` (the full Section 6 sizes — ten
environments with 100 queries each; expect hours, as the artifact's own
README does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.traces import QueryTrace, generate_mpnet_traces
from repro.harness.workloads import Benchmark, build_benchmarks
from repro.robot.presets import baxter_arm, jaco2


@dataclass(frozen=True)
class ExperimentScale:
    """Workload sizing knobs."""

    name: str
    n_envs: int
    queries_per_env: int
    random_poses: int  # population for cascade/CECDU studies
    cdu_counts: tuple
    group_sizes: tuple


QUICK = ExperimentScale(
    name="quick",
    n_envs=3,
    queries_per_env=3,
    random_poses=400,
    cdu_counts=(1, 2, 4, 8, 16, 32, 64),
    group_sizes=(1, 2, 4, 8, 16, 32, 64),
)

PAPER = ExperimentScale(
    name="paper",
    n_envs=10,
    queries_per_env=100,
    random_poses=4000,
    cdu_counts=(1, 2, 4, 8, 16, 32, 64),
    group_sizes=(1, 2, 4, 8, 16, 32, 64),
)

SCALES = {"quick": QUICK, "paper": PAPER}


@dataclass
class Experiment:
    """A reproduced table/figure: rows plus provenance."""

    id: str
    title: str
    paper_reference: str  # the claim/number the paper reports
    rows: List[Dict]
    notes: str = ""
    columns: Optional[List[str]] = None
    chart: str = ""  # optional ASCII chart rendered under the table


class ExperimentContext:
    """Lazy, cached workload provider shared by the experiment runners."""

    def __init__(self, scale: ExperimentScale = QUICK, seed: int = 2023):
        self.scale = scale
        self.seed = seed
        self._cache: Dict[str, object] = {}

    def _get(self, key: str, builder):
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    # ------------------------------------------------------------------

    def jaco2_benchmarks(self) -> List[Benchmark]:
        """Jaco2 suite used by the CECDU/cascade studies (Figures 8/17/18)."""
        return self._get(
            "jaco2_benchmarks",
            lambda: build_benchmarks(
                jaco2,
                n_envs=self.scale.n_envs,
                queries_per_env=1,  # cascade studies use random poses, not queries
                seed=self.seed,
            ),
        )

    def baxter_benchmarks(self) -> List[Benchmark]:
        """Baxter suite driving the scheduler and end-to-end studies."""
        return self._get(
            "baxter_benchmarks",
            lambda: build_benchmarks(
                baxter_arm,
                n_envs=self.scale.n_envs,
                queries_per_env=self.scale.queries_per_env,
                seed=self.seed + 1,
            ),
        )

    def baxter_traces(self) -> List[QueryTrace]:
        """MPNet planner traces over the Baxter suite."""
        return self._get(
            "baxter_traces",
            lambda: generate_mpnet_traces(self.baxter_benchmarks(), seed=self.seed + 2),
        )

    def jaco2_traces(self) -> List[QueryTrace]:
        """A small Jaco2 trace set (scheduler studies on the 6-DOF robot)."""

        def build():
            benchmarks = build_benchmarks(
                jaco2,
                n_envs=self.scale.n_envs,
                queries_per_env=self.scale.queries_per_env,
                seed=self.seed + 3,
            )
            self._cache["jaco2_trace_benchmarks"] = benchmarks
            return generate_mpnet_traces(benchmarks, seed=self.seed + 4)

        return self._get("jaco2_traces", build)

    def jaco2_trace_benchmarks(self) -> List[Benchmark]:
        self.jaco2_traces()  # ensure built
        return self._cache["jaco2_trace_benchmarks"]  # type: ignore[return-value]
