"""System-level experiments: Figures 19/20 and Tables 2/3.

End-to-end motion planning latency on MPAccel configurations and the
CPU/GPU baseline comparison.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.accel.cecdu import CECDUModel
from repro.accel.config import CECDUConfig, IntersectionUnitKind, MPAccelConfig
from repro.accel.energy import HardwareBlockLibrary
from repro.accel.mpaccel import MPAccelSimulator
from repro.baselines.cpu import CPUModel, collect_query_work
from repro.baselines.device import CPU_DEVICES, GPU_DEVICES
from repro.baselines.gpu import GPUModel
from repro.baselines.system import BaselineSystemModel
from repro.env.octree import Octree
from repro.harness.experiments.context import Experiment, ExperimentContext
from repro.harness.workloads import random_link_obbs
from repro.neural.mpnet_nets import ORIGINAL_ENET_MACS, ORIGINAL_PNET_MACS
from repro.robot.presets import jaco2


def _query_times_ms(ctx: ExperimentContext, config: MPAccelConfig) -> Dict[int, List[float]]:
    """Per-benchmark lists of end-to-end query latencies on ``config``."""
    benchmarks = {b.index: b for b in ctx.baxter_benchmarks()}
    per_env: Dict[int, List[float]] = {}
    simulators: Dict[int, MPAccelSimulator] = {}
    for trace in ctx.baxter_traces():
        index = trace.benchmark_index
        if index not in simulators:
            benchmark = benchmarks[index]
            cecdu = CECDUModel(benchmark.robot, benchmark.octree, config.cecdu)
            simulators[index] = MPAccelSimulator(
                config,
                cecdu,
                sampler_pnet_macs=ORIGINAL_PNET_MACS,
                sampler_enet_macs=ORIGINAL_ENET_MACS,
            )
        timing = simulators[index].run_query(trace.result, trace.phases)
        per_env.setdefault(index, []).append(timing.total_ms)
    return per_env


def run_fig19(ctx: ExperimentContext) -> Experiment:
    """Figure 19: motion planning latency per benchmark environment."""
    config = MPAccelConfig(n_cecdus=16, cecdu=CECDUConfig(n_oocds=4))
    per_env = _query_times_ms(ctx, config)
    rows = []
    all_times: List[float] = []
    for index in sorted(per_env):
        times = per_env[index]
        all_times.extend(times)
        rows.append(
            {
                "benchmark": f"bench_{index}",
                "min_ms": min(times),
                "mean_ms": float(np.mean(times)),
                "max_ms": max(times),
            }
        )
    rows.append(
        {
            "benchmark": "overall",
            "min_ms": min(all_times),
            "mean_ms": float(np.mean(all_times)),
            "max_ms": max(all_times),
        }
    )
    return Experiment(
        id="fig19",
        title="MPNet motion planning runtime on MPAccel (Baxter, 16 CECDUs x 4 mc OOCDs)",
        paper_reference="0.014 ms - 0.49 ms per query, 0.099 ms average (< 1 ms real-time)",
        rows=rows,
    )


def run_fig20(ctx: ExperimentContext) -> Experiment:
    """Figure 20: latency and queries/(s*W*mm^2) across MPAccel configs."""
    rows = []
    for n_cecdus in (8, 16):
        for n_oocds in (4, 1):
            for kind in IntersectionUnitKind:
                config = MPAccelConfig(
                    n_cecdus=n_cecdus,
                    cecdu=CECDUConfig(n_oocds=n_oocds, iu_kind=kind),
                )
                per_env = _query_times_ms(ctx, config)
                times = [t for env_times in per_env.values() for t in env_times]
                mean_s = float(np.mean(times)) / 1e3
                spec = HardwareBlockLibrary.mpaccel(config)
                performance = (1.0 / mean_s) / (
                    (spec.power_mw / 1e3) * spec.area_mm2
                )
                rows.append(
                    {
                        "config": config.label(),
                        "mean_ms": float(np.mean(times)),
                        "p95_ms": float(np.percentile(times, 95)),
                        "max_ms": max(times),
                        "queries_per_s_w_mm2": performance,
                    }
                )
    return Experiment(
        id="fig20",
        title="Motion planning latency and area-power efficiency per MPAccel config",
        paper_reference=(
            "More CECDUs/OOCDs cut latency; smaller configs win on "
            "queries/(s*W*mm^2) density"
        ),
        rows=rows,
    )


def run_table2(ctx: ExperimentContext) -> Experiment:
    """Table 2: area and power breakdown of the hardware blocks."""
    lib = HardwareBlockLibrary
    rows = [
        {"module": "Scheduler", "area_mm2": lib.SCHEDULER.area_mm2, "power_mw": lib.SCHEDULER.power_mw},
        {
            "module": "OBB Transformation Unit",
            "area_mm2": lib.OBB_TRANSFORM_UNIT.area_mm2,
            "power_mw": lib.OBB_TRANSFORM_UNIT.power_mw,
        },
        {
            "module": "Octree Traversal Unit",
            "area_mm2": lib.OCTREE_TRAVERSAL_UNIT.area_mm2,
            "power_mw": lib.OCTREE_TRAVERSAL_UNIT.power_mw,
        },
        {
            "module": "Intersection Unit (multi-cycle)",
            "area_mm2": lib.INTERSECTION_UNIT_MC.area_mm2,
            "power_mw": lib.INTERSECTION_UNIT_MC.power_mw,
        },
        {
            "module": "Intersection Unit (pipelined)",
            "area_mm2": lib.INTERSECTION_UNIT_P.area_mm2,
            "power_mw": lib.INTERSECTION_UNIT_P.power_mw,
        },
    ]
    cecdu_mc = lib.cecdu(CECDUConfig(n_oocds=4, iu_kind=IntersectionUnitKind.MULTI_CYCLE))
    rows.append(
        {
            "module": "CECDU (4 multi-cycle OOCDs)",
            "area_mm2": cecdu_mc.area_mm2,
            "power_mw": cecdu_mc.power_mw,
        }
    )
    for kind, label in (
        (IntersectionUnitKind.MULTI_CYCLE, "MPAccel config 1 (16 CECDUs, 4 mc OOCDs)"),
        (IntersectionUnitKind.PIPELINED, "MPAccel config 2 (16 CECDUs, 4 p OOCDs)"),
    ):
        config = MPAccelConfig(n_cecdus=16, cecdu=CECDUConfig(n_oocds=4, iu_kind=kind))
        spec = lib.mpaccel(config)
        rows.append({"module": label, "area_mm2": spec.area_mm2, "power_mw": spec.power_mw})
    return Experiment(
        id="table2",
        title="Area and power breakdown (45 nm)",
        paper_reference=(
            "CECDU(4 mc) 0.694 mm2 / 215.7 mW; MPAccel config 1: 11.21 mm2 / "
            "3.51 W; config 2: 18.12 mm2 / 4.03 W"
        ),
        rows=rows,
        notes=(
            "Block values are the paper's synthesis numbers (our calibration "
            "inputs); composed totals deviate < ~10% from the paper's "
            "synthesized top-level area."
        ),
    )


def run_table3(ctx: ExperimentContext) -> Experiment:
    """Table 3: CD throughput and motion planning runtime on CPUs/GPUs."""
    # --- Collision detection rows: 2^20 OBB-octree queries -------------
    from repro.env.generator import random_scene

    scene = random_scene(seed=ctx.seed)
    octree = Octree.from_scene(scene, resolution=32)
    robot = jaco2()
    n_model_queries = max(2048, ctx.scale.random_poses * 7)
    obbs = random_link_obbs(robot, n_model_queries // 7, seed=ctx.seed)
    work = collect_query_work(obbs, octree)
    positions = np.array([obb.center for obb in obbs])
    n_leaves = len(octree.occupied_leaves())
    scale = 2**20 / len(work)

    rows = []
    for key, device in GPU_DEVICES.items():
        model = GPUModel(device)
        rows.append(
            {
                "device": device.name,
                "obb_octree_ms": model.traversal_time_s(work) * scale * 1e3,
                "optimized_ms": model.traversal_time_s(
                    work, positions=positions, locality_sort=True, memory_interleaving=True
                )
                * scale
                * 1e3,
                "leaf_nodes_ms": model.leaf_time_s(2**20, n_leaves) * 1e3,
                "power_w": device.power_w,
            }
        )
    for key, device in CPU_DEVICES.items():
        model = CPUModel(device)
        rows.append(
            {
                "device": device.name,
                "obb_octree_ms": model.traversal_time_s(work) * scale * 1e3,
                "optimized_ms": float("nan"),
                "leaf_nodes_ms": model.leaf_time_s(2**20, n_leaves) * 1e3,
                "power_w": device.power_w,
            }
        )

    # MPAccel rows: 2^20 OBB-octree queries over the CECDU pool.
    for kind, label in (
        (IntersectionUnitKind.MULTI_CYCLE, "MPAccel 16x4 multi-cycle"),
        (IntersectionUnitKind.PIPELINED, "MPAccel 16x4 pipelined"),
    ):
        config = MPAccelConfig(n_cecdus=16, cecdu=CECDUConfig(n_oocds=4, iu_kind=kind))
        cecdu = CECDUModel(robot, octree, config.cecdu)
        rng = np.random.default_rng(ctx.seed)
        sample = [
            cecdu.simulate_pose(robot.random_configuration(rng)).cycles
            for _ in range(200)
        ]
        n_poses = 2**20 / len(robot.links)
        cycles = (n_poses / config.n_cecdus) * float(np.mean(sample))
        time_ms = cycles * config.cecdu.clock_period_ns * 1e-6
        spec = HardwareBlockLibrary.mpaccel(config)
        rows.append(
            {
                "device": label,
                "obb_octree_ms": time_ms,
                "optimized_ms": float("nan"),
                "leaf_nodes_ms": float("nan"),
                "power_w": spec.power_mw / 1e3,
            }
        )

    # --- Motion planning row: average MPNet query runtime --------------
    traces = ctx.baxter_traces()
    mp_rows = []
    for key in ("titan-v", "jetson-tx2"):
        model = BaselineSystemModel(key, GPU_DEVICES[key])
        times = [model.run_query(trace).total_ms for trace in traces]
        mp_rows.append({"device": GPU_DEVICES[key].name, "mean_planning_ms": float(np.mean(times))})
    for key in ("i7-4771", "cortex-a57"):
        model = BaselineSystemModel(key, CPU_DEVICES[key])
        times = [model.run_query(trace).total_ms for trace in traces]
        mp_rows.append({"device": CPU_DEVICES[key].name, "mean_planning_ms": float(np.mean(times))})
    for row, mp_row in zip(rows, mp_rows):
        row["mean_planning_ms"] = mp_row["mean_planning_ms"]

    return Experiment(
        id="table3",
        title="Collision detection and motion planning runtime on CPUs/GPUs",
        paper_reference=(
            "2^20 queries: Titan V 24/12/6 ms, TX2 5833/3403/1373 ms, i7 "
            "153/890 ms, A57 360/3304 ms; MPAccel 16x4: 0.91 ms (mc), 0.53 ms "
            "(p); planning: 1.42 / 110.27 / 4.13 / 11.62 ms"
        ),
        rows=rows,
        notes=(
            "Device models are behavioral: work counts come from real "
            "traversals; per-device throughput constants are calibrated to "
            "the paper's traversal-kernel measurements (see repro/baselines)."
        ),
    )
