"""Fine-grained parallelism experiments: Figures 8, 17, 18 and Table 1.

These measure the intra-collision-detection story: where separating axes
are found, what the sphere filters catch, and what the cascaded early-exit
flow does to CECDU latency and energy.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.accel.cecdu import CECDUModel
from repro.accel.config import CECDUConfig, IntersectionUnitKind
from repro.accel.energy import HardwareBlockLibrary
from repro.collision.cascade import (
    CascadeConfig,
    DEFAULT_CASCADE,
    SATMode,
    SAT_ONLY_PARALLEL,
    SAT_ONLY_SEQUENTIAL,
    cascade_intersect,
)
from repro.collision.stats import CollisionStats
from repro.env.generator import random_scene
from repro.env.octree import Octree
from repro.geometry.sat import sat_obb_aabb
from repro.geometry.sphere import SPHERE_AABB_MULTIPLIES, sphere_aabb_overlap
from repro.harness.experiments.context import Experiment, ExperimentContext
from repro.harness.workloads import collect_cascade_pairs, random_link_obbs
from repro.robot.presets import jaco2


def _cascade_pairs(ctx: ExperimentContext):
    """(OBB, AABB) pairs from real traversals over the Jaco2 suite."""
    key = "cascade_pairs"
    if key not in ctx._cache:
        pairs = []
        for benchmark in ctx.jaco2_benchmarks():
            obbs = random_link_obbs(
                benchmark.robot,
                n_poses=max(20, ctx.scale.random_poses // (7 * ctx.scale.n_envs)),
                seed=ctx.seed + benchmark.index,
            )
            pairs.extend(collect_cascade_pairs(obbs, benchmark.octree))
        ctx._cache[key] = pairs
    return ctx._cache[key]


def run_fig8a(ctx: ExperimentContext) -> Experiment:
    """Figure 8a: sequential vs parallel separating-axis test execution."""
    pairs = _cascade_pairs(ctx)
    rows = []
    for label, config in (
        ("sequential", SAT_ONLY_SEQUENTIAL),
        ("parallel", SAT_ONLY_PARALLEL),
    ):
        cycles = 0
        multiplies = 0
        n_free = 0
        for obb, aabb in pairs:
            result = cascade_intersect(obb, aabb, config)
            if result.hit:
                continue  # Figure 8a reports collision-free cases
            cycles += result.exit_cycle
            multiplies += result.multiplies
            n_free += 1
        rows.append(
            {
                "mode": label,
                "runtime_cycles": cycles,
                "multiplies": multiplies,
                "cases": n_free,
            }
        )
    base = rows[0]
    for row in rows:
        row["normalized_runtime"] = row["runtime_cycles"] / max(1, base["runtime_cycles"])
        row["normalized_energy"] = row["multiplies"] / max(1, base["multiplies"])
    return Experiment(
        id="fig8a",
        title="Sequential vs parallel separating-axis tests (collision-free cases)",
        paper_reference="Parallel execution costs ~3x the energy of sequential",
        rows=rows,
    )


def run_fig8b(ctx: ExperimentContext) -> Experiment:
    """Figure 8b: distribution of the first successful separating axis."""
    pairs = _cascade_pairs(ctx)
    histogram = {axis: 0 for axis in range(1, 16)}
    filtered = {axis: 0 for axis in range(1, 16)}
    for obb, aabb in pairs:
        result = sat_obb_aabb(obb, aabb)
        if result.separating_axis is None:
            continue
        axis = result.separating_axis
        histogram[axis] += 1
        if not sphere_aabb_overlap(obb.center, obb.bounding_sphere_radius, aabb):
            filtered[axis] += 1
    rows = [
        {
            "axis_id": axis,
            "frequency": histogram[axis],
            "filtered_by_bounding_sphere": filtered[axis],
        }
        for axis in range(1, 16)
    ]
    from repro.harness.charts import histogram as ascii_histogram

    chart = ascii_histogram(
        [(f"axis {axis:2d}", histogram[axis]) for axis in range(1, 16)], width=44
    )
    return Experiment(
        id="fig8b",
        chart=chart,
        title="First successful separating axis identifier (and sphere-filter hits)",
        paper_reference=(
            "Most separating axes are found within the first six candidates; "
            "the bounding-sphere test filters the bulk of the axis-1 cases"
        ),
        rows=rows,
    )


def run_fig17(ctx: ExperimentContext) -> Experiment:
    """Figure 17: sequential vs parallel CD with and without the filters."""
    pairs = _cascade_pairs(ctx)
    configs = [
        ("sequential_no_filters", SAT_ONLY_SEQUENTIAL),
        ("parallel_no_filters", SAT_ONLY_PARALLEL),
        (
            "staged_no_filters",
            CascadeConfig(bounding_sphere=False, inscribed_sphere=False),
        ),
        (
            "bounding_sphere_only",
            CascadeConfig(bounding_sphere=True, inscribed_sphere=False),
        ),
        ("proposed_both_filters", DEFAULT_CASCADE),
    ]
    rows = []
    for label, config in configs:
        cycles = 0
        multiplies = 0
        for obb, aabb in pairs:
            result = cascade_intersect(obb, aabb, config)
            cycles += result.exit_cycle
            multiplies += result.multiplies
        rows.append({"config": label, "runtime_cycles": cycles, "multiplies": multiplies})
    base = rows[0]
    for row in rows:
        row["speedup_vs_sequential"] = base["runtime_cycles"] / max(1, row["runtime_cycles"])
        row["computation_vs_sequential"] = row["multiplies"] / max(1, base["multiplies"])
    return Experiment(
        id="fig17",
        title="Runtime and computation of sequential vs parallel collision detection",
        paper_reference=(
            "Parallel SAT: +46% computation for 1.77-2.52x speedup; bounding "
            "sphere closes the computation gap (~+1.3%); both filters: ~4.1x "
            "speedup with 61% computation savings vs sequential"
        ),
        rows=rows,
    )


def _environment_sweep(ctx: ExperimentContext, obstacle_counts=(2, 4, 8, 16)):
    robot = jaco2()
    sweep = []
    for n_obstacles in obstacle_counts:
        scene = random_scene(seed=ctx.seed + n_obstacles, n_obstacles=n_obstacles)
        octree = Octree.from_scene(scene, resolution=16)
        sweep.append((n_obstacles, robot, octree))
    return sweep


def run_fig18a(ctx: ExperimentContext) -> Experiment:
    """Figure 18a: CECDU runtime/energy vs environment complexity."""
    rows = []
    n_poses = max(50, ctx.scale.random_poses // 4)
    for n_obstacles, robot, octree in _environment_sweep(ctx):
        for n_oocds, label in ((1, "single_iu"), (4, "four_iu")):
            model = CECDUModel(robot, octree, CECDUConfig(n_oocds=n_oocds))
            rng = np.random.default_rng(ctx.seed)
            cycles = []
            energy = []
            for _ in range(n_poses):
                outcome = model.simulate_pose(robot.random_configuration(rng))
                cycles.append(outcome.cycles)
                energy.append(outcome.energy_pj)
            rows.append(
                {
                    "n_obstacles": n_obstacles,
                    "config": label,
                    "mean_cycles": float(np.mean(cycles)),
                    "mean_energy_pj": float(np.mean(energy)),
                }
            )
    return Experiment(
        id="fig18a",
        title="CECDU runtime/energy vs number of obstacles",
        paper_reference="Runtime grows ~50% per doubling of the obstacle count",
        rows=rows,
    )


def run_fig18b(ctx: ExperimentContext) -> Experiment:
    """Figure 18b: cascade exit-cycle breakdown vs environment complexity."""
    rows = []
    n_poses = max(50, ctx.scale.random_poses // 4)
    for n_obstacles, robot, octree in _environment_sweep(ctx):
        stats = CollisionStats()
        from repro.collision.octree_cd import OBBOctreeCollider

        collider = OBBOctreeCollider(octree)
        rng = np.random.default_rng(ctx.seed)
        for _ in range(n_poses):
            for obb in random_link_obbs(robot, 1, seed=int(rng.integers(1 << 30))):
                collider.collide(obb, stats=stats, record_trace=False)
        total = sum(stats.cascade_exits.values())
        row = {"n_obstacles": n_obstacles, "total_tests": total}
        for stage, count in sorted(stats.cascade_exits.items()):
            row[stage] = count / max(1, total)
        rows.append(row)
    return Experiment(
        id="fig18b",
        title="Cascade exit-stage breakdown vs environment complexity",
        paper_reference=(
            "The filters catch most easy cases in cycle 1 across complexities"
        ),
        rows=rows,
    )


def run_table1(ctx: ExperimentContext) -> Experiment:
    """Table 1: CECDU latency/area/power for the four configurations."""
    benchmark = ctx.jaco2_benchmarks()[0]
    robot = benchmark.robot
    rows = []
    paper = {
        (1, "mc"): 154.4,
        (1, "p"): 137.5,
        (4, "mc"): 54.8,
        (4, "p"): 46.3,
    }
    n_poses = max(100, ctx.scale.random_poses)
    for n_oocds in (1, 4):
        for kind in IntersectionUnitKind:
            config = CECDUConfig(n_oocds=n_oocds, iu_kind=kind)
            model = CECDUModel(robot, benchmark.octree, config)
            rng = np.random.default_rng(ctx.seed)
            cycles = [
                model.simulate_pose(robot.random_configuration(rng)).cycles
                for _ in range(n_poses)
            ]
            spec = HardwareBlockLibrary.cecdu(config)
            rows.append(
                {
                    "intersection_units": n_oocds,
                    "iu_kind": kind.value,
                    "latency_cycles": float(np.mean(cycles)),
                    "paper_latency_cycles": paper[(n_oocds, kind.value)],
                    "area_mm2": spec.area_mm2,
                    "power_mw": spec.power_mw,
                }
            )
    return Experiment(
        id="table1",
        title="Collision detection latency for CECDU configurations (Jaco2)",
        paper_reference="154.4 / 137.5 / 54.8 / 46.3 cycles for 1mc/1p/4mc/4p",
        rows=rows,
    )
