"""Experiment runners: one per table/figure in the paper's evaluation.

Each runner returns an :class:`~repro.harness.experiments.context.Experiment`
with structured rows; ``python -m repro.harness.experiments --all``
regenerates EXPERIMENTS.md from them.  The registry maps experiment ids
(``fig7``, ``table1``, ...) to runners.
"""

from repro.harness.experiments.cascade_experiments import (
    run_fig8a,
    run_fig8b,
    run_fig17,
    run_fig18a,
    run_fig18b,
    run_table1,
)
from repro.harness.experiments.context import Experiment, ExperimentContext
from repro.harness.experiments.scheduler_experiments import (
    run_fig1b,
    run_fig7,
    run_fig15,
    run_fig16,
)
from repro.harness.experiments.system_experiments import (
    run_fig19,
    run_fig20,
    run_table2,
    run_table3,
)

REGISTRY = {
    "fig1b": run_fig1b,
    "fig7": run_fig7,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18a": run_fig18a,
    "fig18b": run_fig18b,
    "fig19": run_fig19,
    "fig20": run_fig20,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
}

__all__ = ["Experiment", "ExperimentContext", "REGISTRY"]
