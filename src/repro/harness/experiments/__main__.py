"""CLI entry point: ``python -m repro.harness.experiments --all``."""

import sys

from repro.harness.experiments.report import main

if __name__ == "__main__":
    sys.exit(main())
