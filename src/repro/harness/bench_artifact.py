"""Machine-readable benchmark artifacts: the ``BENCH_*.json`` schema.

Every benchmark run emits one artifact so perf claims accumulate into a
cross-PR trajectory instead of evaporating in terminal scrollback (the
Megatron collect/plot workflow: runs write JSON, a collector folds every
artifact into one trajectory file, a plotter renders it).  The schema is
deliberately small and **deterministic** — no timestamps, hostnames, or
wall-clock-only fields at the top level — so rerunning a seeded benchmark
reproduces the artifact byte-for-byte:

```
{
  "schema_version": 1,
  "bench": "scenarios",          # which benchmark produced this
  "seed": 0,                     # the run's master seed
  "cases": [                     # one entry per measured case
    {"name": "shelf_pick/rrt_connect/batch",
     "metrics": {"success_rate": 1.0, "sim_ms_p50": 0.41, ...},
     ...}                        # extra context keys allowed
  ],
  "summary": {...},              # optional run-level rollup (numeric)
  ...                            # optional bench-specific extras
}
```

``validate_bench_payload`` is the single gate: the suite runner calls it
before writing, ``load_bench`` calls it after reading, and
``benchmarks/conftest.py`` schema-checks every ``BENCH_*.json`` it finds.
``collect_bench_payloads`` merges artifacts into the trajectory consumed
by ``benchmarks/plot_bench.py``.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional, Sequence

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_FILE_PREFIX",
    "make_bench_payload",
    "validate_bench_payload",
    "save_bench",
    "load_bench",
    "find_bench_files",
    "collect_bench_payloads",
]

BENCH_SCHEMA_VERSION = 1

#: Artifact filename convention: ``BENCH_<bench>.json``.
BENCH_FILE_PREFIX = "BENCH_"

_TOP_REQUIRED = ("schema_version", "bench", "seed", "cases")


def _is_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def make_bench_payload(
    bench: str,
    seed: int,
    cases: Sequence[dict],
    summary: Optional[Dict[str, float]] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble and validate one artifact payload."""
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "seed": seed,
        "cases": list(cases),
    }
    if summary is not None:
        payload["summary"] = dict(summary)
    if extra:
        clash = sorted(set(extra) & set(payload))
        if clash:
            raise ValueError(f"extra key(s) {clash} clash with schema keys")
        payload.update(extra)
    validate_bench_payload(payload)
    return payload


def validate_bench_payload(payload: dict, source: str = "payload") -> dict:
    """Check an artifact against the schema; raises naming each violation."""
    if not isinstance(payload, dict):
        raise ValueError(f"{source}: bench artifact must be a dict, got {type(payload).__name__}")
    missing = sorted(set(_TOP_REQUIRED) - set(payload))
    if missing:
        raise ValueError(f"{source}: missing required key(s) {missing}")
    version = payload["schema_version"]
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{source}: unsupported bench schema version {version!r}; "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(payload["bench"], str) or not payload["bench"]:
        raise ValueError(f"{source}: 'bench' must be a non-empty string")
    if not isinstance(payload["seed"], int) or isinstance(payload["seed"], bool):
        raise ValueError(f"{source}: 'seed' must be an integer")
    cases = payload["cases"]
    if not isinstance(cases, list):
        raise ValueError(f"{source}: 'cases' must be a list")
    seen = set()
    for i, case in enumerate(cases):
        where = f"{source}: cases[{i}]"
        if not isinstance(case, dict):
            raise ValueError(f"{where} must be a dict")
        name = case.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where} missing non-empty string 'name'")
        if name in seen:
            raise ValueError(f"{source}: duplicate case name {name!r}")
        seen.add(name)
        metrics = case.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise ValueError(f"{where} ({name!r}) missing non-empty 'metrics' dict")
        for key, value in metrics.items():
            if not _is_number(value):
                raise ValueError(
                    f"{where} ({name!r}): metric {key!r} must be a finite "
                    f"number, got {value!r}"
                )
    summary = payload.get("summary")
    if summary is not None:
        if not isinstance(summary, dict):
            raise ValueError(f"{source}: 'summary' must be a dict")
        for key, value in summary.items():
            if not _is_number(value):
                raise ValueError(
                    f"{source}: summary metric {key!r} must be a finite "
                    f"number, got {value!r}"
                )
    return payload


def save_bench(path: str, payload: dict) -> None:
    """Validate then write one artifact (stable key order, indented)."""
    validate_bench_payload(payload, source=os.path.basename(path))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path: str) -> dict:
    """Read and validate one artifact."""
    with open(path) as handle:
        payload = json.load(handle)
    return validate_bench_payload(payload, source=os.path.basename(path))


def find_bench_files(directory: str) -> List[str]:
    """All ``BENCH_*.json`` artifacts in ``directory``, sorted by name."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith(BENCH_FILE_PREFIX) and name.endswith(".json")
    )


def collect_bench_payloads(paths: Sequence[str]) -> dict:
    """Fold many artifacts into one trajectory payload.

    Deterministic: entries are ordered by (bench, filename) and carry each
    run's summary plus the per-case metric table.  Duplicate bench names
    (e.g. artifacts from several PRs' runs collected side by side) are
    allowed — the filename disambiguates.
    """
    runs = []
    for path in paths:
        payload = load_bench(path)
        runs.append(
            {
                "file": os.path.basename(path),
                "bench": payload["bench"],
                "seed": payload["seed"],
                "n_cases": len(payload["cases"]),
                "summary": payload.get("summary", {}),
                "cases": [
                    {"name": case["name"], "metrics": case["metrics"]}
                    for case in payload["cases"]
                ],
            }
        )
    runs.sort(key=lambda run: (run["bench"], run["file"]))
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench_trajectory",
        "n_runs": len(runs),
        "benches": sorted({run["bench"] for run in runs}),
        "runs": runs,
    }
