"""MPNet trace generation: planner runs recorded as CD phase streams."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.env.mapping import scan_scene_points
from repro.harness.workloads import Benchmark
from repro.planning.mpnet import MPNetPlanner, PlanResult
from repro.planning.motion import CDPhase
from repro.planning.recorder import CDTraceRecorder
from repro.planning.samplers import HeuristicSampler


@dataclass
class QueryTrace:
    """One planning query's result plus the CD phases it generated."""

    benchmark_index: int
    result: PlanResult
    phases: List[CDPhase]


def generate_mpnet_traces(
    benchmarks: List[Benchmark],
    queries_per_env: Optional[int] = None,
    sampler_factory=None,
    seed: int = 7,
) -> List[QueryTrace]:
    """Run the MPNet-style planner over the benchmark suite.

    ``sampler_factory(robot)`` builds the pose sampler (defaults to the
    fast :class:`HeuristicSampler`; pass a factory wrapping a trained
    :class:`~repro.planning.samplers.NeuralSampler` for the faithful
    configuration).  Returns one :class:`QueryTrace` per planning query.
    """
    rng = np.random.default_rng(seed)
    traces: List[QueryTrace] = []
    for benchmark in benchmarks:
        robot = benchmark.robot
        sampler = (
            HeuristicSampler(robot) if sampler_factory is None else sampler_factory(robot)
        )
        points = scan_scene_points(benchmark.scene, points_per_obstacle=60, rng=rng)
        queries = benchmark.queries
        if queries_per_env is not None:
            queries = queries[:queries_per_env]
        for q_start, q_goal in queries:
            recorder = CDTraceRecorder(benchmark.checker)
            planner = MPNetPlanner(recorder, sampler, points)
            result = planner.plan(q_start, q_goal, rng)
            traces.append(
                QueryTrace(
                    benchmark_index=benchmark.index,
                    result=result,
                    phases=list(recorder.phases),
                )
            )
    return traces


def all_phases(traces: List[QueryTrace]) -> List[CDPhase]:
    """Flatten every query's phases into one workload list."""
    phases: List[CDPhase] = []
    for trace in traces:
        phases.extend(trace.phases)
    return phases
