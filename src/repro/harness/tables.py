"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3f}"
        return str(value)

    table: List[List[str]] = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "| " + " | ".join(str(c).ljust(w) for c, w in zip(columns, widths)) + " |"
    rule = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    body = [
        "| " + " | ".join(cell.ljust(w) for cell, w in zip(line, widths)) + " |"
        for line in table
    ]
    return "\n".join([header, rule] + body)
