"""Cross-implementation validation: ``python -m repro.selfcheck``.

Runs the same random collision workload through every implementation in
the repository and checks their agreement, the way the paper's artifact
sanity scripts do before the long experiments:

- octree traversal vs the exhaustive leaf sweep (must be *equal*),
- cascaded early-exit vs full separating-axis test (must be *equal*),
- CECDU model vs the software checker (must be *equal*),
- voxelized CD and fixed-point quantization vs float geometry (must be
  *conservative*: never miss a true collision).

Exit code 0 means every check passed.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.accel.cecdu import CECDUModel
from repro.accel.config import CECDUConfig
from repro.collision.cascade import DEFAULT_CASCADE, cascade_intersect
from repro.collision.checker import RobotEnvironmentChecker
from repro.collision.octree_cd import OBBOctreeCollider, reference_obb_octree_hit
from repro.collision.voxel_cd import VoxelizedCollisionDetector
from repro.env.generator import random_scene
from repro.env.octree import Octree
from repro.env.voxel import VoxelGrid
from repro.geometry.sat import obb_aabb_overlap
from repro.robot.presets import jaco2


@dataclass
class CheckResult:
    name: str
    cases: int
    failures: int

    @property
    def passed(self) -> bool:
        return self.failures == 0


def run_selfcheck(n_poses: int = 150, seed: int = 0) -> List[CheckResult]:
    """Run all cross-checks; returns one result per check."""
    rng = np.random.default_rng(seed)
    scene = random_scene(seed=seed)
    octree = Octree.from_scene(scene, resolution=16)
    robot = jaco2()
    checker = RobotEnvironmentChecker(robot, octree, collect_stats=False)
    collider = OBBOctreeCollider(octree)
    cecdu = CECDUModel(robot, octree, CECDUConfig(n_oocds=4))
    voxel_cd = VoxelizedCollisionDetector(VoxelGrid.from_scene(scene, 32))

    results = []
    poses = [robot.random_configuration(rng) for _ in range(n_poses)]
    obbs = [obb for q in poses for obb in checker.link_obbs(q)]

    # 1. Traversal vs exhaustive leaf sweep.
    failures = sum(
        1
        for obb in obbs
        if collider.collides(obb) != reference_obb_octree_hit(obb, octree)
    )
    results.append(CheckResult("octree traversal == leaf sweep", len(obbs), failures))

    # 2. Cascade vs full SAT on traversal octants.
    failures = 0
    cases = 0
    for obb in obbs[: len(obbs) // 2]:
        box = octree.bounds
        for octant in range(8):
            aabb = octree.octant_aabb(box, octant)
            cases += 1
            if cascade_intersect(obb, aabb, DEFAULT_CASCADE).hit != obb_aabb_overlap(
                obb, aabb
            ):
                failures += 1
    results.append(CheckResult("cascade == full SAT", cases, failures))

    # 3. CECDU model vs software checker.
    failures = sum(
        1 for q in poses if cecdu.simulate_pose(q).hit != checker.check_pose(q)
    )
    results.append(CheckResult("CECDU model == checker", len(poses), failures))

    # 4. Voxelized CD conservative vs true geometry.
    failures = 0
    for obb in obbs:
        truly = any(obb_aabb_overlap(obb, ob) for ob in scene.obstacles)
        if truly and not voxel_cd.query(obb).hit:
            failures += 1
    results.append(CheckResult("voxelized CD conservative", len(obbs), failures))

    # 5. Fixed-point conservative vs float checker.
    float_checker = RobotEnvironmentChecker(
        robot, octree, fixed_point=None, collect_stats=False
    )
    failures = sum(
        1
        for q in poses
        if float_checker.check_pose(q) and not checker.check_pose(q)
    )
    results.append(CheckResult("fixed point conservative", len(poses), failures))
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.selfcheck",
        description="Cross-validate every collision implementation.",
    )
    parser.add_argument("--poses", type=int, default=150)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    results = run_selfcheck(n_poses=args.poses, seed=args.seed)
    width = max(len(r.name) for r in results)
    all_ok = True
    for result in results:
        status = "ok" if result.passed else f"{result.failures} FAILURES"
        print(f"{result.name.ljust(width)}  {result.cases:6d} cases  {status}")
        all_ok = all_ok and result.passed
    print("selfcheck:", "PASS" if all_ok else "FAIL")
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
