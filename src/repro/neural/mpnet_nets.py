"""The MPNet network pair: environment encoder (ENet) + planner (PNet).

ENet consumes a fixed-size obstacle point cloud and emits a latent code;
PNet consumes [latent, current pose, goal pose] and predicts the next pose.
Dropout stays on at inference (MPNet's stochastic sampling).  Layer widths
are scaled down from the original PyTorch MPNet so training on synthetic
demonstrations stays laptop-fast; ``nominal_macs`` preserves the original
network's compute for the DNN-accelerator timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.neural.mlp import MLP

#: MACs of the original MPNet PNet (Qureshi et al.) used for timing: the
#: published network is an 11-layer MLP around 3.8M parameters.
ORIGINAL_PNET_MACS = 3_800_000
#: MACs of the original ENet (fully connected encoder over a 1400-point cloud).
ORIGINAL_ENET_MACS = 1_300_000


@dataclass
class MPNetModel:
    """Encoder + planner pair operating on a fixed robot DOF."""

    enet: MLP
    pnet: MLP
    n_cloud_points: int
    dof: int

    def __post_init__(self):
        expected_enet_in = 3 * self.n_cloud_points
        if self.enet.sizes[0] != expected_enet_in:
            raise ValueError(
                f"ENet input must be {expected_enet_in} for {self.n_cloud_points} points"
            )
        latent = self.enet.sizes[-1]
        expected_pnet_in = latent + 2 * self.dof
        if self.pnet.sizes[0] != expected_pnet_in:
            raise ValueError(
                f"PNet input must be latent+2*dof = {expected_pnet_in}, "
                f"got {self.pnet.sizes[0]}"
            )
        if self.pnet.sizes[-1] != self.dof:
            raise ValueError(
                f"PNet output must equal dof = {self.dof}, got {self.pnet.sizes[-1]}"
            )

    @property
    def latent_size(self) -> int:
        return self.enet.sizes[-1]

    def encode(self, cloud: np.ndarray) -> np.ndarray:
        """Latent code for an (n_cloud_points, 3) obstacle point cloud."""
        cloud = np.asarray(cloud, dtype=float)
        if cloud.shape != (self.n_cloud_points, 3):
            raise ValueError(
                f"expected cloud of shape ({self.n_cloud_points}, 3), got {cloud.shape}"
            )
        return self.enet.forward(cloud.reshape(-1))

    def next_pose(
        self,
        latent: np.ndarray,
        q_current: np.ndarray,
        q_goal: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Predict the next intermediate pose toward the goal."""
        x = np.concatenate([latent, np.asarray(q_current), np.asarray(q_goal)])
        return self.pnet.forward(x, rng=rng)


def default_mpnet_model(
    dof: int, n_cloud_points: int = 32, latent: int = 24, seed: int = 7
) -> MPNetModel:
    """The downscaled MPNet used for in-repo training and tests."""
    enet = MLP([3 * n_cloud_points, 96, latent], seed=seed)
    pnet = MLP(
        [latent + 2 * dof, 192, 128, 64, dof],
        dropout=0.1,
        dropout_at_inference=True,
        seed=seed + 1,
    )
    return MPNetModel(enet=enet, pnet=pnet, n_cloud_points=n_cloud_points, dof=dof)


def fixed_size_cloud(
    points: np.ndarray, n_points: int, rng: np.random.Generator
) -> np.ndarray:
    """Resample an arbitrary point cloud to exactly ``n_points`` rows.

    Pads by resampling with replacement; truncates by random choice.  An
    empty input yields a cloud at the origin (an obstacle-free scene).
    """
    points = np.asarray(points, dtype=float).reshape(-1, 3)
    if len(points) == 0:
        return np.zeros((n_points, 3))
    indices = rng.choice(len(points), size=n_points, replace=len(points) < n_points)
    return points[indices]
