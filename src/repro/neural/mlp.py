"""A minimal multilayer perceptron with manual backprop and Adam.

Supports ReLU hidden activations, inference-time dropout (MPNet uses
dropout as its stochastic sampling mechanism), MSE loss, and returns input
gradients so two networks can be trained end-to-end (encoder -> planner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class AdamState:
    """First/second moment buffers for one parameter tensor."""

    m: np.ndarray
    v: np.ndarray
    t: int = 0


class MLP:
    """Fully connected network: linear layers with ReLU between them.

    ``sizes`` lists the layer widths, e.g. ``[42, 256, 128, 7]``.  Dropout
    (applied after each hidden activation) stays active at inference when
    ``dropout_at_inference`` is set — that is how MPNet draws diverse
    samples from a deterministic network.
    """

    def __init__(
        self,
        sizes: List[int],
        dropout: float = 0.0,
        dropout_at_inference: bool = False,
        seed: int = 0,
    ):
        if len(sizes) < 2:
            raise ValueError(f"need at least input and output sizes, got {sizes}")
        if any(s < 1 for s in sizes):
            raise ValueError(f"layer sizes must be positive, got {sizes}")
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        self.sizes = list(sizes)
        self.dropout = dropout
        self.dropout_at_inference = dropout_at_inference
        rng = np.random.default_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialization for ReLU
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._adam: Optional[List[Tuple[AdamState, AdamState]]] = None

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def macs(self) -> int:
        """Multiply-accumulates per single-sample forward pass."""
        return int(sum(w.size for w in self.weights))

    @property
    def parameter_count(self) -> int:
        return int(sum(w.size + b.size for w, b in zip(self.weights, self.biases)))

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------

    def forward(
        self, x: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Inference forward pass (dropout only if ``dropout_at_inference``)."""
        use_dropout = self.dropout > 0.0 and self.dropout_at_inference
        if use_dropout and rng is None:
            raise ValueError("dropout at inference needs an rng")
        h = np.atleast_2d(np.asarray(x, dtype=float))
        for layer in range(self.num_layers):
            h = h @ self.weights[layer] + self.biases[layer]
            if layer < self.num_layers - 1:
                h = np.maximum(h, 0.0)
                if use_dropout:
                    mask = rng.random(h.shape) >= self.dropout
                    h = h * mask / (1.0 - self.dropout)
        return h[0] if np.asarray(x).ndim == 1 else h

    def _forward_training(self, x: np.ndarray, rng: np.random.Generator):
        """Forward with cached activations and dropout masks for backprop."""
        h = np.atleast_2d(np.asarray(x, dtype=float))
        activations = [h]
        masks: List[Optional[np.ndarray]] = []
        for layer in range(self.num_layers):
            h = h @ self.weights[layer] + self.biases[layer]
            if layer < self.num_layers - 1:
                h = np.maximum(h, 0.0)
                if self.dropout > 0.0:
                    mask = (rng.random(h.shape) >= self.dropout) / (1.0 - self.dropout)
                    h = h * mask
                    masks.append(mask)
                else:
                    masks.append(None)
            activations.append(h)
        return activations, masks

    def backward(
        self,
        activations: List[np.ndarray],
        masks: List[Optional[np.ndarray]],
        grad_output: np.ndarray,
    ):
        """Backprop; returns (weight grads, bias grads, input grad)."""
        grad = np.atleast_2d(grad_output)
        weight_grads: List[np.ndarray] = [np.empty(0)] * self.num_layers
        bias_grads: List[np.ndarray] = [np.empty(0)] * self.num_layers
        for layer in reversed(range(self.num_layers)):
            if layer < self.num_layers - 1:
                # Undo dropout scaling, then the ReLU gate.
                if masks[layer] is not None:
                    grad = grad * masks[layer]
                grad = grad * (activations[layer + 1] > 0.0)
            weight_grads[layer] = activations[layer].T @ grad
            bias_grads[layer] = grad.sum(axis=0)
            grad = grad @ self.weights[layer].T
        return weight_grads, bias_grads, grad

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def _ensure_adam(self) -> List[Tuple[AdamState, AdamState]]:
        if self._adam is None:
            self._adam = [
                (
                    AdamState(np.zeros_like(w), np.zeros_like(w)),
                    AdamState(np.zeros_like(b), np.zeros_like(b)),
                )
                for w, b in zip(self.weights, self.biases)
            ]
        return self._adam

    def apply_gradients(
        self,
        weight_grads,
        bias_grads,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        """One Adam step with the provided gradients."""
        states = self._ensure_adam()
        for layer in range(self.num_layers):
            for param, grad, state in (
                (self.weights[layer], weight_grads[layer], states[layer][0]),
                (self.biases[layer], bias_grads[layer], states[layer][1]),
            ):
                state.t += 1
                state.m = beta1 * state.m + (1.0 - beta1) * grad
                state.v = beta2 * state.v + (1.0 - beta2) * grad * grad
                m_hat = state.m / (1.0 - beta1**state.t)
                v_hat = state.v / (1.0 - beta2**state.t)
                param -= lr * m_hat / (np.sqrt(v_hat) + eps)

    def train_batch(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator, lr: float = 1e-3
    ) -> float:
        """One MSE training step; returns the batch loss."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_2d(np.asarray(y, dtype=float))
        activations, masks = self._forward_training(x, rng)
        pred = activations[-1]
        diff = pred - y
        loss = float(np.mean(diff**2))
        grad_out = 2.0 * diff / diff.size
        weight_grads, bias_grads, _ = self.backward(activations, masks, grad_out)
        self.apply_gradients(weight_grads, bias_grads, lr=lr)
        return loss
