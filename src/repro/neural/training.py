"""End-to-end training of the MPNet pair on RRT-Connect demonstrations.

For each training scene we plan expert paths with RRT-Connect, shortcut
them, and turn every consecutive pose pair into a supervised sample
(cloud, q_i, q_goal) -> q_{i+1}.  ENet and PNet train jointly: the MSE
gradient at PNet's input flows back into the encoder, exactly as in the
original MPNet training setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.collision.checker import RobotEnvironmentChecker
from repro.env.mapping import scan_scene_points
from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.neural.mpnet_nets import MPNetModel, fixed_size_cloud
from repro.planning.recorder import CDTraceRecorder
from repro.planning.rrt_connect import RRTConnectPlanner
from repro.planning.shortcut import greedy_shortcut


@dataclass
class Demonstration:
    """One expert path in one scene, with that scene's point cloud."""

    cloud: np.ndarray  # (n_cloud_points, 3)
    path: List[np.ndarray]


def generate_demonstrations(
    robot_factory,
    scenes: List[Scene],
    n_cloud_points: int,
    queries_per_scene: int = 3,
    octree_resolution: int = 16,
    seed: int = 11,
) -> List[Demonstration]:
    """Expert demonstrations from RRT-Connect + shortcutting.

    ``robot_factory`` is a zero-argument callable returning the robot model
    (e.g. :func:`repro.robot.jaco2`).
    """
    rng = np.random.default_rng(seed)
    demos: List[Demonstration] = []
    for scene in scenes:
        octree = Octree.from_scene(scene, resolution=octree_resolution)
        robot = robot_factory()
        checker = RobotEnvironmentChecker(robot, octree, collect_stats=False)
        recorder = CDTraceRecorder(checker, record=False)
        planner = RRTConnectPlanner(recorder, max_iterations=400, max_step=0.6)
        cloud = fixed_size_cloud(
            scan_scene_points(scene, points_per_obstacle=80, rng=rng),
            n_cloud_points,
            rng,
        )
        for _ in range(queries_per_scene):
            try:
                q_start = checker.sample_free_configuration(rng)
                q_goal = checker.sample_free_configuration(rng)
            except RuntimeError:
                continue
            path = planner.plan(q_start, q_goal, rng)
            if path is None or len(path) < 2:
                continue
            path = greedy_shortcut(path, recorder)
            demos.append(Demonstration(cloud=cloud, path=path))
    return demos


def demonstrations_to_samples(
    demos: List[Demonstration],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten demos into (clouds, [q_i, q_goal] pairs, q_{i+1} targets)."""
    clouds, inputs, targets = [], [], []
    for demo in demos:
        goal = demo.path[-1]
        for i in range(len(demo.path) - 1):
            clouds.append(demo.cloud.reshape(-1))
            inputs.append(np.concatenate([demo.path[i], goal]))
            targets.append(np.asarray(demo.path[i + 1], dtype=float))
    if not clouds:
        raise ValueError("no training samples: every demonstration was empty")
    return np.asarray(clouds), np.asarray(inputs), np.asarray(targets)


def train_mpnet(
    model: MPNetModel,
    demos: List[Demonstration],
    epochs: int = 40,
    batch_size: int = 32,
    lr: float = 1e-3,
    seed: int = 13,
) -> List[float]:
    """Joint ENet+PNet training; returns the per-epoch mean loss curve."""
    clouds, pose_inputs, targets = demonstrations_to_samples(demos)
    rng = np.random.default_rng(seed)
    n = len(clouds)
    losses: List[float] = []
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, batch_size):
            index = order[start : start + batch_size]
            cloud_batch = clouds[index]
            pose_batch = pose_inputs[index]
            target_batch = targets[index]

            enet_acts, enet_masks = model.enet._forward_training(cloud_batch, rng)
            latent = enet_acts[-1]
            pnet_in = np.concatenate([latent, pose_batch], axis=1)
            pnet_acts, pnet_masks = model.pnet._forward_training(pnet_in, rng)
            pred = pnet_acts[-1]
            diff = pred - target_batch
            loss = float(np.mean(diff**2))
            grad_out = 2.0 * diff / diff.size

            w_grads, b_grads, input_grad = model.pnet.backward(
                pnet_acts, pnet_masks, grad_out
            )
            model.pnet.apply_gradients(w_grads, b_grads, lr=lr)
            latent_grad = input_grad[:, : model.latent_size]
            ew_grads, eb_grads, _ = model.enet.backward(
                enet_acts, enet_masks, latent_grad
            )
            model.enet.apply_gradients(ew_grads, eb_grads, lr=lr)

            epoch_loss += loss
            batches += 1
        losses.append(epoch_loss / max(1, batches))
    return losses
