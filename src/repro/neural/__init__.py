"""From-scratch numpy neural networks for the learning-based planner.

The paper's workload generator is MPNet (Qureshi et al.), which pairs an
environment encoder (ENet) with a planning network (PNet).  This package
implements both as plain-numpy MLPs with manual backprop and Adam, plus a
small self-supervised training loop over RRT-Connect demonstration paths.
No external ML framework is used.
"""

from repro.neural.mlp import MLP, AdamState
from repro.neural.mpnet_nets import MPNetModel, default_mpnet_model
from repro.neural.training import generate_demonstrations, train_mpnet

__all__ = [
    "MLP",
    "AdamState",
    "MPNetModel",
    "default_mpnet_model",
    "generate_demonstrations",
    "train_mpnet",
]
