"""Octree-versioned collision verdict cache.

Multi-client serving (:mod:`repro.serving`) re-checks the same quantized
poses over and over: requests share an environment, planners revisit
configurations, and motion discretizations overlap.  This cache memoizes
per-pose verdicts keyed on the quantized configuration, versioned by an
*environment epoch* that advances on every octree update.

**Bit-identity contract.**  Alongside each verdict the cache stores the
exact :class:`~repro.collision.stats.CollisionStats` delta the fresh
evaluation charged for that pose (node visits, SAT axes, cascade exits, ...
— everything except the caller-owned ``pose_checks``/``motion_checks``
counters).  A hit replays the stored delta into the live stats object, so a
cache-on run records *identical* operation counts to a cache-off run — the
energy model prices those counts, so "the check was skipped" must not be
visible in the accounting.  The evaluator is deterministic, which makes the
stored delta equal to what a fresh evaluation would have charged, always.

**Selective invalidation.**  On an environment update the owner computes
the changed-region boxes with :func:`repro.env.diff.octree_delta_regions`
and calls :meth:`invalidate_regions`.  An entry survives iff its
*footprint* — the AABB over the robot's quantized link OBBs at the cached
pose — is disjoint from every changed box.  This is safe because the
octree traversal only examines an octant whose parent node it visited, and
it only visits nodes whose box intersects the query volume: when no
changed node's box touches the footprint, the traversal (verdict *and*
work counts) is identical in the old and new trees.  Footprints are
computed lazily at first invalidation and cached on the entry.

Hit/miss/invalidation counters are mirrored into an optional
:class:`~repro.accel.telemetry.MetricsRegistry` (``cache.hits``,
``cache.misses``, ``cache.invalidated``, ``cache.epoch_advances``).

**Tiered caching for the sharded fleet.**  :class:`TieredCollisionCache`
stacks a shard-private *local* tier over an optional fleet-wide *global*
tier (:mod:`repro.serving.fleet`).  During a drain a shard reads
local-then-global and writes local only, logging its fresh entries; at the
drain boundary the fleet router merges every shard's fresh entries into
the global tier in shard-index order (:meth:`CollisionCache.adopt`), so
the global tier's content is a deterministic function of the drain — not
of worker interleaving.  Both tiers observe every environment update at
the same epoch boundary with the same changed-region boxes, so an entry's
survival verdict is identical in every tier.  Cache *content* never
affects verdicts or stats (hits replay exact deltas), so tiering is purely
a performance protocol — the bit-identity contract above is unchanged.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.collision.stats import CollisionStats
from repro.geometry.aabb import AABB

__all__ = [
    "CacheEntry",
    "CollisionCache",
    "TieredCollisionCache",
    "DEFAULT_QUANTUM",
]

#: Default pose-key quantum (radians).  Far below any meaningful joint
#: resolution, so distinct planner poses virtually never alias; equal poses
#: (the common repeat case) always do.
DEFAULT_QUANTUM = 1e-9


class CacheEntry:
    """One cached pose verdict with its replayable stats delta."""

    __slots__ = ("verdict", "stats", "pose", "epoch", "footprint")

    def __init__(
        self,
        verdict: bool,
        stats: CollisionStats,
        pose: np.ndarray,
        epoch: int,
    ):
        self.verdict = verdict
        self.stats = stats
        self.pose = pose
        self.epoch = epoch
        self.footprint: Optional[AABB] = None


class CollisionCache:
    """Pose-verdict cache keyed on (quantized pose, environment epoch).

    ``quantum`` sets the pose quantization grid; ``max_entries`` bounds
    memory with FIFO eviction (insertion order).  ``telemetry`` mirrors the
    counters into a metrics registry.  The cache is attached to one or more
    :class:`~repro.collision.checker.RobotEnvironmentChecker` instances
    (sharing a robot and environment); the first attach binds the
    stats-collection mode and the footprint function, later attaches must
    agree — mixing ``collect_stats`` modes would replay empty deltas into a
    collecting stats object and break bit-identity.
    """

    def __init__(
        self,
        quantum: float = DEFAULT_QUANTUM,
        max_entries: int = 1_000_000,
        telemetry=None,
    ):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.quantum = quantum
        self.max_entries = max_entries
        self.telemetry = telemetry
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.epoch_advances = 0
        self.collect_stats: Optional[bool] = None
        self._footprint_fn: Optional[Callable[[np.ndarray], AABB]] = None
        self._entries: dict = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(
        self, collect_stats: bool, footprint_fn: Callable[[np.ndarray], AABB]
    ) -> None:
        """Bind the cache to a checker's stats mode and footprint geometry."""
        if self.collect_stats is None:
            self.collect_stats = collect_stats
            self._footprint_fn = footprint_fn
        elif self.collect_stats != collect_stats:
            raise ValueError(
                "cache is shared between checkers with different collect_stats "
                f"modes ({self.collect_stats} vs {collect_stats}); stored stat "
                "deltas would not match what a cache-off run records"
            )

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def key(self, q) -> bytes:
        """Quantized-pose dictionary key."""
        q = np.asarray(q, dtype=float)
        return np.round(q / self.quantum).astype(np.int64).tobytes()

    def lookup(self, q) -> Optional[CacheEntry]:
        """The entry for a pose at the current epoch, or None (counted)."""
        entry = self._entries.get(self.key(q))
        if entry is not None and entry.epoch == self.epoch:
            self.hits += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.counter("cache.hits").inc()
            return entry
        self.misses += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.counter("cache.misses").inc()
        return None

    def store(self, q, verdict: bool, stats_delta: CollisionStats) -> None:
        """Insert a freshly evaluated pose verdict (FIFO-evicting).

        Overwriting an existing key (e.g. re-storing a pose after an epoch
        advance stale-ed its entry) is not an insert and must not evict:
        evicting on overwrites drops a live entry and permanently shrinks
        the effective capacity below ``max_entries``.
        """
        key = self.key(q)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        pose = np.array(q, dtype=float, copy=True)
        self._entries[key] = CacheEntry(
            bool(verdict), stats_delta, pose, self.epoch
        )

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def advance_epoch(self) -> None:
        """Invalidate everything (an update with unknown extent)."""
        self.epoch += 1
        self.epoch_advances += 1
        self.invalidated += len(self._entries)
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.counter("cache.epoch_advances").inc()
            self.telemetry.counter("cache.invalidated").inc(len(self._entries))
        self._entries.clear()

    def invalidate_regions(self, regions: Sequence[AABB]) -> int:
        """Advance the epoch, dropping entries whose footprint meets a region.

        Entries whose footprint is disjoint from *every* changed box are
        re-stamped to the new epoch (their traversal is provably identical
        in the updated tree); the rest are dropped.  Returns the number of
        dropped entries.
        """
        self.epoch += 1
        self.epoch_advances += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.counter("cache.epoch_advances").inc()
        if not regions:
            for entry in self._entries.values():
                entry.epoch = self.epoch
            return 0
        if self._footprint_fn is None:
            # Never attached: no geometry to prove survival with.
            dropped = len(self._entries)
            self._entries.clear()
        else:
            survivors = {}
            for key, entry in self._entries.items():
                if entry.footprint is None:
                    entry.footprint = self._footprint_fn(entry.pose)
                if any(entry.footprint.overlaps(region) for region in regions):
                    continue
                entry.epoch = self.epoch
                survivors[key] = entry
            dropped = len(self._entries) - len(survivors)
            self._entries = survivors
        self.invalidated += dropped
        if self.telemetry is not None and self.telemetry.enabled and dropped:
            self.telemetry.counter("cache.invalidated").inc(dropped)
        return dropped

    # ------------------------------------------------------------------
    # Fleet sync (drain-boundary entry exchange)
    # ------------------------------------------------------------------

    def adopt(self, items: Sequence[Tuple[bytes, CacheEntry]]) -> int:
        """Merge externally evaluated entries (the fleet's global-tier sync).

        ``items`` are ``(key, entry)`` pairs in a deterministic order (the
        fleet merges shards in shard-index order).  Entries whose epoch
        does not match this cache's current epoch are skipped — they were
        evaluated against a different octree version and their survival was
        never proven.  Existing keys are kept (first writer wins, matching
        the deterministic merge order); genuine inserts FIFO-evict like
        :meth:`store`.  Returns the number of entries adopted.
        """
        adopted = 0
        for key, entry in items:
            if entry.epoch != self.epoch or key in self._entries:
                continue
            if len(self._entries) >= self.max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[key] = entry
            adopted += 1
        return adopted

    def export_entries(self) -> List[Tuple[bytes, CacheEntry]]:
        """Every live entry as ``(key, entry)`` pairs, in insertion order."""
        return list(self._entries.items())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
            "epoch_advances": self.epoch_advances,
            "entries": len(self._entries),
            "epoch": self.epoch,
        }

    def clear(self) -> None:
        """Drop all entries and counters (the epoch is preserved)."""
        self._entries.clear()
        self.hits = self.misses = self.invalidated = 0


class TieredCollisionCache:
    """Local + global two-tier verdict cache for one fleet shard.

    Drop-in for :class:`CollisionCache` where checkers and the serving
    layer are concerned (``attach``/``lookup``/``store``/``counters``/
    ``invalidate_regions``/``hits``), with the fleet cache protocol on top:

    - **Reads** go local tier first, then the shared global tier.  A
      global hit is *promoted* into the local tier so the shard keeps
      serving it locally (promotions are not logged as fresh — the global
      tier already has the entry).
    - **Writes** land in the local tier only and are logged; the fleet
      collects the log with :meth:`export_fresh` at the drain boundary and
      merges it into the global tier in shard-index order.  The global
      tier is therefore frozen for the whole drain, which is what makes a
      multiprocessing drain bit-identical to the inline one.
    - **Invalidation** (:meth:`invalidate_regions`) applies to the local
      tier only; the owner of the shared global tier (the fleet)
      invalidates it exactly once per environment update with the same
      region boxes, so both tiers advance through the same epoch sequence.

    ``hits``/``misses`` on this object count *tiered* outcomes (a lookup
    that hits either tier is one hit), which is what the service's
    simulated cost model and the batcher's cached-row accounting read.
    """

    def __init__(
        self,
        local: CollisionCache,
        global_tier: Optional[CollisionCache] = None,
    ):
        if global_tier is not None and global_tier.quantum != local.quantum:
            raise ValueError(
                "tier quantum mismatch: local "
                f"{local.quantum} vs global {global_tier.quantum} — tiers "
                "must share one pose-key grid"
            )
        if global_tier is not None and global_tier.epoch != local.epoch:
            raise ValueError(
                f"tier epoch mismatch: local {local.epoch} vs global "
                f"{global_tier.epoch} — tiers must join at the same epoch"
            )
        self.local = local
        self.global_tier = global_tier
        self.hits = 0
        self.misses = 0
        self.hits_local = 0
        self.hits_global = 0
        self._fresh: List[bytes] = []

    # -- CollisionCache interface --------------------------------------

    @property
    def quantum(self) -> float:
        return self.local.quantum

    @property
    def epoch(self) -> int:
        return self.local.epoch

    @property
    def collect_stats(self) -> Optional[bool]:
        return self.local.collect_stats

    def attach(
        self, collect_stats: bool, footprint_fn: Callable[[np.ndarray], AABB]
    ) -> None:
        self.local.attach(collect_stats, footprint_fn)
        if self.global_tier is not None:
            self.global_tier.attach(collect_stats, footprint_fn)

    def key(self, q) -> bytes:
        return self.local.key(q)

    def lookup(self, q) -> Optional[CacheEntry]:
        entry = self.local.lookup(q)
        if entry is not None:
            self.hits += 1
            self.hits_local += 1
            return entry
        if self.global_tier is not None:
            entry = self.global_tier.lookup(q)
            if entry is not None:
                self.hits += 1
                self.hits_global += 1
                # Promote so subsequent lookups stay shard-local.  Not
                # logged as fresh: the global tier already holds it.
                key = self.local.key(q)
                self.local.adopt([(key, entry)])
                return entry
        self.misses += 1
        return None

    def store(self, q, verdict: bool, stats_delta: CollisionStats) -> None:
        key = self.local.key(q)
        fresh_insert = key not in self.local._entries
        self.local.store(q, verdict, stats_delta)
        if fresh_insert:
            self._fresh.append(key)

    def invalidate_regions(self, regions: Sequence[AABB]) -> int:
        """Invalidate the *local* tier (the fleet does the global tier once)."""
        dropped = self.local.invalidate_regions(regions)
        self._fresh.clear()
        return dropped

    def advance_epoch(self) -> None:
        self.local.advance_epoch()
        self._fresh.clear()

    def __len__(self) -> int:
        return len(self.local)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        out = self.local.counters()
        out.update(
            {
                "hits": self.hits,
                "misses": self.misses,
                "hits_local": self.hits_local,
                "hits_global": self.hits_global,
                "entries": len(self.local),
                "epoch": self.local.epoch,
            }
        )
        return out

    def clear(self) -> None:
        self.local.clear()
        self.hits = self.misses = self.hits_local = self.hits_global = 0
        self._fresh.clear()

    # -- fleet protocol -------------------------------------------------

    def export_fresh(self) -> List[Tuple[bytes, CacheEntry]]:
        """Entries stored (not promoted) since the last export, in order.

        Clears the log: the fleet calls this exactly once per drain, after
        every shard finished, and merges the results into the global tier.
        Entries evicted from the local tier since being logged are skipped.
        """
        out = []
        for key in self._fresh:
            entry = self.local._entries.get(key)
            if entry is not None:
                out.append((key, entry))
        self._fresh.clear()
        return out

    def export_state(self) -> dict:
        """Picklable local-tier snapshot for a process-mode worker."""
        return {
            "entries": self.local.export_entries(),
            "epoch": self.local.epoch,
            "counters": {
                "hits": self.hits,
                "misses": self.misses,
                "hits_local": self.hits_local,
                "hits_global": self.hits_global,
                "local_hits": self.local.hits,
                "local_misses": self.local.misses,
                "local_invalidated": self.local.invalidated,
                "local_epoch_advances": self.local.epoch_advances,
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self.local._entries = dict(state["entries"])
        self.local.epoch = state["epoch"]
        if self.global_tier is not None:
            self.global_tier.epoch = state["epoch"]
        counters = state["counters"]
        self.hits = counters["hits"]
        self.misses = counters["misses"]
        self.hits_local = counters["hits_local"]
        self.hits_global = counters["hits_global"]
        self.local.hits = counters["local_hits"]
        self.local.misses = counters["local_misses"]
        self.local.invalidated = counters["local_invalidated"]
        self.local.epoch_advances = counters["local_epoch_advances"]
        self._fresh.clear()


def footprint_of_obbs(obbs) -> AABB:
    """AABB enclosing a set of OBBs (the cache's pose footprint)."""
    lo = np.full(3, np.inf)
    hi = np.full(3, -np.inf)
    for obb in obbs:
        extent = np.abs(obb.rotation) @ obb.half_extents
        lo = np.minimum(lo, obb.center - extent)
        hi = np.maximum(hi, obb.center + extent)
    return AABB.from_min_max(lo, hi)
