"""Octree-versioned collision verdict cache.

Multi-client serving (:mod:`repro.serving`) re-checks the same quantized
poses over and over: requests share an environment, planners revisit
configurations, and motion discretizations overlap.  This cache memoizes
per-pose verdicts keyed on the quantized configuration, versioned by an
*environment epoch* that advances on every octree update.

**Bit-identity contract.**  Alongside each verdict the cache stores the
exact :class:`~repro.collision.stats.CollisionStats` delta the fresh
evaluation charged for that pose (node visits, SAT axes, cascade exits, ...
— everything except the caller-owned ``pose_checks``/``motion_checks``
counters).  A hit replays the stored delta into the live stats object, so a
cache-on run records *identical* operation counts to a cache-off run — the
energy model prices those counts, so "the check was skipped" must not be
visible in the accounting.  The evaluator is deterministic, which makes the
stored delta equal to what a fresh evaluation would have charged, always.

**Selective invalidation.**  On an environment update the owner computes
the changed-region boxes with :func:`repro.env.diff.octree_delta_regions`
and calls :meth:`invalidate_regions`.  An entry survives iff its
*footprint* — the AABB over the robot's quantized link OBBs at the cached
pose — is disjoint from every changed box.  This is safe because the
octree traversal only examines an octant whose parent node it visited, and
it only visits nodes whose box intersects the query volume: when no
changed node's box touches the footprint, the traversal (verdict *and*
work counts) is identical in the old and new trees.  Footprints are
computed lazily at first invalidation and cached on the entry.

Hit/miss/invalidation counters are mirrored into an optional
:class:`~repro.accel.telemetry.MetricsRegistry` (``cache.hits``,
``cache.misses``, ``cache.invalidated``, ``cache.epoch_advances``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.collision.stats import CollisionStats
from repro.geometry.aabb import AABB

__all__ = ["CacheEntry", "CollisionCache", "DEFAULT_QUANTUM"]

#: Default pose-key quantum (radians).  Far below any meaningful joint
#: resolution, so distinct planner poses virtually never alias; equal poses
#: (the common repeat case) always do.
DEFAULT_QUANTUM = 1e-9


class CacheEntry:
    """One cached pose verdict with its replayable stats delta."""

    __slots__ = ("verdict", "stats", "pose", "epoch", "footprint")

    def __init__(
        self,
        verdict: bool,
        stats: CollisionStats,
        pose: np.ndarray,
        epoch: int,
    ):
        self.verdict = verdict
        self.stats = stats
        self.pose = pose
        self.epoch = epoch
        self.footprint: Optional[AABB] = None


class CollisionCache:
    """Pose-verdict cache keyed on (quantized pose, environment epoch).

    ``quantum`` sets the pose quantization grid; ``max_entries`` bounds
    memory with FIFO eviction (insertion order).  ``telemetry`` mirrors the
    counters into a metrics registry.  The cache is attached to one or more
    :class:`~repro.collision.checker.RobotEnvironmentChecker` instances
    (sharing a robot and environment); the first attach binds the
    stats-collection mode and the footprint function, later attaches must
    agree — mixing ``collect_stats`` modes would replay empty deltas into a
    collecting stats object and break bit-identity.
    """

    def __init__(
        self,
        quantum: float = DEFAULT_QUANTUM,
        max_entries: int = 1_000_000,
        telemetry=None,
    ):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.quantum = quantum
        self.max_entries = max_entries
        self.telemetry = telemetry
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.epoch_advances = 0
        self.collect_stats: Optional[bool] = None
        self._footprint_fn: Optional[Callable[[np.ndarray], AABB]] = None
        self._entries: dict = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(
        self, collect_stats: bool, footprint_fn: Callable[[np.ndarray], AABB]
    ) -> None:
        """Bind the cache to a checker's stats mode and footprint geometry."""
        if self.collect_stats is None:
            self.collect_stats = collect_stats
            self._footprint_fn = footprint_fn
        elif self.collect_stats != collect_stats:
            raise ValueError(
                "cache is shared between checkers with different collect_stats "
                f"modes ({self.collect_stats} vs {collect_stats}); stored stat "
                "deltas would not match what a cache-off run records"
            )

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def key(self, q) -> bytes:
        """Quantized-pose dictionary key."""
        q = np.asarray(q, dtype=float)
        return np.round(q / self.quantum).astype(np.int64).tobytes()

    def lookup(self, q) -> Optional[CacheEntry]:
        """The entry for a pose at the current epoch, or None (counted)."""
        entry = self._entries.get(self.key(q))
        if entry is not None and entry.epoch == self.epoch:
            self.hits += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.counter("cache.hits").inc()
            return entry
        self.misses += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.counter("cache.misses").inc()
        return None

    def store(self, q, verdict: bool, stats_delta: CollisionStats) -> None:
        """Insert a freshly evaluated pose verdict (FIFO-evicting).

        Overwriting an existing key (e.g. re-storing a pose after an epoch
        advance stale-ed its entry) is not an insert and must not evict:
        evicting on overwrites drops a live entry and permanently shrinks
        the effective capacity below ``max_entries``.
        """
        key = self.key(q)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        pose = np.array(q, dtype=float, copy=True)
        self._entries[key] = CacheEntry(
            bool(verdict), stats_delta, pose, self.epoch
        )

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def advance_epoch(self) -> None:
        """Invalidate everything (an update with unknown extent)."""
        self.epoch += 1
        self.epoch_advances += 1
        self.invalidated += len(self._entries)
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.counter("cache.epoch_advances").inc()
            self.telemetry.counter("cache.invalidated").inc(len(self._entries))
        self._entries.clear()

    def invalidate_regions(self, regions: Sequence[AABB]) -> int:
        """Advance the epoch, dropping entries whose footprint meets a region.

        Entries whose footprint is disjoint from *every* changed box are
        re-stamped to the new epoch (their traversal is provably identical
        in the updated tree); the rest are dropped.  Returns the number of
        dropped entries.
        """
        self.epoch += 1
        self.epoch_advances += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.counter("cache.epoch_advances").inc()
        if not regions:
            for entry in self._entries.values():
                entry.epoch = self.epoch
            return 0
        if self._footprint_fn is None:
            # Never attached: no geometry to prove survival with.
            dropped = len(self._entries)
            self._entries.clear()
        else:
            survivors = {}
            for key, entry in self._entries.items():
                if entry.footprint is None:
                    entry.footprint = self._footprint_fn(entry.pose)
                if any(entry.footprint.overlaps(region) for region in regions):
                    continue
                entry.epoch = self.epoch
                survivors[key] = entry
            dropped = len(self._entries) - len(survivors)
            self._entries = survivors
        self.invalidated += dropped
        if self.telemetry is not None and self.telemetry.enabled and dropped:
            self.telemetry.counter("cache.invalidated").inc(dropped)
        return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
            "epoch_advances": self.epoch_advances,
            "entries": len(self._entries),
            "epoch": self.epoch,
        }

    def clear(self) -> None:
        """Drop all entries and counters (the epoch is preserved)."""
        self._entries.clear()
        self.hits = self.misses = self.invalidated = 0


def footprint_of_obbs(obbs) -> AABB:
    """AABB enclosing a set of OBBs (the cache's pose footprint)."""
    lo = np.full(3, np.inf)
    hi = np.full(3, -np.inf)
    for obb in obbs:
        extent = np.abs(obb.rotation) @ obb.half_extents
        lo = np.minimum(lo, obb.center - extent)
        hi = np.maximum(hi, obb.center + extent)
    return AABB.from_min_max(lo, hi)
