"""Operation counters shared by every collision-detection layer.

The paper uses multiply counts as its computation/energy proxy (Figure 8a)
and the number of collision detection tests as its coarse-grained energy
measure (Figure 7/15); SRAM reads feed the memory term of the energy model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class CollisionStats:
    """Mutable tally of work performed during collision detection."""

    multiplies: int = 0
    additions: int = 0
    sphere_tests: int = 0
    sat_axes_tested: int = 0
    intersection_tests: int = 0
    node_visits: int = 0
    sram_reads: int = 0
    pose_checks: int = 0
    motion_checks: int = 0
    cascade_exits: Counter = field(default_factory=Counter)

    def merge(self, other: "CollisionStats") -> "CollisionStats":
        """Accumulate ``other`` into self (returns self for chaining)."""
        self.multiplies += other.multiplies
        self.additions += other.additions
        self.sphere_tests += other.sphere_tests
        self.sat_axes_tested += other.sat_axes_tested
        self.intersection_tests += other.intersection_tests
        self.node_visits += other.node_visits
        self.sram_reads += other.sram_reads
        self.pose_checks += other.pose_checks
        self.motion_checks += other.motion_checks
        self.cascade_exits.update(other.cascade_exits)
        return self

    def copy(self) -> "CollisionStats":
        out = CollisionStats(
            multiplies=self.multiplies,
            additions=self.additions,
            sphere_tests=self.sphere_tests,
            sat_axes_tested=self.sat_axes_tested,
            intersection_tests=self.intersection_tests,
            node_visits=self.node_visits,
            sram_reads=self.sram_reads,
            pose_checks=self.pose_checks,
            motion_checks=self.motion_checks,
        )
        out.cascade_exits = Counter(self.cascade_exits)
        return out

    def reset(self) -> None:
        self.multiplies = 0
        self.additions = 0
        self.sphere_tests = 0
        self.sat_axes_tested = 0
        self.intersection_tests = 0
        self.node_visits = 0
        self.sram_reads = 0
        self.pose_checks = 0
        self.motion_checks = 0
        self.cascade_exits.clear()

    def as_dict(self) -> dict:
        return {
            "multiplies": self.multiplies,
            "additions": self.additions,
            "sphere_tests": self.sphere_tests,
            "sat_axes_tested": self.sat_axes_tested,
            "intersection_tests": self.intersection_tests,
            "node_visits": self.node_visits,
            "sram_reads": self.sram_reads,
            "pose_checks": self.pose_checks,
            "motion_checks": self.motion_checks,
            "cascade_exits": dict(self.cascade_exits),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CollisionStats":
        """Inverse of :meth:`as_dict` (report round-trips)."""
        out = cls(
            multiplies=int(data["multiplies"]),
            additions=int(data["additions"]),
            sphere_tests=int(data["sphere_tests"]),
            sat_axes_tested=int(data["sat_axes_tested"]),
            intersection_tests=int(data["intersection_tests"]),
            node_visits=int(data["node_visits"]),
            sram_reads=int(data["sram_reads"]),
            pose_checks=int(data["pose_checks"]),
            motion_checks=int(data["motion_checks"]),
        )
        out.cascade_exits = Counter(
            {stage: int(count) for stage, count in data["cascade_exits"].items()}
        )
        return out

    def __repr__(self) -> str:
        return (
            f"CollisionStats(mults={self.multiplies}, tests={self.intersection_tests}, "
            f"poses={self.pose_checks})"
        )
