"""Robot-vs-environment collision checking.

A pose check evaluates forward kinematics, quantizes the link OBBs to the
16-bit datapath, and runs each OBB against the environment octree with early
exit on the first colliding link — exactly what one CECDU does for one pose.
A motion check discretizes the straight C-space segment between two poses
and checks the discrete poses (Section 2.2).
"""

from __future__ import annotations

import math
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.collision.cache import CollisionCache, footprint_of_obbs
from repro.collision.cascade import CascadeConfig, DEFAULT_CASCADE
from repro.collision.octree_cd import OBBOctreeCollider, TraversalTrace
from repro.collision.stats import CollisionStats
from repro.env.octree import Octree
from repro.geometry.fixed_point import DEFAULT_FORMAT, FixedPointFormat, quantize_obb
from repro.geometry.obb import OBB
from repro.robot.model import RobotModel

if TYPE_CHECKING:  # runtime import would be circular through repro.config
    from repro.config import ReproConfig

#: Default C-space discretization step (radians of joint-space distance).
DEFAULT_MOTION_STEP = 0.05


def interpolate_motion(q_start, q_end, step: float = DEFAULT_MOTION_STEP) -> np.ndarray:
    """Discrete poses along the straight C-space segment, endpoints included.

    The number of interior samples scales with the Euclidean joint-space
    distance so the inter-pose spacing never exceeds ``step``.
    """
    q_start = np.asarray(q_start, dtype=float)
    q_end = np.asarray(q_end, dtype=float)
    if q_start.shape != q_end.shape:
        raise ValueError("start and end configurations must have the same shape")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    distance = float(np.linalg.norm(q_end - q_start))
    n_segments = max(1, int(math.ceil(distance / step)))
    return np.linspace(q_start, q_end, n_segments + 1)


@dataclass
class PoseCheckResult:
    """Outcome of one pose check, with per-link traversal traces."""

    collision: bool
    link_traces: List[TraversalTrace] = field(default_factory=list)

    @property
    def links_checked(self) -> int:
        return len(self.link_traces)


@dataclass
class MotionCollisionResult:
    """Outcome of a sequential motion check with early exit."""

    collision: bool
    first_colliding_index: Optional[int]
    poses_checked: int
    total_poses: int


class _CachedPoseOutcome:
    """Batch-outcome facade assembled from cache hits plus fresh rows.

    Mirrors the :class:`~repro.collision.batch.BatchPoseOutcome` surface the
    stats-charging call sites use (``hits`` + ``record(stats, poses=...)``);
    ``record`` replays each selected row's stored per-pose delta instead of
    summing outcome arrays — same integer totals, by construction.
    """

    __slots__ = ("hits", "_deltas")

    def __init__(self, hits: np.ndarray, deltas: List[Optional[CollisionStats]]):
        self.hits = hits
        self._deltas = deltas

    def __len__(self) -> int:
        return len(self.hits)

    def record(self, stats: CollisionStats, poses=None) -> None:
        if poses is None:
            rows = range(len(self.hits))
        elif isinstance(poses, slice):
            rows = range(*poses.indices(len(self.hits)))
        else:
            rows = poses
        for row in rows:
            delta = self._deltas[int(row)]
            if delta is not None:
                stats.merge(delta)


class RobotEnvironmentChecker:
    """Collision checker binding a robot model to an environment octree."""

    def __init__(
        self,
        robot: RobotModel,
        octree: Octree,
        config: CascadeConfig = DEFAULT_CASCADE,
        fixed_point: Optional[FixedPointFormat] = DEFAULT_FORMAT,
        motion_step: float = DEFAULT_MOTION_STEP,
        stats: Optional[CollisionStats] = None,
        collect_stats: bool = True,
        backend: Optional[str] = None,
        fault_injector=None,
        cache: Optional[CollisionCache] = None,
    ):
        if backend is None:
            backend = "scalar"
        else:
            warnings.warn(
                "passing backend= as a string to RobotEnvironmentChecker is "
                "deprecated; build checkers with "
                "RobotEnvironmentChecker.from_config(robot, octree, ReproConfig"
                "(backend=...)) or through repro.api",
                DeprecationWarning,
                stacklevel=2,
            )
        if backend not in ("scalar", "batch"):
            raise ValueError(
                f"unknown backend {backend!r}; expected 'scalar' or 'batch'"
            )
        self.robot = robot
        self.octree = octree
        self.config = config
        self.collider = OBBOctreeCollider(octree, config)
        self.fixed_point = fixed_point
        if motion_step <= 0:
            raise ValueError(f"motion_step must be positive, got {motion_step}")
        self.motion_step = motion_step
        self.stats = stats if stats is not None else CollisionStats()
        # Planners that only need boolean verdicts can skip the per-test
        # operation accounting (it costs real time in the hot loop).
        self.collect_stats = collect_stats
        # "batch" routes pose/motion checks through the vectorized pipeline
        # (repro.collision.batch); verdicts and stats stay bit-identical.
        self.backend = backend
        self._batch_evaluator = None
        self._shared_scratch = None
        # Optional repro.resilience.faults.FaultInjector: when attached and
        # enabled with a bit-flip model, quantized link OBBs may have one
        # raw fixed-point bit flipped (an SEU in the 16-bit datapath).  The
        # hook costs one predicate when absent or disabled.
        self.fault_injector = fault_injector
        # Optional octree-versioned verdict cache (repro.collision.cache).
        # Bypassed whenever bit-flip injection is active — corrupted-OBB
        # verdicts are not a function of the pose alone.
        self.cache = cache
        if cache is not None:
            cache.attach(collect_stats, self.pose_footprint)

    @classmethod
    def from_config(
        cls,
        robot: RobotModel,
        octree: Octree,
        config: "ReproConfig",
        cascade: CascadeConfig = DEFAULT_CASCADE,
        fixed_point: Optional[FixedPointFormat] = DEFAULT_FORMAT,
        stats: Optional[CollisionStats] = None,
        fault_injector=None,
        cache: Optional[CollisionCache] = None,
        telemetry=None,
    ) -> "RobotEnvironmentChecker":
        """Build a checker from a :class:`repro.config.ReproConfig`.

        This is the non-deprecated construction path: backend, motion step,
        and stats collection come from the typed config, and a
        :class:`CollisionCache` is created from ``config.cache`` when
        enabled (unless an explicit ``cache`` instance is shared in).
        """
        if cache is None and config.cache.enabled:
            cache = CollisionCache(
                quantum=config.cache.quantum,
                max_entries=config.cache.max_entries,
                telemetry=telemetry,
            )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return cls(
                robot,
                octree,
                cascade,
                fixed_point,
                motion_step=config.motion_step,
                stats=stats,
                collect_stats=config.collect_stats,
                backend=config.backend,
                fault_injector=fault_injector,
                cache=cache,
            )

    def _bit_flips_active(self) -> bool:
        """Whether the quantized-OBB corruption hook can fire."""
        injector = self.fault_injector
        return (
            injector is not None
            and injector.enabled
            and injector.models.bit_flip_rate > 0.0
            and self.fixed_point is not None
        )

    @property
    def shared_scratch(self):
        """The checker-owned :class:`~repro.collision.batch.SoAScratch`.

        One scratch instance is shared between the batch collision
        pipeline's FK/OBB intermediates and the planners' SoA node stores
        (:class:`~repro.planning.nodestore.NodeStore` query temporaries),
        so a full planning stack keeps a single set of warm buffers.  It
        survives :meth:`update_octree` (the batch evaluator is rebuilt
        around it), keeping the buffers warm across environment swaps.
        """
        if self._shared_scratch is None:
            from repro.collision.batch import SoAScratch

            self._shared_scratch = SoAScratch()
        return self._shared_scratch

    @property
    def batch_evaluator(self):
        """The lazily built vectorized pipeline behind ``backend="batch"``."""
        if self._batch_evaluator is None:
            from repro.collision.batch import BatchPoseEvaluator

            self._batch_evaluator = BatchPoseEvaluator(
                self.robot,
                self.octree,
                self.config,
                self.fixed_point,
                scratch=self.shared_scratch,
            )
        return self._batch_evaluator

    @contextmanager
    def divert_stats(self, stats: Optional[CollisionStats] = None):
        """Temporarily charge all work to a different ``CollisionStats``.

        Query engines use this when they must resolve ground truth beyond
        what the sequential query semantics would have executed (e.g.
        filling a phase's remaining poses before an inline SAS simulation):
        the extra work is real, but it must not distort the planner-visible
        operation counts.  Yields the substitute stats object.
        """
        if stats is None:
            stats = CollisionStats()
        previous = self.stats
        self.stats = stats
        try:
            yield stats
        finally:
            self.stats = previous

    def link_obbs(self, q) -> List[OBB]:
        """World-space (quantized) link OBBs for configuration ``q``."""
        obbs = self.robot.link_obbs(q)
        if self.fixed_point is not None:
            obbs = [quantize_obb(obb, self.fixed_point) for obb in obbs]
            injector = self.fault_injector
            if injector is not None and injector.enabled:
                obbs = [
                    injector.corrupt_obb(obb, self.fixed_point) for obb in obbs
                ]
        return obbs

    def pose_footprint(self, q):
        """AABB over the (quantized, uncorrupted) link OBBs at ``q``.

        This bounds the query volume the octree traversal tests against, so
        the cache can prove an environment update cannot have changed a
        cached verdict.  Fault corruption is deliberately excluded — the
        cache is bypassed while bit flips are active.
        """
        obbs = self.robot.link_obbs(q)
        if self.fixed_point is not None:
            obbs = [quantize_obb(obb, self.fixed_point) for obb in obbs]
        return footprint_of_obbs(obbs)

    def _cache_active(self) -> bool:
        return self.cache is not None and not self._bit_flips_active()

    def check_pose(self, q) -> bool:
        """True when the robot collides with the environment at ``q``."""
        if self._cache_active():
            return self._check_pose_cached(q)
        if self.backend == "batch" and not self._bit_flips_active():
            return bool(self.check_poses(q)[0])
        self.stats.pose_checks += 1
        stats = self.stats if self.collect_stats else None
        for obb in self.link_obbs(q):
            if self.collider.collides(obb, stats=stats):
                return True
        return False

    def _check_pose_cached(self, q) -> bool:
        """One pose check through the verdict cache.

        A hit charges ``pose_checks`` and replays the stored per-pose stats
        delta; a miss evaluates fresh (scalar or batched, per backend),
        charges normally, and stores the verdict with its delta — so the
        recorded stats equal a cache-off run bit for bit.
        """
        cache = self.cache
        entry = cache.lookup(q)
        self.stats.pose_checks += 1
        if entry is not None:
            if self.collect_stats:
                self.stats.merge(entry.stats)
            return entry.verdict
        delta = CollisionStats()
        if self.backend == "batch":
            outcome = self.batch_evaluator.evaluate(
                np.asarray(q, dtype=float)[None, :]
            )
            verdict = bool(outcome.hits[0])
            if self.collect_stats:
                outcome.record(delta, poses=[0])
        else:
            verdict = False
            stats = delta if self.collect_stats else None
            for obb in self.link_obbs(q):
                if self.collider.collides(obb, stats=stats):
                    verdict = True
                    break
        if self.collect_stats:
            self.stats.merge(delta)
        cache.store(q, verdict, delta)
        return verdict

    def check_poses(self, qs) -> np.ndarray:
        """Boolean collision verdicts for an ``(N, dof)`` pose batch.

        With ``backend="batch"`` the whole batch is one vectorized dispatch
        through :class:`repro.collision.batch.BatchPoseEvaluator`; the scalar
        backend falls back to a pose-at-a-time loop.  Either way the verdicts
        and the recorded stats equal N scalar ``check_pose`` calls.
        """
        qs = np.asarray(qs, dtype=float)
        if qs.ndim == 1:
            qs = qs[None, :]
        if self.backend != "batch" or self._bit_flips_active():
            # Bit-flip injection lives in the scalar quantized-OBB path;
            # the vectorized pipeline would bypass it.  The scalar loop is
            # verdict- and stats-identical by the batch backend's contract,
            # so falling back only changes wall clock (faults are active —
            # bit-identity with the healthy run is already off the table).
            return np.fromiter(
                (self.check_pose(q) for q in qs), dtype=bool, count=len(qs)
            )
        self.stats.pose_checks += len(qs)
        outcome = self.evaluate_poses(qs, need_work=self.collect_stats)
        if self.collect_stats:
            outcome.record(self.stats)
        return outcome.hits

    def evaluate_poses(self, qs, need_work: bool = True):
        """Batch-evaluate poses through the cache (when one is attached).

        The cache-aware twin of ``self.batch_evaluator.evaluate``: cached
        rows skip evaluation, fresh rows go through the vectorized pipeline
        in one dispatch and are inserted.  Returns an outcome with the same
        ``hits``/``record(stats, poses=...)`` surface as
        :class:`~repro.collision.batch.BatchPoseOutcome`, where ``record``
        replays each selected row's per-pose delta — identical counts to a
        cache-off evaluation.  Does not touch ``pose_checks`` (caller-owned).

        ``need_work=False`` runs the verdict-only batch pipeline (identical
        hits, zeroed work) — callers pass their own ``collect_stats`` so the
        flag never drops counters anyone would have read.  With a cache
        attached this matches the existing contract: stats-off runs already
        store empty per-pose deltas.
        """
        qs = np.asarray(qs, dtype=float)
        if qs.ndim == 1:
            qs = qs[None, :]
        if not self._cache_active():
            return self.batch_evaluator.evaluate(qs, need_work=need_work)
        cache = self.cache
        n = len(qs)
        hits = np.zeros(n, dtype=bool)
        deltas: List[Optional[CollisionStats]] = [None] * n
        fresh: List[int] = []
        for i, q in enumerate(qs):
            entry = cache.lookup(q)
            if entry is None:
                fresh.append(i)
            else:
                hits[i] = entry.verdict
                deltas[i] = entry.stats
        if fresh:
            outcome = self.batch_evaluator.evaluate(qs[fresh], need_work=need_work)
            hits[fresh] = outcome.hits
            for row, i in enumerate(fresh):
                delta = CollisionStats()
                if self.collect_stats:
                    outcome.record(delta, poses=[row])
                deltas[i] = delta
                cache.store(qs[i], bool(outcome.hits[row]), delta)
        return _CachedPoseOutcome(hits, deltas)

    def check_pose_detailed(self, q) -> PoseCheckResult:
        """Pose check that keeps per-link traversal traces (for timing sims).

        Early exit: links after the first colliding one are not checked,
        matching the Result Collector's kill signal (Section 5.2).
        """
        self.stats.pose_checks += 1
        traces: List[TraversalTrace] = []
        collision = False
        for obb in self.link_obbs(q):
            trace = self.collider.collide(obb, stats=self.stats)
            traces.append(trace)
            if trace.hit:
                collision = True
                break
        return PoseCheckResult(collision=collision, link_traces=traces)

    def motion_poses(self, q_start, q_end) -> np.ndarray:
        return interpolate_motion(q_start, q_end, self.motion_step)

    def check_motion(self, q_start, q_end) -> MotionCollisionResult:
        """Sequential motion check: stop at the first colliding pose.

        The batch backend evaluates every discrete pose in one vectorized
        call, then charges only the pose prefix the scalar early exit would
        have executed, so the recorded stats stay identical.
        """
        self.stats.motion_checks += 1
        poses = self.motion_poses(q_start, q_end)
        if self.backend == "batch" and not self._bit_flips_active():
            outcome = self.evaluate_poses(poses)
            collision = bool(outcome.hits.any())
            first = int(np.argmax(outcome.hits)) if collision else None
            checked = first + 1 if collision else len(poses)
            self.stats.pose_checks += checked
            if self.collect_stats:
                outcome.record(self.stats, poses=slice(0, checked))
            return MotionCollisionResult(
                collision=collision,
                first_colliding_index=first,
                poses_checked=checked,
                total_poses=len(poses),
            )
        for index, pose in enumerate(poses):
            if self.check_pose(pose):
                return MotionCollisionResult(
                    collision=True,
                    first_colliding_index=index,
                    poses_checked=index + 1,
                    total_poses=len(poses),
                )
        return MotionCollisionResult(
            collision=False,
            first_colliding_index=None,
            poses_checked=len(poses),
            total_poses=len(poses),
        )

    def motion_is_free(self, q_start, q_end) -> bool:
        return not self.check_motion(q_start, q_end).collision

    def update_octree(self, octree: Octree) -> int:
        """Swap in an updated environment octree (same bounds).

        Rebuilds the scalar collider and drops the lazily built batch
        pipeline; an attached cache is selectively invalidated from the
        changed-region boxes (:func:`repro.env.diff.octree_delta_regions`)
        so entries the update provably cannot affect survive.  Returns the
        number of cache entries dropped (0 without a cache).
        """
        from repro.env.diff import octree_delta_regions

        regions = octree_delta_regions(self.octree, octree)
        self.octree = octree
        self.collider = OBBOctreeCollider(octree, self.config)
        self._batch_evaluator = None
        if self.cache is not None:
            return self.cache.invalidate_regions(regions)
        return 0

    def sample_free_configuration(
        self, rng: np.random.Generator, max_attempts: int = 200
    ) -> np.ndarray:
        """A random collision-free configuration within joint limits."""
        for _ in range(max_attempts):
            q = self.robot.random_configuration(rng)
            if not self.check_pose(q):
                return q
        raise RuntimeError(
            f"no collision-free configuration found in {max_attempts} samples"
        )
