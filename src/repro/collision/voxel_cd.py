"""Voxelized OBB collision detection (the CODAcc-style baseline).

Section 7.2.2 compares the OOCD against CODAcc (Bakhshalipour et al.),
which rasterizes the robot's OBB into voxels and issues one occupancy read
per voxel against a voxelized environment.  The paper's approximate
numbers for the Jaco2: 2.56 cm voxels over a 180 cm extent need 32 KB of
environment storage and 30-154 memory accesses per OBB, versus the OOCD's
0.75 KB octree and < 40 cycles.

This module implements that baseline behaviorally so the comparison can be
regenerated: rasterization cost scales with the voxel resolution (the
paper's scalability argument against voxelization), while the verdict
stays conservative-exact relative to the voxelized environment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.env.voxel import VoxelGrid
from repro.geometry.obb import OBB


@dataclass(frozen=True)
class VoxelCDResult:
    """Verdict and cost of one voxelized OBB-environment query."""

    hit: bool
    voxels_rasterized: int
    memory_accesses: int

    @property
    def cycles(self) -> int:
        """One rasterization step + one occupancy read per voxel, with the
        early exit CODAcc also has (stop at the first occupied voxel)."""
        return self.voxels_rasterized + self.memory_accesses


class VoxelizedCollisionDetector:
    """OBB-vs-voxel-grid collision detection by OBB rasterization."""

    def __init__(self, grid: VoxelGrid):
        self.grid = grid

    @property
    def storage_bits(self) -> int:
        """Environment storage: one bit per voxel."""
        return self.grid.resolution**3

    @property
    def storage_bytes(self) -> int:
        return (self.storage_bits + 7) // 8

    def rasterize_obb(self, obb: OBB) -> np.ndarray:
        """Indices of grid voxels the OBB touches, shape (n, 3).

        Conservative rasterization: candidate voxels come from the OBB's
        enclosing AABB; a candidate is kept when its center lies inside the
        OBB expanded by half a voxel diagonal (never misses a touched
        voxel, may include grazing neighbors — the same conservatism a
        hardware rasterizer uses).
        """
        grid = self.grid
        size = grid.voxel_size
        enclosing = obb.enclosing_aabb()
        lo = np.floor((enclosing.minimum - grid.bounds.minimum) / size).astype(int)
        hi = np.ceil((enclosing.maximum - grid.bounds.minimum) / size).astype(int)
        lo = np.clip(lo, 0, grid.resolution)
        hi = np.clip(hi, 0, grid.resolution)
        if np.any(hi <= lo):
            return np.empty((0, 3), dtype=int)
        axes = [np.arange(lo[d], hi[d]) for d in range(3)]
        ii, jj, kk = np.meshgrid(*axes, indexing="ij")
        indices = np.stack([ii.ravel(), jj.ravel(), kk.ravel()], axis=1)
        centers = grid.bounds.minimum + (indices + 0.5) * size
        # Inside test against the OBB expanded by half the voxel diagonal.
        margin = 0.5 * size * np.sqrt(3.0)
        local = (centers - obb.center) @ obb.rotation
        inside = np.all(np.abs(local) <= obb.half_extents + margin, axis=1)
        return indices[inside]

    def query(self, obb: OBB) -> VoxelCDResult:
        """Collision query with CODAcc's early exit on the first hit."""
        indices = self.rasterize_obb(obb)
        occupancy = self.grid.occupancy
        accesses = 0
        hit = False
        for i, j, k in indices:
            accesses += 1
            if occupancy[i, j, k]:
                hit = True
                break
        return VoxelCDResult(
            hit=hit,
            voxels_rasterized=len(indices),
            memory_accesses=accesses,
        )
