"""Collision detection: the cascaded early-exit flow and octree traversal.

This package implements the behavioral side of the CECDU (Section 4): the
cascaded intersection test of Figure 10 (bounding-sphere filter, inscribed-
sphere filter, 6-5-4 staged separating-axis test), the OBB-vs-octree
traversal the OOCD hardware performs, and the robot-vs-environment checker
that planners call.  Every test records operation counts in a
:class:`CollisionStats` so the energy model can price the work.
"""

from repro.collision.batch import (
    BatchCascadeOutcome,
    BatchOBBs,
    BatchOctreeCollider,
    BatchPoseEvaluator,
    BatchPoseOutcome,
    BatchTraversalOutcome,
    batch_cascade,
    batch_forward_kinematics,
    batch_link_obbs,
    batch_quantize_obbs,
)
from repro.collision.cache import CollisionCache, footprint_of_obbs
from repro.collision.cascade import (
    CascadeConfig,
    CascadeResult,
    ExitStage,
    cascade_intersect,
)
from repro.collision.checker import MotionCollisionResult, RobotEnvironmentChecker
from repro.collision.octree_cd import NodeVisit, OBBOctreeCollider, TraversalTrace
from repro.collision.stats import CollisionStats
from repro.collision.voxel_cd import VoxelCDResult, VoxelizedCollisionDetector

__all__ = [
    "CascadeConfig",
    "CascadeResult",
    "ExitStage",
    "cascade_intersect",
    "CollisionStats",
    "CollisionCache",
    "footprint_of_obbs",
    "OBBOctreeCollider",
    "TraversalTrace",
    "NodeVisit",
    "RobotEnvironmentChecker",
    "MotionCollisionResult",
    "VoxelizedCollisionDetector",
    "VoxelCDResult",
    "BatchOBBs",
    "BatchCascadeOutcome",
    "BatchTraversalOutcome",
    "BatchPoseOutcome",
    "BatchOctreeCollider",
    "BatchPoseEvaluator",
    "batch_cascade",
    "batch_forward_kinematics",
    "batch_link_obbs",
    "batch_quantize_obbs",
]
