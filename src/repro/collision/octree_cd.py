"""OBB-vs-octree collision detection: the behavioral twin of the OOCD.

The hardware Octree Traverser (Figure 14b) starts from the root address,
reads node words from SRAM, runs the cascaded intersection test against each
occupied octant, pushes the child addresses of intersecting PARTIAL octants
onto the Node Queue, and reports a collision as soon as a FULL octant
intersects.  This module performs the same traversal and records a
:class:`TraversalTrace` that the cycle-level OOCD simulator replays for
timing and energy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional, Tuple

from repro.collision.cascade import (
    CascadeConfig,
    CascadeResult,
    DEFAULT_CASCADE,
    cascade_intersect_scalars,
)
from repro.geometry.sat import extract_obb_scalars
from repro.collision.stats import CollisionStats
from repro.env.octree import OctantState, Octree
from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB


class OctantTest(NamedTuple):
    """One cascaded intersection test against an octant of a visited node."""

    octant: int
    state: OctantState
    result: CascadeResult


class NodeVisit(NamedTuple):
    """One node-word fetch plus the intersection tests it triggered."""

    address: int
    tests: Tuple[OctantTest, ...]


@dataclass
class TraversalTrace:
    """The full record of one OBB-octree collision query."""

    hit: bool = False
    visits: List[NodeVisit] = field(default_factory=list)

    @property
    def node_visits(self) -> int:
        return len(self.visits)

    @property
    def intersection_tests(self) -> int:
        return sum(len(v.tests) for v in self.visits)

    @property
    def multiplies(self) -> int:
        return sum(t.result.multiplies for v in self.visits for t in v.tests)

    def all_tests(self) -> List[CascadeResult]:
        return [t.result for v in self.visits for t in v.tests]


class OBBOctreeCollider:
    """Breadth-first OBB-octree collision detection with early exit."""

    def __init__(self, octree: Octree, config: CascadeConfig = DEFAULT_CASCADE):
        self.octree = octree
        self.config = config

    def collide(
        self,
        obb: OBB,
        stats: Optional[CollisionStats] = None,
        record_trace: bool = True,
    ) -> TraversalTrace:
        """Collision query for one OBB; returns the traversal trace.

        ``record_trace=False`` skips building per-visit records (the verdict
        and stats are unaffected) for callers that only need the boolean.
        """
        trace = TraversalTrace()
        octree = self.octree
        pre_obb = extract_obb_scalars(obb)
        config = self.config
        bounds = octree.bounds
        root_box = (
            float(bounds.center[0]),
            float(bounds.center[1]),
            float(bounds.center[2]),
            float(bounds.half_extents[0]),
            float(bounds.half_extents[1]),
            float(bounds.half_extents[2]),
        )
        full_state = OctantState.FULL
        queue: deque = deque()
        queue.append((0, root_box))
        while queue:
            address, box = queue.popleft()
            node = octree.nodes[address]
            if stats is not None:
                stats.node_visits += 1
                stats.sram_reads += 1
            bx, by, bz, hx, hy, hz = box
            qx, qy, qz = hx / 2.0, hy / 2.0, hz / 2.0
            tests: List[OctantTest] = []
            hit_full = False
            for octant in node.occupied_octants():
                state = node.states[octant]
                octant_box = (
                    bx + (qx if octant & 1 else -qx),
                    by + (qy if octant & 2 else -qy),
                    bz + (qz if octant & 4 else -qz),
                    qx,
                    qy,
                    qz,
                )
                result = cascade_intersect_scalars(pre_obb, octant_box, config, stats)
                if record_trace:
                    tests.append(OctantTest(octant, state, result))
                if not result.hit:
                    continue
                if state is full_state:
                    hit_full = True
                    break
                queue.append((node.children[octant], octant_box))
            if record_trace:
                trace.visits.append(NodeVisit(address, tuple(tests)))
            if hit_full:
                trace.hit = True
                return trace
        trace.hit = False
        return trace

    def collides(self, obb: OBB, stats: Optional[CollisionStats] = None) -> bool:
        """Boolean-only collision query."""
        return self.collide(obb, stats=stats, record_trace=False).hit


def reference_obb_octree_hit(obb: OBB, octree: Octree) -> bool:
    """Slow reference: test the OBB against every occupied leaf box.

    Used by tests to validate the traversal's early exits — the cascaded,
    tree-pruned query must agree with the exhaustive leaf sweep.
    """
    from repro.geometry.sat import obb_aabb_overlap

    return any(obb_aabb_overlap(obb, leaf) for leaf in octree.occupied_leaves())
