"""The cascaded early-exit OBB-AABB intersection test (Figure 10).

Test order:

1. *Bounding-sphere filter* — if the OBB's bounding sphere misses the AABB
   the boxes cannot collide (filters "far apart" cases for 3 multiplies).
2. *Inscribed-sphere filter* — if the OBB's inscribed sphere overlaps the
   AABB the boxes certainly collide (filters "significantly overlapping"
   cases, the dominant cost after the bounding filter).
3. *Staged separating-axis test* — the 15 axes run as stages of 6, 5, and 4;
   a later stage only executes when the previous one found no separating
   axis.  A stage executes all of its axis tests in parallel, so its full
   multiply cost is spent even when its first axis separates.

All three steps are exact, so the cascade's verdict always equals a full
15-axis SAT — only the work performed differs.

This is the innermost loop of every simulation, so the core
(:func:`cascade_intersect_scalars`) operates on pre-extracted plain floats;
:func:`cascade_intersect` is the object-level convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import NamedTuple, Optional, Tuple

from repro.collision.stats import CollisionStats
from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB
from repro.geometry.sat import (
    SAT_AXIS_MULTIPLIES,
    extract_obb_scalars,
    stage_axis_ids,
    test_axis_scalars,
)
from repro.geometry.sphere import SPHERE_AABB_MULTIPLIES


class SATMode(Enum):
    """How the separating-axis tests execute on the Intersection Unit."""

    STAGED = "staged"  # 6-5-4 stages, one stage per cycle (the proposal)
    SEQUENTIAL = "sequential"  # one axis per cycle, per-axis early exit
    PARALLEL = "parallel"  # all 15 axes in one cycle, no early exit


class ExitStage(Enum):
    """Where the cascade terminated (the Figure 18b breakdown categories)."""

    BOUNDING_SPHERE = "bounding_sphere"  # no collision, far apart
    INSCRIBED_SPHERE = "inscribed_sphere"  # collision, deep overlap
    SAT_STAGE_1 = "sat_stage_1"  # separating axis in axes 1-6
    SAT_STAGE_2 = "sat_stage_2"  # separating axis in axes 7-11
    SAT_STAGE_3 = "sat_stage_3"  # separating axis in axes 12-15
    SAT_EXHAUSTED = "sat_exhausted"  # no separating axis: collision


@dataclass(frozen=True)
class CascadeConfig:
    """Which cascade features are enabled, and how the SAT executes."""

    bounding_sphere: bool = True
    inscribed_sphere: bool = True
    sat_mode: SATMode = SATMode.STAGED
    stages: Tuple[int, ...] = (6, 5, 4)

    def __post_init__(self):
        stage_axis_ids(self.stages)  # validates sizes

    @property
    def has_sphere_filters(self) -> bool:
        return self.bounding_sphere or self.inscribed_sphere


#: The full proposed configuration.
DEFAULT_CASCADE = CascadeConfig()
#: SAT only, no filters (the Figure 8a baselines).
SAT_ONLY_SEQUENTIAL = CascadeConfig(
    bounding_sphere=False, inscribed_sphere=False, sat_mode=SATMode.SEQUENTIAL
)
SAT_ONLY_PARALLEL = CascadeConfig(
    bounding_sphere=False, inscribed_sphere=False, sat_mode=SATMode.PARALLEL
)
SAT_ONLY_STAGED = CascadeConfig(
    bounding_sphere=False, inscribed_sphere=False, sat_mode=SATMode.STAGED
)


class CascadeResult(NamedTuple):
    """Verdict plus the work and timing of one cascaded intersection test.

    ``exit_cycle`` follows the multi-cycle Intersection Unit model: the
    sphere filters share cycle 1, and each executed SAT step adds cycles
    (one per stage when staged, one per axis when sequential, one total
    when parallel).
    """

    hit: bool
    exit_stage: ExitStage
    exit_cycle: int
    multiplies: int
    sat_axes_tested: int
    separating_axis: Optional[int]


_STAGE_EXITS = (ExitStage.SAT_STAGE_1, ExitStage.SAT_STAGE_2, ExitStage.SAT_STAGE_3)
_SAT_FULL_MULTIPLIES = sum(SAT_AXIS_MULTIPLIES)


def _stage_multiplies(stages: Tuple[int, ...]) -> Tuple[int, ...]:
    out = []
    for ids in stage_axis_ids(stages):
        out.append(sum(SAT_AXIS_MULTIPLIES[axis - 1] for axis in ids))
    return tuple(out)


def _sphere_box_separated(cx, cy, cz, bx, by, bz, hx, hy, hz, radius) -> bool:
    """True when a sphere at (cx, cy, cz) misses the box (3 multiplies)."""
    dx = abs(cx - bx) - hx
    dy = abs(cy - by) - hy
    dz = abs(cz - bz) - hz
    dist_sq = 0.0
    if dx > 0.0:
        dist_sq += dx * dx
    if dy > 0.0:
        dist_sq += dy * dy
    if dz > 0.0:
        dist_sq += dz * dz
    return dist_sq > radius * radius


def cascade_intersect_scalars(
    pre_obb,
    box6,
    config: CascadeConfig = DEFAULT_CASCADE,
    stats: Optional[CollisionStats] = None,
) -> CascadeResult:
    """Cascade on pre-extracted scalars.

    ``pre_obb`` comes from :func:`repro.geometry.sat.extract_obb_scalars`;
    ``box6`` is the AABB as ``(cx, cy, cz, hx, hy, hz)``.
    """
    rot9, b3, c3, r_bound, r_inscribed = pre_obb
    bx, by, bz, hx, hy, hz = box6
    cx, cy, cz = c3
    multiplies = 0
    cycle = 0

    if config.has_sphere_filters:
        cycle = 1
    if config.bounding_sphere:
        multiplies += SPHERE_AABB_MULTIPLIES
        if stats is not None:
            stats.sphere_tests += 1
        if _sphere_box_separated(cx, cy, cz, bx, by, bz, hx, hy, hz, r_bound):
            result = CascadeResult(
                False, ExitStage.BOUNDING_SPHERE, cycle, multiplies, 0, None
            )
            _record(stats, result)
            return result
    if config.inscribed_sphere:
        multiplies += SPHERE_AABB_MULTIPLIES
        if stats is not None:
            stats.sphere_tests += 1
        if not _sphere_box_separated(cx, cy, cz, bx, by, bz, hx, hy, hz, r_inscribed):
            result = CascadeResult(
                True, ExitStage.INSCRIBED_SPHERE, cycle, multiplies, 0, None
            )
            _record(stats, result)
            return result

    a3 = (hx, hy, hz)
    t3 = (cx - bx, cy - by, cz - bz)
    result = _run_sat(rot9, a3, b3, t3, config, multiplies, cycle)
    _record(stats, result)
    return result


def cascade_intersect(
    obb: OBB,
    aabb: AABB,
    config: CascadeConfig = DEFAULT_CASCADE,
    stats: Optional[CollisionStats] = None,
) -> CascadeResult:
    """Run the cascaded early-exit intersection test of Figure 10."""
    pre = extract_obb_scalars(obb)
    box6 = (
        float(aabb.center[0]),
        float(aabb.center[1]),
        float(aabb.center[2]),
        float(aabb.half_extents[0]),
        float(aabb.half_extents[1]),
        float(aabb.half_extents[2]),
    )
    return cascade_intersect_scalars(pre, box6, config, stats)


def _run_sat(rot9, a3, b3, t3, config, multiplies, base_cycle) -> CascadeResult:
    if config.sat_mode is SATMode.SEQUENTIAL:
        for axis in range(1, 16):
            multiplies += SAT_AXIS_MULTIPLIES[axis - 1]
            if test_axis_scalars(axis, rot9, a3, b3, t3):
                return CascadeResult(
                    False,
                    _stage_of_axis(axis, config.stages),
                    base_cycle + axis,
                    multiplies,
                    axis,
                    axis,
                )
        return CascadeResult(
            True, ExitStage.SAT_EXHAUSTED, base_cycle + 15, multiplies, 15, None
        )

    if config.sat_mode is SATMode.PARALLEL:
        # All 15 axis tests execute in one cycle regardless of the outcome.
        multiplies += _SAT_FULL_MULTIPLIES
        separating = None
        for axis in range(1, 16):
            if test_axis_scalars(axis, rot9, a3, b3, t3):
                separating = axis
                break
        if separating is None:
            return CascadeResult(
                True, ExitStage.SAT_EXHAUSTED, base_cycle + 1, multiplies, 15, None
            )
        return CascadeResult(
            False,
            _stage_of_axis(separating, config.stages),
            base_cycle + 1,
            multiplies,
            15,
            separating,
        )

    # Staged (6-5-4 by default) execution.
    stage_ids = stage_axis_ids(config.stages)
    stage_costs = _stage_multiplies(config.stages)
    cycle = base_cycle
    axes_tested = 0
    for index, (ids, cost) in enumerate(zip(stage_ids, stage_costs)):
        cycle += 1
        multiplies += cost
        axes_tested += len(ids)
        for axis in ids:
            if test_axis_scalars(axis, rot9, a3, b3, t3):
                return CascadeResult(
                    False,
                    _STAGE_EXITS[min(index, len(_STAGE_EXITS) - 1)],
                    cycle,
                    multiplies,
                    axes_tested,
                    axis,
                )
    return CascadeResult(True, ExitStage.SAT_EXHAUSTED, cycle, multiplies, axes_tested, None)


def _stage_of_axis(axis: Optional[int], stages: Tuple[int, ...]) -> ExitStage:
    cumulative = 0
    for index, size in enumerate(stages):
        cumulative += size
        if axis <= cumulative:
            return _STAGE_EXITS[min(index, len(_STAGE_EXITS) - 1)]
    return _STAGE_EXITS[-1]


def _record(stats: Optional[CollisionStats], result: CascadeResult) -> None:
    if stats is None:
        return
    stats.intersection_tests += 1
    stats.multiplies += result.multiplies
    stats.sat_axes_tested += result.sat_axes_tested
    stats.cascade_exits[result.exit_stage.value] += 1
