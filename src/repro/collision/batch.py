"""Vectorized batch collision pipeline: the Figure-10 cascade over pose tensors.

The scalar modules (:mod:`repro.collision.cascade`,
:mod:`repro.collision.octree_cd`, :mod:`repro.collision.checker`) evaluate one
OBB-AABB pair at a time through Python loops — the faithful behavioral twin of
one CECDU, but orders of magnitude slower than the arithmetic requires.  This
module evaluates the same cascade over an ``(N_poses x N_links x
N_leaf_candidates)`` batch of pairs in a handful of numpy calls:

* :func:`batch_forward_kinematics` / :func:`batch_link_obbs` — the OBB
  Generation Unit over a whole pose batch (DH chain as stacked 4x4 matmuls,
  fixed-point quantization as array ops);
* :func:`batch_cascade` — bounding-sphere filter, inscribed-sphere filter and
  the staged/sequential/parallel SAT over M pairs at once;
* :class:`BatchOctreeCollider` — level-synchronous octree traversal that
  gathers every frontier octant of every query into one cascade call per tree
  level, then replays the scalar traversal's early-exit accounting;
* :class:`BatchPoseEvaluator` — the full robot-vs-environment pose check,
  consumed by ``RobotEnvironmentChecker(backend="batch")``.

**Contract: bit-identical to the scalar cascade.**  For the same inputs the
batch engine returns the same booleans, the same per-pair
:class:`~repro.collision.cascade.ExitStage`, and the same
:class:`~repro.collision.stats.CollisionStats` operation counts as the scalar
path — the energy model (:mod:`repro.accel.energy`) prices those counts, so
"approximately equal" is not good enough.  Equality holds because every
floating-point operation is replicated with the same operand order:

* numpy elementwise ufuncs are IEEE-754 double ops, identical to Python float
  arithmetic, and the expressions here copy the scalar source's association;
* stacked ``(N,4,4) @ (N,4,4)`` matmul produces the same bits as the per-slice
  2-D ``@`` the scalar FK uses (both dispatch to the same gemm kernel);
* ``np.rint`` matches Python ``round`` (both half-to-even), so the
  fixed-point snapping grids agree;
* the bounding-sphere radius uses the ``(M,1,3) @ (M,3,1)`` stacked product,
  which reproduces ``np.dot(h, h)`` (BLAS ddot) bit-for-bit.

The differential harness (``tests/differential.py``) enforces the contract
pair-by-pair; new backends (GPU, fixed-point, octree variants) should be run
through the same harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.collision.cascade import (
    CascadeConfig,
    DEFAULT_CASCADE,
    ExitStage,
    SATMode,
)
from repro.collision.stats import CollisionStats
from repro.env.octree import OctantState, Octree
from repro.geometry.fixed_point import DEFAULT_FORMAT, FixedPointFormat, ROTATION_FORMAT
from repro.geometry.obb import OBB
from repro.geometry.sat import SAT_AXIS_MULTIPLIES, extract_obb_scalars, stage_axis_ids
from repro.geometry.sphere import SPHERE_AABB_MULTIPLIES
from repro.robot.model import RobotModel

# Must match repro.geometry.sat._EPS: the cross-axis degeneracy guard.
_EPS = 1e-9

#: Canonical exit-stage order; the ``exit_code`` arrays index into this.
EXIT_STAGE_ORDER: Tuple[ExitStage, ...] = (
    ExitStage.BOUNDING_SPHERE,
    ExitStage.INSCRIBED_SPHERE,
    ExitStage.SAT_STAGE_1,
    ExitStage.SAT_STAGE_2,
    ExitStage.SAT_STAGE_3,
    ExitStage.SAT_EXHAUSTED,
)
EXIT_CODE = {stage: code for code, stage in enumerate(EXIT_STAGE_ORDER)}
_CODE_BOUNDING = EXIT_CODE[ExitStage.BOUNDING_SPHERE]
_CODE_INSCRIBED = EXIT_CODE[ExitStage.INSCRIBED_SPHERE]
_CODE_SAT_1 = EXIT_CODE[ExitStage.SAT_STAGE_1]
_CODE_EXHAUSTED = EXIT_CODE[ExitStage.SAT_EXHAUSTED]

#: Cumulative multiply cost of the sequential SAT through axis k (1-based).
_CUM_AXIS_MULTIPLIES = np.cumsum(SAT_AXIS_MULTIPLIES)
_SAT_FULL_MULTIPLIES = int(_CUM_AXIS_MULTIPLIES[-1])


# ----------------------------------------------------------------------
# Persistent SoA scratch buffers
# ----------------------------------------------------------------------


class SoAScratch:
    """Growable persistent buffers for the batch pipeline.

    The batched planner path dispatches one pose tensor per CD phase, so a
    planning run makes hundreds of ``batch_forward_kinematics`` /
    ``batch_link_obbs`` calls whose large intermediates (frame stacks, DH
    step matrices, per-link pose products, OBB arrays) would otherwise be
    re-allocated every call.  A scratch instance keeps one buffer per
    (name, trailing-shape) slot and grows it geometrically when a larger
    batch arrives, handing out leading-axis views — so steady-state phases
    allocate nothing.

    **Lifetime contract:** an array returned by :meth:`array` (and any
    pipeline output that aliases one, e.g. ``batch_link_obbs(...,
    fixed_point=None, scratch=...)``) is valid only until the next call
    that uses the same scratch.  Callers that need the data beyond that
    must copy.  The default quantized pipeline materializes fresh output
    arrays, so :class:`BatchPoseEvaluator` results never alias scratch.
    """

    def __init__(self):
        self._buffers: dict = {}
        #: How many times a slot (re-)allocated — tests pin steady-state 0.
        self.reallocations = 0

    def array(self, name: str, n: int, trailing: Tuple[int, ...], dtype=float):
        """A ``(n, *trailing)`` view of the named buffer, growing as needed."""
        trailing = tuple(int(t) for t in trailing)
        buf = self._buffers.get(name)
        if buf is None or buf.shape[1:] != trailing or buf.dtype != dtype:
            capacity = n
        elif buf.shape[0] < n:
            capacity = max(n, 2 * buf.shape[0])
        else:
            return buf[:n]
        buf = np.empty((capacity,) + trailing, dtype=dtype)
        self._buffers[name] = buf
        self.reallocations += 1
        return buf[:n]

    def clear(self) -> None:
        self._buffers.clear()


# ----------------------------------------------------------------------
# Struct-of-arrays OBB batch
# ----------------------------------------------------------------------


@dataclass
class BatchOBBs:
    """M OBBs as a struct of arrays (the batch twin of 17-value OBB words).

    ``rot`` is ``(M, 3, 3)`` row-major world-from-local rotations, ``half``
    and ``center`` are ``(M, 3)``, and the sphere radii are ``(M,)`` — the
    same five fields :func:`repro.geometry.sat.extract_obb_scalars` yields.
    """

    rot: np.ndarray
    half: np.ndarray
    center: np.ndarray
    r_bound: np.ndarray
    r_inscribed: np.ndarray

    def __len__(self) -> int:
        return len(self.center)

    @classmethod
    def from_arrays(cls, center, half, rot) -> "BatchOBBs":
        """Build from raw arrays, deriving the sphere radii.

        The bounding radius uses a stacked ``(M,1,3) @ (M,3,1)`` product so
        the squared norm matches the scalar ``np.dot(h, h)`` bit-for-bit.
        """
        center = np.asarray(center, dtype=float).reshape(-1, 3)
        half = np.asarray(half, dtype=float).reshape(-1, 3)
        rot = np.asarray(rot, dtype=float).reshape(-1, 3, 3)
        r_bound = np.sqrt((half[:, None, :] @ half[:, :, None])[:, 0, 0])
        r_inscribed = np.min(half, axis=1)
        return cls(rot, half, center, r_bound, r_inscribed)

    @classmethod
    def from_obbs(cls, obbs: Sequence[OBB]) -> "BatchOBBs":
        """Pack OBB objects, taking radii through the scalar extraction."""
        pre = [extract_obb_scalars(obb) for obb in obbs]
        rot = np.array([p[0] for p in pre], dtype=float).reshape(-1, 3, 3)
        half = np.array([p[1] for p in pre], dtype=float).reshape(-1, 3)
        center = np.array([p[2] for p in pre], dtype=float).reshape(-1, 3)
        r_bound = np.array([p[3] for p in pre], dtype=float)
        r_inscribed = np.array([p[4] for p in pre], dtype=float)
        return cls(rot, half, center, r_bound, r_inscribed)

    def take(self, indices) -> "BatchOBBs":
        """Gather a (possibly repeated) subset of rows."""
        return BatchOBBs(
            self.rot[indices],
            self.half[indices],
            self.center[indices],
            self.r_bound[indices],
            self.r_inscribed[indices],
        )


# ----------------------------------------------------------------------
# Vectorized cascade
# ----------------------------------------------------------------------


@dataclass
class BatchCascadeOutcome:
    """Per-pair cascade results for M pairs — the batch CascadeResult.

    All arrays have length M.  ``separating_axis`` is the 1-based axis id or
    0 where no tested axis separated; ``sphere_tests`` counts the sphere
    filter evaluations the scalar path would have charged to each pair (the
    inscribed filter only runs when the bounding filter did not exit).
    """

    hit: np.ndarray
    exit_code: np.ndarray
    exit_cycle: np.ndarray
    multiplies: np.ndarray
    sat_axes_tested: np.ndarray
    separating_axis: np.ndarray
    sphere_tests: np.ndarray

    def __len__(self) -> int:
        return len(self.hit)

    def exit_stages(self) -> List[ExitStage]:
        return [EXIT_STAGE_ORDER[code] for code in self.exit_code]

    def record(self, stats: CollisionStats) -> None:
        """Accumulate the same totals M scalar cascade calls would have."""
        stats.intersection_tests += len(self.hit)
        stats.multiplies += int(self.multiplies.sum())
        stats.sat_axes_tested += int(self.sat_axes_tested.sum())
        stats.sphere_tests += int(self.sphere_tests.sum())
        counts = np.bincount(self.exit_code, minlength=len(EXIT_STAGE_ORDER))
        for code, count in enumerate(counts):
            if count:
                stats.cascade_exits[EXIT_STAGE_ORDER[code].value] += int(count)


#: Octant index -> child-center offset signs, one gather instead of three
#: ``np.where`` calls in the traversal level loops.  Row k is
#: ``(+1 if k & 1 else -1, +1 if k & 2 else -1, +1 if k & 4 else -1)`` —
#: identical values to the bit tests, so child centers are bit-identical.
_OCTANT_SIGNS = np.array(
    [
        [1.0 if k & 1 else -1.0, 1.0 if k & 2 else -1.0, 1.0 if k & 4 else -1.0]
        for k in range(8)
    ]
)


def _sphere_box_separated_mask(center, box_center, box_half, radius) -> np.ndarray:
    """Vectorized twin of ``cascade._sphere_box_separated`` (same op order)."""
    dx = np.abs(center[:, 0] - box_center[:, 0]) - box_half[:, 0]
    dy = np.abs(center[:, 1] - box_center[:, 1]) - box_half[:, 1]
    dz = np.abs(center[:, 2] - box_center[:, 2]) - box_half[:, 2]
    dist_sq = (
        np.where(dx > 0.0, dx * dx, 0.0)
        + np.where(dy > 0.0, dy * dy, 0.0)
        + np.where(dz > 0.0, dz * dz, 0.0)
    )
    return dist_sq > radius * radius


def _sat_separation_masks(rot, a, b, t) -> np.ndarray:
    """All 15 axis tests for K pairs: ``(K, 15)`` separation booleans.

    Each column transcribes ``repro.geometry.sat._test_axis`` with identical
    operand association, so every comparison reproduces the scalar bits.
    """
    r00, r01, r02 = rot[:, 0, 0], rot[:, 0, 1], rot[:, 0, 2]
    r10, r11, r12 = rot[:, 1, 0], rot[:, 1, 1], rot[:, 1, 2]
    r20, r21, r22 = rot[:, 2, 0], rot[:, 2, 1], rot[:, 2, 2]
    ar00, ar01, ar02 = np.abs(r00), np.abs(r01), np.abs(r02)
    ar10, ar11, ar12 = np.abs(r10), np.abs(r11), np.abs(r12)
    ar20, ar21, ar22 = np.abs(r20), np.abs(r21), np.abs(r22)
    a0, a1, a2 = a[:, 0], a[:, 1], a[:, 2]
    b0, b1, b2 = b[:, 0], b[:, 1], b[:, 2]
    t0, t1, t2 = t[:, 0], t[:, 1], t[:, 2]

    sep = np.empty((len(a0), 15), dtype=bool)
    # AABB face axes.
    sep[:, 0] = np.abs(t0) > a0 + b0 * ar00 + b1 * ar01 + b2 * ar02
    sep[:, 1] = np.abs(t1) > a1 + b0 * ar10 + b1 * ar11 + b2 * ar12
    sep[:, 2] = np.abs(t2) > a2 + b0 * ar20 + b1 * ar21 + b2 * ar22
    # OBB face axes.
    sep[:, 3] = np.abs(t0 * r00 + t1 * r10 + t2 * r20) > (
        b0 + a0 * ar00 + a1 * ar10 + a2 * ar20
    )
    sep[:, 4] = np.abs(t0 * r01 + t1 * r11 + t2 * r21) > (
        b1 + a0 * ar01 + a1 * ar11 + a2 * ar21
    )
    sep[:, 5] = np.abs(t0 * r02 + t1 * r12 + t2 * r22) > (
        b2 + a0 * ar02 + a1 * ar12 + a2 * ar22
    )
    # Cross axes e_i x B_j, axis ids 7..15.
    sep[:, 6] = np.abs(t2 * r10 - t1 * r20) > (
        a1 * ar20 + a2 * ar10 + (b1 * ar02 + b2 * ar01) + _EPS
    )
    sep[:, 7] = np.abs(t2 * r11 - t1 * r21) > (
        a1 * ar21 + a2 * ar11 + (b0 * ar02 + b2 * ar00) + _EPS
    )
    sep[:, 8] = np.abs(t2 * r12 - t1 * r22) > (
        a1 * ar22 + a2 * ar12 + (b0 * ar01 + b1 * ar00) + _EPS
    )
    sep[:, 9] = np.abs(t0 * r20 - t2 * r00) > (
        a0 * ar20 + a2 * ar00 + (b1 * ar12 + b2 * ar11) + _EPS
    )
    sep[:, 10] = np.abs(t0 * r21 - t2 * r01) > (
        a0 * ar21 + a2 * ar01 + (b0 * ar12 + b2 * ar10) + _EPS
    )
    sep[:, 11] = np.abs(t0 * r22 - t2 * r02) > (
        a0 * ar22 + a2 * ar02 + (b0 * ar11 + b1 * ar10) + _EPS
    )
    sep[:, 12] = np.abs(t1 * r00 - t0 * r10) > (
        a0 * ar10 + a1 * ar00 + (b1 * ar22 + b2 * ar21) + _EPS
    )
    sep[:, 13] = np.abs(t1 * r01 - t0 * r11) > (
        a0 * ar11 + a1 * ar01 + (b0 * ar22 + b2 * ar20) + _EPS
    )
    sep[:, 14] = np.abs(t1 * r02 - t0 * r12) > (
        a0 * ar12 + a1 * ar02 + (b0 * ar21 + b1 * ar20) + _EPS
    )
    return sep


_STAGE_TABLE_CACHE: dict = {}


def _stage_tables(stages: Tuple[int, ...]):
    """Cumulative sizes/costs and exit codes for a staged SAT layout."""
    tables = _STAGE_TABLE_CACHE.get(stages)
    if tables is None:
        ids = stage_axis_ids(stages)
        sizes = np.cumsum(stages)
        costs = np.cumsum(
            [sum(SAT_AXIS_MULTIPLIES[axis - 1] for axis in stage) for stage in ids]
        )
        codes = np.array(
            [_CODE_SAT_1 + min(index, 2) for index in range(len(stages))],
            dtype=np.int64,
        )
        tables = _STAGE_TABLE_CACHE[stages] = (sizes, costs, codes)
    return tables


def batch_cascade(
    obbs: BatchOBBs,
    box_center,
    box_half,
    config: CascadeConfig = DEFAULT_CASCADE,
    stats: Optional[CollisionStats] = None,
    obb_index=None,
    need_work: bool = True,
) -> BatchCascadeOutcome:
    """The Figure-10 cascade over M pre-paired (OBB, AABB) rows.

    ``box_center``/``box_half`` are ``(M, 3)`` and align row-for-row with
    ``obbs`` — or, when ``obb_index`` is given, with ``obbs.take(obb_index)``
    (the gather of the wide rotation matrices is then deferred to the pairs
    that actually reach the SAT).  Passing ``stats`` accumulates exactly what
    M scalar :func:`~repro.collision.cascade.cascade_intersect_scalars` calls
    would.

    ``need_work=False`` computes verdicts only: the same sphere filters and
    SAT produce bit-identical ``hit``, but exit codes/cycles and the priced
    per-op counters are left zero (callers that never read them — the
    engines with stats collection off — skip that bookkeeping entirely).
    """
    box_center = np.asarray(box_center, dtype=float).reshape(-1, 3)
    box_half = np.asarray(box_half, dtype=float).reshape(-1, 3)
    if obb_index is None:
        m = len(obbs)
        center = obbs.center
        r_bound = obbs.r_bound
        r_inscribed = obbs.r_inscribed
    else:
        obb_index = np.asarray(obb_index, dtype=np.int64)
        m = len(obb_index)
        center = obbs.center[obb_index]
        r_bound = obbs.r_bound[obb_index]
        r_inscribed = obbs.r_inscribed[obb_index]
    if len(box_center) != m or len(box_half) != m:
        raise ValueError(
            f"need one box per OBB: {m} OBBs vs {len(box_center)} boxes"
        )

    if not need_work:
        hit = np.zeros(m, dtype=bool)
        active = np.ones(m, dtype=bool)
        if config.bounding_sphere:
            active &= ~_sphere_box_separated_mask(
                center, box_center, box_half, r_bound
            )
        if config.inscribed_sphere:
            act = np.flatnonzero(active)
            overlap = ~_sphere_box_separated_mask(
                center[act], box_center[act], box_half[act], r_inscribed[act]
            )
            certain = act[overlap]
            hit[certain] = True
            active[certain] = False
        idx = np.flatnonzero(active)
        if len(idx):
            src = idx if obb_index is None else obb_index[idx]
            t = center[idx] - box_center[idx]
            sep = _sat_separation_masks(
                obbs.rot[src], box_half[idx], obbs.half[src], t
            )
            hit[idx] = ~sep.any(axis=1)
        zeros = np.zeros(m, dtype=np.int64)
        return BatchCascadeOutcome(
            hit=hit,
            exit_code=zeros,
            exit_cycle=zeros,
            multiplies=zeros,
            sat_axes_tested=zeros,
            separating_axis=zeros,
            sphere_tests=zeros,
        )

    hit = np.zeros(m, dtype=bool)
    exit_code = np.full(m, _CODE_EXHAUSTED, dtype=np.int64)
    exit_cycle = np.zeros(m, dtype=np.int64)
    multiplies = np.zeros(m, dtype=np.int64)
    sat_axes = np.zeros(m, dtype=np.int64)
    separating = np.zeros(m, dtype=np.int64)
    sphere_tests = np.zeros(m, dtype=np.int64)

    base_cycle = 1 if config.has_sphere_filters else 0
    active = np.ones(m, dtype=bool)

    if config.bounding_sphere:
        multiplies += SPHERE_AABB_MULTIPLIES
        sphere_tests += 1
        separated = _sphere_box_separated_mask(
            center, box_center, box_half, r_bound
        )
        exit_code[separated] = _CODE_BOUNDING
        exit_cycle[separated] = base_cycle
        active &= ~separated
    if config.inscribed_sphere:
        act = np.flatnonzero(active)
        multiplies[act] += SPHERE_AABB_MULTIPLIES
        sphere_tests[act] += 1
        overlap = ~_sphere_box_separated_mask(
            center[act], box_center[act], box_half[act], r_inscribed[act]
        )
        certain = act[overlap]
        hit[certain] = True
        exit_code[certain] = _CODE_INSCRIBED
        exit_cycle[certain] = base_cycle
        active[certain] = False

    idx = np.flatnonzero(active)
    if len(idx):
        src = idx if obb_index is None else obb_index[idx]
        t = center[idx] - box_center[idx]
        sep = _sat_separation_masks(
            obbs.rot[src], box_half[idx], obbs.half[src], t
        )
        any_sep = sep.any(axis=1)
        axis_id = np.argmax(sep, axis=1) + 1  # meaningful only where any_sep
        sat_mult = np.empty(len(idx), dtype=np.int64)
        sat_tested = np.empty(len(idx), dtype=np.int64)
        sat_cycle = np.empty(len(idx), dtype=np.int64)
        sat_code = np.full(len(idx), _CODE_EXHAUSTED, dtype=np.int64)

        stage_sizes, stage_costs, stage_codes = _stage_tables(config.stages)
        stage_of_axis = np.searchsorted(stage_sizes, axis_id)
        if config.sat_mode is SATMode.SEQUENTIAL:
            sat_mult[:] = _SAT_FULL_MULTIPLIES
            sat_tested[:] = 15
            sat_cycle[:] = base_cycle + 15
            sat_mult[any_sep] = _CUM_AXIS_MULTIPLIES[axis_id[any_sep] - 1]
            sat_tested[any_sep] = axis_id[any_sep]
            sat_cycle[any_sep] = base_cycle + axis_id[any_sep]
            sat_code[any_sep] = stage_codes[stage_of_axis[any_sep]]
        elif config.sat_mode is SATMode.PARALLEL:
            sat_mult[:] = _SAT_FULL_MULTIPLIES
            sat_tested[:] = 15
            sat_cycle[:] = base_cycle + 1
            sat_code[any_sep] = stage_codes[stage_of_axis[any_sep]]
        else:  # staged (the proposal)
            sat_mult[:] = stage_costs[-1]
            sat_tested[:] = stage_sizes[-1]
            sat_cycle[:] = base_cycle + len(config.stages)
            sat_mult[any_sep] = stage_costs[stage_of_axis[any_sep]]
            sat_tested[any_sep] = stage_sizes[stage_of_axis[any_sep]]
            sat_cycle[any_sep] = base_cycle + stage_of_axis[any_sep] + 1
            sat_code[any_sep] = stage_codes[stage_of_axis[any_sep]]

        hit[idx] = ~any_sep
        exit_code[idx] = sat_code
        exit_cycle[idx] = sat_cycle
        multiplies[idx] += sat_mult
        sat_axes[idx] = sat_tested
        separating[idx[any_sep]] = axis_id[any_sep]

    outcome = BatchCascadeOutcome(
        hit=hit,
        exit_code=exit_code,
        exit_cycle=exit_cycle,
        multiplies=multiplies,
        sat_axes_tested=sat_axes,
        separating_axis=separating,
        sphere_tests=sphere_tests,
    )
    if stats is not None:
        outcome.record(stats)
    return outcome


# ----------------------------------------------------------------------
# Vectorized octree traversal
# ----------------------------------------------------------------------


@dataclass
class BatchTraversalOutcome:
    """Per-query work and verdicts for Q OBB-octree queries.

    Every array has length Q; ``exit_counts`` is ``(Q, 6)`` indexed by
    :data:`EXIT_STAGE_ORDER`.  The counts equal what the scalar
    :class:`~repro.collision.octree_cd.OBBOctreeCollider` records: only the
    tests and node visits the early-exiting traversal actually executes.
    """

    hit: np.ndarray
    node_visits: np.ndarray
    tests: np.ndarray
    multiplies: np.ndarray
    sat_axes_tested: np.ndarray
    sphere_tests: np.ndarray
    exit_counts: np.ndarray

    def __len__(self) -> int:
        return len(self.hit)

    def record(self, stats: CollisionStats, queries=None) -> None:
        """Fold (a subset of) queries into ``stats``, scalar-identically."""
        sel = slice(None) if queries is None else queries
        stats.node_visits += int(self.node_visits[sel].sum())
        stats.sram_reads += int(self.node_visits[sel].sum())
        stats.intersection_tests += int(self.tests[sel].sum())
        stats.multiplies += int(self.multiplies[sel].sum())
        stats.sat_axes_tested += int(self.sat_axes_tested[sel].sum())
        stats.sphere_tests += int(self.sphere_tests[sel].sum())
        totals = self.exit_counts[sel].sum(axis=0)
        for code, count in enumerate(totals):
            if count:
                stats.cascade_exits[EXIT_STAGE_ORDER[code].value] += int(count)

    def query_work(self):
        """Per-query ``QueryWork`` rows (the baselines' cost-model input)."""
        from repro.baselines.cpu import QueryWork

        return [
            QueryWork(node_visits=int(n), tests=int(t), hit=bool(h))
            for n, t, h in zip(self.node_visits, self.tests, self.hit)
        ]


class BatchOctreeCollider:
    """Level-synchronous batched twin of :class:`OBBOctreeCollider`.

    The scalar traverser is a FIFO BFS, so nodes pop in level order with a
    deterministic within-level order (parent order x octant order).  This
    collider therefore processes one level at a time: it gathers every
    occupied octant of every query's frontier into a single
    :func:`batch_cascade` call, then replays the early-exit bookkeeping — a
    query's first FULL-octant hit truncates its executed-test prefix exactly
    where the scalar ``break`` would, and anything past the truncation point
    is neither counted nor expanded (the vectorized evaluation of those
    pairs is discarded work, which is the batching trade-off).
    """

    def __init__(self, octree: Octree, config: CascadeConfig = DEFAULT_CASCADE):
        self.octree = octree
        self.config = config
        n = len(octree.nodes)
        self._states = np.zeros((n, 8), dtype=np.uint8)
        self._children = np.full((n, 8), -1, dtype=np.int64)
        for address, node in enumerate(octree.nodes):
            for k in range(8):
                self._states[address, k] = int(node.states[k])
                if node.children[k] is not None:
                    self._children[address, k] = node.children[k]

    def collide(
        self, obbs: BatchOBBs, need_work: bool = True
    ) -> BatchTraversalOutcome:
        """All Q queries against the octree; per-query verdicts and work.

        ``need_work=False`` runs the verdict-only traversal: identical
        ``hit`` bits, zeroed work arrays, and none of the per-level
        bincount/prefix bookkeeping (used by the engines when stats
        collection is off).
        """
        if not need_work:
            return self._collide_hits_only(obbs)
        q_total = len(obbs)
        hit = np.zeros(q_total, dtype=bool)
        node_visits = np.zeros(q_total, dtype=np.int64)
        tests = np.zeros(q_total, dtype=np.int64)
        multiplies = np.zeros(q_total, dtype=np.int64)
        sat_axes = np.zeros(q_total, dtype=np.int64)
        sphere_tests = np.zeros(q_total, dtype=np.int64)
        exit_counts = np.zeros((q_total, len(EXIT_STAGE_ORDER)), dtype=np.int64)

        bounds = self.octree.bounds
        # Frontier arrays, sorted by query id, FIFO order within each query.
        f_query = np.arange(q_total, dtype=np.int64)
        f_addr = np.zeros(q_total, dtype=np.int64)
        f_center = np.broadcast_to(
            np.asarray(bounds.center, dtype=float), (q_total, 3)
        ).copy()
        f_half = np.broadcast_to(
            np.asarray(bounds.half_extents, dtype=float), (q_total, 3)
        ).copy()
        full_code = int(OctantState.FULL)
        partial_code = int(OctantState.PARTIAL)

        while len(f_query):
            node_states = self._states[f_addr]  # (F, 8)
            # Candidate tests: occupied octants, frontier-major / octant-minor
            # — exactly the scalar pop + occupied_octants() order.
            cand_f, cand_oct = np.nonzero(node_states)
            cand_q = f_query[cand_f]
            cand_state = node_states[cand_f, cand_oct]
            quarter = f_half[cand_f] / 2.0
            cand_center = f_center[cand_f] + _OCTANT_SIGNS[cand_oct] * quarter

            result = batch_cascade(
                obbs, cand_center, quarter, self.config, obb_index=cand_q
            )

            # First FULL-octant hit per query ends that query's traversal.
            n_cand = len(cand_q)
            stop_key = np.flatnonzero(result.hit & (cand_state == full_code))
            stop_of_query = np.full(q_total, n_cand, dtype=np.int64)
            stopped_q, first = np.unique(cand_q[stop_key], return_index=True)
            stop_of_query[stopped_q] = stop_key[first]
            hit[stopped_q] = True

            # Executed prefix: candidates at or before their query's stop.
            # Queries are contiguous blocks in candidate order, so a global
            # index comparison realizes the per-query prefix.
            executed = np.arange(n_cand) <= stop_of_query[cand_q]
            exec_q = cand_q[executed]
            tests += np.bincount(exec_q, minlength=q_total)
            multiplies += np.bincount(
                exec_q, weights=result.multiplies[executed], minlength=q_total
            ).astype(np.int64)
            sat_axes += np.bincount(
                exec_q, weights=result.sat_axes_tested[executed], minlength=q_total
            ).astype(np.int64)
            sphere_tests += np.bincount(
                exec_q, weights=result.sphere_tests[executed], minlength=q_total
            ).astype(np.int64)
            exit_counts += np.bincount(
                exec_q * len(EXIT_STAGE_ORDER) + result.exit_code[executed],
                minlength=q_total * len(EXIT_STAGE_ORDER),
            ).reshape(q_total, len(EXIT_STAGE_ORDER))

            # Node pops: every frontier node up to (and including) the stop
            # candidate's node; all of them when the query never stops.
            f_count = np.bincount(f_query, minlength=q_total)
            f_start = np.concatenate(([0], np.cumsum(f_count)))[:-1]
            visits = f_count.copy()
            visits[stopped_q] = cand_f[stop_key[first]] - f_start[stopped_q] + 1
            node_visits += visits

            # Next frontier: executed PARTIAL hits of still-running queries.
            expand = (
                executed
                & result.hit
                & (cand_state == partial_code)
                & (stop_of_query[cand_q] == n_cand)
            )
            f_query = cand_q[expand]
            f_addr = self._children[f_addr[cand_f[expand]], cand_oct[expand]]
            f_center = cand_center[expand]
            f_half = quarter[expand]

        return BatchTraversalOutcome(
            hit=hit,
            node_visits=node_visits,
            tests=tests,
            multiplies=multiplies,
            sat_axes_tested=sat_axes,
            sphere_tests=sphere_tests,
            exit_counts=exit_counts,
        )

    def _collide_hits_only(self, obbs: BatchOBBs) -> BatchTraversalOutcome:
        """Verdict-only twin of :meth:`collide`.

        ``hit`` is monotone (a FULL-octant hit is final and deeper
        traversal can never clear it), so the scalar early-exit prefix
        bookkeeping is irrelevant to verdicts: pruning a stopped query's
        PARTIAL expansions with ``~hit`` yields the same final bits while
        skipping every per-level bincount.  Work arrays come back zeroed.
        """
        q_total = len(obbs)
        hit = np.zeros(q_total, dtype=bool)

        bounds = self.octree.bounds
        f_query = np.arange(q_total, dtype=np.int64)
        f_addr = np.zeros(q_total, dtype=np.int64)
        f_center = np.broadcast_to(
            np.asarray(bounds.center, dtype=float), (q_total, 3)
        )
        f_half = np.broadcast_to(
            np.asarray(bounds.half_extents, dtype=float), (q_total, 3)
        )
        full_code = int(OctantState.FULL)
        partial_code = int(OctantState.PARTIAL)

        while len(f_query):
            node_states = self._states[f_addr]  # (F, 8)
            cand_f, cand_oct = np.nonzero(node_states)
            cand_q = f_query[cand_f]
            cand_state = node_states[cand_f, cand_oct]
            quarter = f_half[cand_f] / 2.0
            cand_center = f_center[cand_f] + _OCTANT_SIGNS[cand_oct] * quarter

            result = batch_cascade(
                obbs,
                cand_center,
                quarter,
                self.config,
                obb_index=cand_q,
                need_work=False,
            )

            hit[cand_q[result.hit & (cand_state == full_code)]] = True
            expand = (
                result.hit & (cand_state == partial_code) & ~hit[cand_q]
            )
            f_query = cand_q[expand]
            f_addr = self._children[f_addr[cand_f[expand]], cand_oct[expand]]
            f_center = cand_center[expand]
            f_half = quarter[expand]

        zeros = np.zeros(q_total, dtype=np.int64)
        return BatchTraversalOutcome(
            hit=hit,
            node_visits=zeros,
            tests=zeros,
            multiplies=zeros,
            sat_axes_tested=zeros,
            sphere_tests=zeros,
            exit_counts=np.zeros(
                (q_total, len(EXIT_STAGE_ORDER)), dtype=np.int64
            ),
        )

    def certify_disjoint(self, sphere_center, sphere_radius, lo, hi) -> np.ndarray:
        """Prove per-query bounding volumes disjoint from every FULL octant.

        Each of the Q queries is a conservative bound — a sphere
        (``sphere_center``/``sphere_radius``) **and** an AABB (``lo``/``hi``);
        the certified volume is their intersection.  The traversal descends
        only into occupied octants whose box overlaps *both* bounds (overlap
        tests are inclusive, so tangency counts as overlap) and returns a
        ``(Q,)`` boolean mask: ``True`` means no FULL octant anywhere in the
        tree touches the query's bound.

        This is the motion prefilter's primitive: the exact cascade can only
        report a collision against a FULL octant whose box intersects a link
        OBB, every such octant's ancestors also intersect the OBB's bounds
        (child boxes nest), and the scalar/batch traversals reach octants
        only through intersecting PARTIAL ancestors — so a certified query's
        volume provably produces a collision-free verdict under the exact
        path.  No :class:`~repro.collision.stats.CollisionStats` are charged:
        certification is a shortcut *around* the priced cascade, and its
        savings are reported through separate prefilter counters.
        """
        sphere_center = np.asarray(sphere_center, dtype=float).reshape(-1, 3)
        sphere_radius = np.asarray(sphere_radius, dtype=float).reshape(-1)
        lo = np.asarray(lo, dtype=float).reshape(-1, 3)
        hi = np.asarray(hi, dtype=float).reshape(-1, 3)
        q_total = len(sphere_radius)
        certified = np.ones(q_total, dtype=bool)

        bounds = self.octree.bounds
        f_query = np.arange(q_total, dtype=np.int64)
        f_addr = np.zeros(q_total, dtype=np.int64)
        f_center = np.broadcast_to(
            np.asarray(bounds.center, dtype=float), (q_total, 3)
        )
        f_half = np.broadcast_to(
            np.asarray(bounds.half_extents, dtype=float), (q_total, 3)
        )
        full_code = int(OctantState.FULL)
        partial_code = int(OctantState.PARTIAL)
        radius_sq = sphere_radius * sphere_radius

        while len(f_query):
            node_states = self._states[f_addr]  # (F, 8)
            cand_f, cand_oct = np.nonzero(node_states)
            cand_q = f_query[cand_f]
            cand_state = node_states[cand_f, cand_oct]
            quarter = f_half[cand_f] / 2.0
            cand_center = f_center[cand_f] + _OCTANT_SIGNS[cand_oct] * quarter

            box_lo = cand_center - quarter
            box_hi = cand_center + quarter
            overlap = np.all((lo[cand_q] <= box_hi) & (hi[cand_q] >= box_lo), axis=1)
            gap = np.abs(sphere_center[cand_q] - cand_center) - quarter
            np.maximum(gap, 0.0, out=gap)
            overlap &= np.einsum("ij,ij->i", gap, gap) <= radius_sq[cand_q]

            certified[cand_q[overlap & (cand_state == full_code)]] = False

            expand = overlap & (cand_state == partial_code) & certified[cand_q]
            f_query = cand_q[expand]
            f_addr = self._children[f_addr[cand_f[expand]], cand_oct[expand]]
            f_center = cand_center[expand]
            f_half = quarter[expand]

        return certified


# ----------------------------------------------------------------------
# Vectorized OBB generation (forward kinematics + quantization)
# ----------------------------------------------------------------------


def batch_forward_kinematics(
    robot: RobotModel, poses, scratch: Optional[SoAScratch] = None
) -> np.ndarray:
    """World frames for a pose batch: ``(N, dof+1, 4, 4)``.

    ``frames[:, 0]`` is the base frame; ``frames[:, i]`` for i >= 1 follows
    joints 1..i.  The chain multiplies stacked 4x4 matrices in the same
    left-to-right order as :func:`repro.robot.dh.chain_forward_kinematics`,
    and stacked matmul matches the scalar 2-D ``@`` bit-for-bit, so these
    frames equal the scalar FK exactly.  With ``scratch`` the frame stack
    and DH step buffer are persistent views (see :class:`SoAScratch` for
    the lifetime contract); the arithmetic — and therefore the bits — is
    unchanged, only the allocations go away.
    """
    poses = np.asarray(poses, dtype=float)
    if poses.ndim != 2 or poses.shape[1] != robot.dof:
        raise ValueError(
            f"poses must have shape (n, {robot.dof}), got {poses.shape}"
        )
    n = len(poses)
    if scratch is None:
        frames = np.empty((n, robot.dof + 1, 4, 4))
        step = np.empty((n, 4, 4))
    else:
        frames = scratch.array("fk.frames", n, (robot.dof + 1, 4, 4))
        step = scratch.array("fk.step", n, (4, 4))
    # Every iteration writes the same ten step entries; the rest stay zero.
    step[:] = 0.0
    frames[:, 0] = robot.base.matrix
    for i, param in enumerate(robot.dh):
        th = poses[:, i] + param.theta_offset
        ct, st = np.cos(th), np.sin(th)
        ca, sa = math.cos(param.alpha), math.sin(param.alpha)
        step[:, 0, 0] = ct
        step[:, 0, 1] = -st * ca
        step[:, 0, 2] = st * sa
        step[:, 0, 3] = param.a * ct
        step[:, 1, 0] = st
        step[:, 1, 1] = ct * ca
        step[:, 1, 2] = -ct * sa
        step[:, 1, 3] = param.a * st
        step[:, 2, 1] = sa
        step[:, 2, 2] = ca
        step[:, 2, 3] = param.d
        step[:, 3, 3] = 1.0
        np.matmul(frames[:, i], step, out=frames[:, i + 1])
    return frames


def batch_quantize_obbs(
    center: np.ndarray,
    half: np.ndarray,
    rot: np.ndarray,
    fmt: FixedPointFormat = DEFAULT_FORMAT,
    rot_fmt: FixedPointFormat = ROTATION_FORMAT,
):
    """Array twin of :func:`repro.geometry.fixed_point.quantize_obb`.

    Centers round to nearest (ties to even, like Python ``round``), half
    extents round *up* with a one-LSB floor (quantization must never shrink
    a robot link), rotations use the dedicated all-fractional format.
    """
    raw_max = 2 ** (fmt.total_bits - 1) - 1
    raw_min = -(2 ** (fmt.total_bits - 1))
    inv = 1.0 / fmt.scale
    q_center = np.clip(np.rint(center * fmt.scale), raw_min, raw_max) * inv
    q_half = np.clip(np.ceil(half * fmt.scale), 1, raw_max) * inv
    r_max = 2 ** (rot_fmt.total_bits - 1) - 1
    r_min = -(2 ** (rot_fmt.total_bits - 1))
    r_inv = 1.0 / rot_fmt.scale
    q_rot = np.clip(np.rint(rot * rot_fmt.scale), r_min, r_max) * r_inv
    return q_center + 0.0, q_half, q_rot + 0.0


def batch_link_obbs(
    robot: RobotModel,
    poses,
    fixed_point: Optional[FixedPointFormat] = DEFAULT_FORMAT,
    rot_fmt: FixedPointFormat = ROTATION_FORMAT,
    scratch: Optional[SoAScratch] = None,
) -> BatchOBBs:
    """Link OBBs for every pose, flattened pose-major: ``N * num_links`` rows.

    Row ``i * num_links + j`` is link j at pose i — the tensor layout every
    downstream batch stage assumes.  This is the vectorized twin of
    ``RobotEnvironmentChecker.link_obbs`` (FK, local box placement, then
    fixed-point quantization when ``fixed_point`` is given).  With
    ``scratch`` the FK stack and the SoA center/half/rotation intermediates
    are persistent buffers; when ``fixed_point`` is ``None`` the returned
    arrays alias them (see :class:`SoAScratch`), while the default
    quantized path always returns fresh arrays.
    """
    frames = batch_forward_kinematics(robot, poses, scratch=scratch)
    n = len(frames)
    n_links = robot.num_links
    if scratch is None:
        centers = np.empty((n, n_links, 3))
        halves = np.empty((n, n_links, 3))
        rots = np.empty((n, n_links, 3, 3))
        pose = np.empty((n, 4, 4))
    else:
        centers = scratch.array("obb.centers", n, (n_links, 3))
        halves = scratch.array("obb.halves", n, (n_links, 3))
        rots = scratch.array("obb.rots", n, (n_links, 3, 3))
        pose = scratch.array("obb.pose", n, (4, 4))
    for j, link in enumerate(robot.links):
        np.matmul(frames[:, link.frame_index], link.local.matrix, out=pose)
        centers[:, j] = pose[:, :3, 3]
        rots[:, j] = pose[:, :3, :3]
        halves[:, j] = np.asarray(link.half_extents, dtype=float)
    centers = centers.reshape(-1, 3)
    halves = halves.reshape(-1, 3)
    rots = rots.reshape(-1, 3, 3)
    if fixed_point is not None:
        centers, halves, rots = batch_quantize_obbs(
            centers, halves, rots, fixed_point, rot_fmt
        )
    return BatchOBBs.from_arrays(centers, halves, rots)


# ----------------------------------------------------------------------
# Pose-batch evaluation (the backend behind RobotEnvironmentChecker)
# ----------------------------------------------------------------------


@dataclass
class BatchPoseOutcome:
    """Verdicts and per-pose work for an N-pose batch.

    ``links_checked[i]`` is how many link queries the scalar checker would
    have executed at pose i (early exit after the first colliding link); the
    per-pose stat arrays already account only those executed links.
    """

    hits: np.ndarray
    links_checked: np.ndarray
    node_visits: np.ndarray
    tests: np.ndarray
    multiplies: np.ndarray
    sat_axes_tested: np.ndarray
    sphere_tests: np.ndarray
    exit_counts: np.ndarray  # (N, 6)

    def __len__(self) -> int:
        return len(self.hits)

    def record(self, stats: CollisionStats, poses=None) -> None:
        """Fold (a prefix or subset of) poses into ``stats``.

        Does *not* touch ``pose_checks``/``motion_checks`` — the caller owns
        the query-level counters, mirroring how the scalar checker splits
        responsibility between ``check_pose`` and the collider.
        """
        sel = slice(None) if poses is None else poses
        stats.node_visits += int(self.node_visits[sel].sum())
        stats.sram_reads += int(self.node_visits[sel].sum())
        stats.intersection_tests += int(self.tests[sel].sum())
        stats.multiplies += int(self.multiplies[sel].sum())
        stats.sat_axes_tested += int(self.sat_axes_tested[sel].sum())
        stats.sphere_tests += int(self.sphere_tests[sel].sum())
        totals = self.exit_counts[sel].sum(axis=0)
        for code, count in enumerate(totals):
            if count:
                stats.cascade_exits[EXIT_STAGE_ORDER[code].value] += int(count)


class BatchPoseEvaluator:
    """Vectorized robot-vs-environment pose checking.

    One ``evaluate`` call runs the whole pipeline — batched FK, quantized
    OBB generation, and the batched octree traversal for all ``N x L`` link
    queries — then replays the scalar checker's per-pose link early exit so
    the recorded work matches ``RobotEnvironmentChecker.check_pose`` run N
    times.

    The evaluator uses a persistent :class:`SoAScratch`, so the large FK
    and OBB intermediates are reused across phases instead of re-allocated
    per call.  Outputs never alias the scratch in the default quantized
    configuration; with ``fixed_point=None`` they do (see the scratch
    lifetime contract).  Pass ``scratch`` to share one instance with other
    SoA consumers (the checker shares its scratch between this pipeline
    and the planners' :class:`~repro.planning.nodestore.NodeStore`
    temporaries); by default the evaluator owns a fresh one.
    """

    def __init__(
        self,
        robot: RobotModel,
        octree: Octree,
        config: CascadeConfig = DEFAULT_CASCADE,
        fixed_point: Optional[FixedPointFormat] = DEFAULT_FORMAT,
        scratch: Optional[SoAScratch] = None,
    ):
        self.robot = robot
        self.collider = BatchOctreeCollider(octree, config)
        self.fixed_point = fixed_point
        self.scratch = scratch if scratch is not None else SoAScratch()

    def link_obbs(self, poses) -> BatchOBBs:
        """Quantized link OBBs for the batch, pose-major (``N * L`` rows)."""
        return batch_link_obbs(
            self.robot, poses, self.fixed_point, scratch=self.scratch
        )

    def evaluate(self, poses, need_work: bool = True) -> BatchPoseOutcome:
        """Check every pose; collision verdicts plus scalar-identical work.

        ``need_work=False`` returns identical ``hits``/``links_checked``
        but zeroed per-pose work arrays, skipping the traversal
        bookkeeping and the executed-link fold entirely (the outcome must
        then never be ``record``-ed — callers gate on stats collection).
        """
        poses = np.asarray(poses, dtype=float)
        if poses.ndim == 1:
            poses = poses[None, :]
        n = len(poses)
        n_links = self.robot.num_links
        trav = self.collider.collide(self.link_obbs(poses), need_work=need_work)

        link_hits = trav.hit.reshape(n, n_links)
        hits = link_hits.any(axis=1)
        first_hit = np.argmax(link_hits, axis=1)
        links_checked = np.where(hits, first_hit + 1, n_links)
        if not need_work:
            zeros = np.zeros(n, dtype=np.int64)
            return BatchPoseOutcome(
                hits=hits,
                links_checked=links_checked,
                node_visits=zeros,
                tests=zeros,
                multiplies=zeros,
                sat_axes_tested=zeros,
                sphere_tests=zeros,
                exit_counts=np.zeros(
                    (n, len(EXIT_STAGE_ORDER)), dtype=np.int64
                ),
            )
        # Executed-link mask: the scalar checker stops after the first
        # colliding link, so later links contribute no work.
        executed = np.arange(n_links) < links_checked[:, None]

        def fold(per_query: np.ndarray) -> np.ndarray:
            return (per_query.reshape(n, n_links) * executed).sum(axis=1)

        exit_counts = (
            trav.exit_counts.reshape(n, n_links, len(EXIT_STAGE_ORDER))
            * executed[:, :, None]
        ).sum(axis=1)
        return BatchPoseOutcome(
            hits=hits,
            links_checked=links_checked,
            node_visits=fold(trav.node_visits),
            tests=fold(trav.tests),
            multiplies=fold(trav.multiplies),
            sat_axes_tested=fold(trav.sat_axes_tested),
            sphere_tests=fold(trav.sphere_tests),
            exit_counts=exit_counts,
        )
