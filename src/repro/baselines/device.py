"""Device specifications for the baseline models.

Clock rates, core counts, and power are public spec-sheet numbers; the
``test_throughput`` calibration constants (intersection-test-equivalents
per second per lane) are fitted so the models land on the paper's Table 3
measurements for the *tree-traversal* kernel, then reused unchanged for the
optimized and leaf-parallel variants, whose improvements must come from the
model structure.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """One baseline device."""

    name: str
    kind: str  # "cpu" | "gpu"
    clock_ghz: float
    #: CPU: hardware cores.  GPU: resident warps that make progress per
    #: cycle across all SMs (an effective-occupancy figure, not peak).
    parallel_lanes: int
    power_w: float
    #: Cycles one lane spends per cascade intersection test (branchy
    #: pointer-chasing traversal code; calibrated).
    cycles_per_test: float
    #: Cycles per octree node fetch/decode step (includes memory latency
    #: amortized through the queue; calibrated).
    cycles_per_node: float
    #: Cycles per test for the uniform leaf-parallel kernel (no traversal
    #: control flow, better locality).
    cycles_per_leaf_test: float


# CPUs parallelize over queries with perfect scaling across cores (the
# paper's kernel is embarrassingly parallel).
CPU_DEVICES = {
    "i7-4771": DeviceSpec(
        name="Intel i7-4771 (8-core)",
        kind="cpu",
        clock_ghz=3.5,
        parallel_lanes=8,
        power_w=65.0,
        cycles_per_test=278.0,
        cycles_per_node=160.0,
        cycles_per_leaf_test=141.0,
    ),
    "cortex-a57": DeviceSpec(
        name="ARM Cortex-A57 (4-core)",
        kind="cpu",
        clock_ghz=1.9,
        parallel_lanes=4,
        power_w=4.2,
        cycles_per_test=178.0,
        cycles_per_node=100.0,
        cycles_per_leaf_test=143.0,
    ),
}

# GPU "parallel_lanes" is an *effective occupancy* figure for this
# latency-bound, uncoalesced pointer-chasing kernel — far below the peak
# core count (the Titan V sustains ~5 progressing warps; the TX2's shared
# LPDDR interface keeps it below one warp-equivalent).
GPU_DEVICES = {
    "titan-v": DeviceSpec(
        name="NVIDIA Titan V",
        kind="gpu",
        clock_ghz=1.2,
        parallel_lanes=172,
        power_w=156.8,
        cycles_per_test=150.0,
        cycles_per_node=400.0,
        cycles_per_leaf_test=7.0,
    ),
    "jetson-tx2": DeviceSpec(
        name="NVIDIA Jetson TX2 (256-core Pascal)",
        kind="gpu",
        clock_ghz=1.3,
        parallel_lanes=6,
        power_w=3.5,
        cycles_per_test=1500.0,
        cycles_per_node=4000.0,
        cycles_per_leaf_test=70.0,
    ),
}

#: Warp width shared by both GPU generations.
WARP_SIZE = 32
