"""CPU baseline: scalar octree traversal, queries parallel across cores."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines.device import DeviceSpec
from repro.collision.octree_cd import OBBOctreeCollider, TraversalTrace
from repro.env.octree import Octree
from repro.geometry.obb import OBB


@dataclass(frozen=True)
class QueryWork:
    """Per-query work counts extracted from a traversal trace."""

    node_visits: int
    tests: int
    hit: bool

    @classmethod
    def from_trace(cls, trace: TraversalTrace) -> "QueryWork":
        return cls(
            node_visits=trace.node_visits,
            tests=trace.intersection_tests,
            hit=trace.hit,
        )


def collect_query_work(
    obbs: Sequence[OBB], octree: Octree, collider: OBBOctreeCollider | None = None
) -> List[QueryWork]:
    """Run every OBB-octree query behaviorally and record its work."""
    if collider is None:
        collider = OBBOctreeCollider(octree)
    return [QueryWork.from_trace(collider.collide(obb)) for obb in obbs]


class CPUModel:
    """Prices a batch of OBB-octree queries on a CPU device."""

    def __init__(self, device: DeviceSpec):
        if device.kind != "cpu":
            raise ValueError(f"{device.name} is not a CPU spec")
        self.device = device

    def traversal_time_s(self, work: Sequence[QueryWork]) -> float:
        """Tree-traversal kernel: per-query serial work, queries over cores."""
        device = self.device
        cycles = sum(
            w.node_visits * device.cycles_per_node + w.tests * device.cycles_per_test
            for w in work
        )
        return cycles / (device.clock_ghz * 1e9 * device.parallel_lanes)

    def leaf_time_s(self, n_queries: int, n_leaves: int) -> float:
        """Leaf-parallel kernel on a CPU: all query x leaf pairs, serially
        shared across cores.  More total work with no divergence to win
        back, which is why Table 3 shows it *slower* on CPUs."""
        device = self.device
        cycles = n_queries * n_leaves * device.cycles_per_leaf_test
        return cycles / (device.clock_ghz * 1e9 * device.parallel_lanes)
