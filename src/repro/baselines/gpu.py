"""GPU baseline: SIMT warp-lockstep traversal with divergence modeling.

The paper's GPU kernel assigns one OBB-octree query per thread (Section
7.5).  Threads in a warp execute in lockstep, so a warp costs the *maximum*
traversal work of its 32 threads — control divergence is the dominant
inefficiency.  Two of the paper's optimizations are modeled structurally:

- *locality-aware warp formation*: queries sorted by OBB position before
  grouping, so warp-mates follow similar traversal paths (less divergence);
- *leaf-parallel kernel*: one thread per (query, leaf) pair — uniform tiny
  work items with zero divergence, trading extra total work for perfect
  SIMD efficiency (a win on big GPUs, a loss on CPUs).
"""

from __future__ import annotations

from enum import Enum
from typing import List, Sequence

import numpy as np

from repro.baselines.cpu import QueryWork
from repro.baselines.device import DeviceSpec, WARP_SIZE
from repro.collision.cascade import CascadeConfig, DEFAULT_CASCADE
from repro.env.octree import Octree
from repro.geometry.obb import OBB


class GPUKernel(Enum):
    """The three Table 3 GPU rows."""

    TRAVERSAL = "obb_octree"
    TRAVERSAL_OPTIMIZED = "obb_octree_optimized"
    LEAF_PARALLEL = "obb_octree_leaf"


class GPUModel:
    """Prices a batch of OBB-octree queries on a GPU device."""

    def __init__(self, device: DeviceSpec):
        if device.kind != "gpu":
            raise ValueError(f"{device.name} is not a GPU spec")
        self.device = device

    # ------------------------------------------------------------------

    def _warp_cycles(self, work: Sequence[QueryWork]) -> float:
        """Lockstep cost of one warp: the slowest thread's traversal."""
        device = self.device
        return max(
            w.node_visits * device.cycles_per_node + w.tests * device.cycles_per_test
            for w in work
        )

    def traversal_time_s(
        self,
        work: Sequence[QueryWork],
        positions: np.ndarray | None = None,
        locality_sort: bool = False,
        memory_interleaving: bool = False,
    ) -> float:
        """Per-thread traversal kernel.

        ``positions`` (one 3D point per query, e.g. the OBB centers) enables
        locality-aware warp formation; ``memory_interleaving`` models the
        interleaved per-thread FIFO queues (reduced memory divergence) as a
        flat discount on the node-fetch share of each warp.
        """
        order = list(range(len(work)))
        if locality_sort:
            if positions is None:
                raise ValueError("locality_sort needs per-query positions")
            order = _morton_order(np.asarray(positions, dtype=float))
        total_cycles = 0.0
        for start in range(0, len(order), WARP_SIZE):
            warp = [work[i] for i in order[start : start + WARP_SIZE]]
            cycles = self._warp_cycles(warp)
            if memory_interleaving:
                # Interleaved queues coalesce node fetches across the warp:
                # the fetch share of the warp's critical path drops sharply.
                fetch_share = max(w.node_visits for w in warp) * self.device.cycles_per_node
                cycles -= 0.75 * fetch_share
            total_cycles += cycles
        return total_cycles / (self.device.clock_ghz * 1e9 * self.device.parallel_lanes / WARP_SIZE)

    def leaf_time_s(self, n_queries: int, n_leaves: int) -> float:
        """Leaf-parallel kernel: uniform work, no divergence."""
        device = self.device
        total_threads = n_queries * max(1, n_leaves)
        cycles_per_warp = device.cycles_per_leaf_test  # uniform -> max == each
        n_warps = (total_threads + WARP_SIZE - 1) // WARP_SIZE
        total_cycles = n_warps * cycles_per_warp * WARP_SIZE / WARP_SIZE
        return total_cycles / (device.clock_ghz * 1e9 * device.parallel_lanes / WARP_SIZE)

    def run_kernel(
        self,
        kernel: GPUKernel,
        work: Sequence[QueryWork],
        positions: np.ndarray | None = None,
        n_leaves: int = 0,
    ) -> float:
        if kernel is GPUKernel.TRAVERSAL:
            return self.traversal_time_s(work)
        if kernel is GPUKernel.TRAVERSAL_OPTIMIZED:
            return self.traversal_time_s(
                work, positions=positions, locality_sort=True, memory_interleaving=True
            )
        return self.leaf_time_s(len(work), n_leaves)


def batch_reference_work(
    obbs: Sequence[OBB], octree: Octree, config: CascadeConfig = DEFAULT_CASCADE
) -> List[QueryWork]:
    """Per-query work via the vectorized pipeline (the lane-level reference).

    Functionally equivalent to :func:`repro.baselines.cpu.collect_query_work`
    — the batch traversal replays the scalar early-exit accounting exactly —
    but evaluates all queries in one vectorized pass, which is what the GPU
    cost model's lane-per-query abstraction actually corresponds to.
    """
    from repro.collision.batch import BatchOBBs, BatchOctreeCollider

    collider = BatchOctreeCollider(octree, config)
    return collider.collide(BatchOBBs.from_obbs(obbs)).query_work()


def _morton_order(positions: np.ndarray) -> List[int]:
    """Sort order by interleaved-bit (Morton) code of quantized positions."""
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {positions.shape}")
    lo = positions.min(axis=0)
    hi = positions.max(axis=0)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    grid = np.clip(((positions - lo) / span * 1023).astype(np.int64), 0, 1023)

    def spread(v: int) -> int:
        v &= 0x3FF
        v = (v | (v << 16)) & 0x030000FF
        v = (v | (v << 8)) & 0x0300F00F
        v = (v | (v << 4)) & 0x030C30C3
        v = (v | (v << 2)) & 0x09249249
        return v

    codes = [
        (spread(int(x)) << 2) | (spread(int(y)) << 1) | spread(int(z))
        for x, y, z in grid
    ]
    return list(np.argsort(codes, kind="stable"))
