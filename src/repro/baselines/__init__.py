"""Behavioral CPU and GPU baseline models (Section 7.5, Table 3).

The paper measures OBB-octree collision detection on two GPUs (NVIDIA
Titan V, Jetson TX2) and two CPUs (Intel i7-4771, ARM Cortex-A57).  We
cannot run those devices here, so this package models them behaviorally:
the *work* (octree traversal steps, intersection tests, warp divergence)
comes from the actual collision queries executed by our substrate, and
per-device throughput constants are calibrated to the paper's published
measurements.  The comparisons the table makes — divergence-aware warp
formation helping GPUs, leaf-parallel kernels helping GPUs but hurting
CPUs, the accelerator beating everything — emerge from the model structure,
not from the constants.
"""

from repro.baselines.cpu import CPUModel
from repro.baselines.device import CPU_DEVICES, DeviceSpec, GPU_DEVICES
from repro.baselines.gpu import GPUModel, GPUKernel

__all__ = [
    "DeviceSpec",
    "CPU_DEVICES",
    "GPU_DEVICES",
    "CPUModel",
    "GPUModel",
    "GPUKernel",
]
