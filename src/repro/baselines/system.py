"""System-level baseline timing: motion planning on CPU/GPU hosts.

Table 3's bottom row reports the average MPNet motion planning runtime per
device.  The paper built simulators for the CPU+DNN-accelerator and
GPU+controller+DNN-accelerator systems; we do the same behaviorally:

- collision detection work comes from the recorded CD phases (sequential
  early-exit semantics on a CPU core; phase-wide parallel evaluation with
  no early exit on a GPU),
- neural inference is priced with per-device inference-time constants,
- a small per-phase host overhead models kernel launch / dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.device import DeviceSpec
from repro.harness.traces import QueryTrace
from repro.planning.motion import CDPhase

#: Per-device single-sample MPNet inference latency (seconds).  GPU values
#: reflect the paper's profiling ("neural network inference consumes 2% of
#: total time" on the Titan V system); CPU values are BLAS-on-host figures.
NN_INFERENCE_S = {
    "titan-v": 3.0e-5,
    "jetson-tx2": 6.0e-4,
    "i7-4771": 1.2e-4,
    "cortex-a57": 8.0e-4,
}

#: Host-side overhead per CD phase (dispatch, kernel launch on GPUs).
PHASE_OVERHEAD_S = {
    "titan-v": 8.0e-6,
    "jetson-tx2": 4.0e-5,
    "i7-4771": 1.0e-6,
    "cortex-a57": 3.0e-6,
}


@dataclass(frozen=True)
class SystemTiming:
    """Motion planning latency breakdown on a baseline system."""

    collision_detection_s: float
    nn_inference_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return self.collision_detection_s + self.nn_inference_s + self.overhead_s

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3


class BaselineSystemModel:
    """Prices a recorded MPNet query on a CPU or GPU host."""

    def __init__(self, device_key: str, device: DeviceSpec, links_per_pose: float = 7.0):
        self.device_key = device_key
        self.device = device
        self.links_per_pose = links_per_pose
        # Average cycles for one OBB-octree query on this device, taken
        # from the same per-query cost model as the Table 3 CD rows
        # (typical traversal: ~3.8 node fetches, ~12.5 cascade tests).
        self.cycles_per_obb_query = (
            3.8 * device.cycles_per_node + 12.5 * device.cycles_per_test
        )

    def _pose_check_cycles(self) -> float:
        # A pose check runs up to `links_per_pose` OBB queries; early exit
        # on colliding links makes the average a bit lower, folded into a
        # 0.9 utilization factor.
        return 0.9 * self.links_per_pose * self.cycles_per_obb_query

    def cd_time_s(self, phases: List[CDPhase]) -> float:
        device = self.device
        pose_cycles = self._pose_check_cycles()
        total_cycles = 0.0
        for phase in phases:
            if device.kind == "cpu":
                # One core runs the planner's CD loop with early exit.
                tests = phase.sequential_reference().tests
                total_cycles += tests * pose_cycles
            else:
                # GPU: every pose of every motion evaluated in parallel,
                # no early exit; warps progress at the effective occupancy.
                poses = phase.total_poses
                warps = max(1, (poses + 31) // 32)
                lanes = max(1, device.parallel_lanes // 32)
                total_cycles += warps * pose_cycles / lanes
        return total_cycles / (device.clock_ghz * 1e9)

    def run_query(self, trace: QueryTrace) -> SystemTiming:
        nn_s = (
            trace.result.nn_inferences + trace.result.encoder_inferences
        ) * NN_INFERENCE_S[self.device_key]
        overhead_s = len(trace.phases) * PHASE_OVERHEAD_S[self.device_key]
        return SystemTiming(
            collision_detection_s=self.cd_time_s(trace.phases),
            nn_inference_s=nn_s,
            overhead_s=overhead_s,
        )
