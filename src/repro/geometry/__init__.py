"""Geometric primitives and intersection tests used by the MPAccel datapath.

The hardware represents the robot as a set of oriented bounding boxes (OBBs)
and the environment as an octree of axis-aligned bounding boxes (AABBs).
Every intersection test in this package counts the fixed-point multiplies it
performs, because the paper uses multiply count as its computation/energy
proxy (Section 4 and Figure 8a).
"""

from repro.geometry.aabb import AABB
from repro.geometry.fixed_point import FixedPointFormat, DEFAULT_FORMAT
from repro.geometry.obb import OBB
from repro.geometry.sat import (
    SAT_AXIS_COUNT,
    SAT_TOTAL_MULTIPLIES,
    SATResult,
    sat_axis_test,
    sat_obb_aabb,
)
from repro.geometry.sphere import (
    Sphere,
    sphere_aabb_overlap,
    sphere_sphere_overlap,
)
from repro.geometry.transform import (
    RigidTransform,
    rotation_x,
    rotation_y,
    rotation_z,
)

__all__ = [
    "AABB",
    "OBB",
    "Sphere",
    "RigidTransform",
    "FixedPointFormat",
    "DEFAULT_FORMAT",
    "SATResult",
    "SAT_AXIS_COUNT",
    "SAT_TOTAL_MULTIPLIES",
    "sat_axis_test",
    "sat_obb_aabb",
    "sphere_aabb_overlap",
    "sphere_sphere_overlap",
    "rotation_x",
    "rotation_y",
    "rotation_z",
]
