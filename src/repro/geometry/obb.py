"""Oriented bounding boxes: the robot-side collision primitive.

The hardware encodes each OBB with 17 16-bit values: 3 for the center, 3 for
the half extents, 9 for the 3x3 orientation, and 2 for the radii of its
bounding and inscribed spheres (Section 5.2).  The sphere radii are what the
cascaded early-exit filters use, so they are first-class here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.aabb import AABB, OCTANT_SIGNS
from repro.geometry.transform import RigidTransform


class OBB:
    """Oriented box: center, half extents, and a 3x3 rotation matrix.

    The rotation's columns are the box's local axes expressed in world
    coordinates.
    """

    __slots__ = ("center", "half_extents", "rotation")

    def __init__(self, center, half_extents, rotation=None):
        self.center = np.asarray(center, dtype=float)
        self.half_extents = np.asarray(half_extents, dtype=float)
        self.rotation = (
            np.eye(3) if rotation is None else np.asarray(rotation, dtype=float)
        )
        if self.center.shape != (3,) or self.half_extents.shape != (3,):
            raise ValueError("OBB center and half_extents must be length-3")
        if self.rotation.shape != (3, 3):
            raise ValueError("OBB rotation must be a 3x3 matrix")
        if np.any(self.half_extents <= 0):
            raise ValueError(f"half extents must be positive, got {self.half_extents}")

    @classmethod
    def from_aabb(cls, aabb: AABB) -> "OBB":
        return cls(aabb.center, aabb.half_extents, np.eye(3))

    @property
    def bounding_sphere_radius(self) -> float:
        """Radius of the smallest sphere containing the box (half diagonal)."""
        return float(math.sqrt(float(np.dot(self.half_extents, self.half_extents))))

    @property
    def inscribed_sphere_radius(self) -> float:
        """Radius of the largest sphere inside the box (smallest half extent)."""
        return float(np.min(self.half_extents))

    @property
    def volume(self) -> float:
        return float(np.prod(2.0 * self.half_extents))

    def transformed(self, transform: RigidTransform) -> "OBB":
        """This box re-expressed after applying a rigid transform."""
        return OBB(
            transform.apply(self.center),
            self.half_extents,
            transform.rotation @ self.rotation,
        )

    def corners(self) -> np.ndarray:
        """The 8 corner points in world coordinates, shape (8, 3)."""
        local = OCTANT_SIGNS * self.half_extents
        return self.center + local @ self.rotation.T

    def enclosing_aabb(self) -> AABB:
        """Tightest axis-aligned box containing this OBB."""
        reach = np.abs(self.rotation) @ self.half_extents
        return AABB(self.center, reach)

    def contains_point(self, point) -> bool:
        """Whether a world-space point lies inside the box."""
        local = self.rotation.T @ (np.asarray(point, dtype=float) - self.center)
        return bool(np.all(np.abs(local) <= self.half_extents))

    def __repr__(self) -> str:
        c, h = self.center, self.half_extents
        return (
            f"OBB(center=[{c[0]:.3f}, {c[1]:.3f}, {c[2]:.3f}], "
            f"half=[{h[0]:.3f}, {h[1]:.3f}, {h[2]:.3f}])"
        )
