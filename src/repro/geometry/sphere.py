"""Sphere primitives and the cheap sphere-vs-AABB overlap test.

The sphere-AABB test is the first stage of the cascaded early-exit flow: it
needs only 3 multiplications (one square per axis) against 81 for a full
15-axis separating-axis test (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB

SPHERE_AABB_MULTIPLIES = 3
SPHERE_SPHERE_MULTIPLIES = 4  # 3 squared deltas + 1 squared radius sum


@dataclass(frozen=True)
class Sphere:
    """A sphere given by a world-space center and radius."""

    center: tuple
    radius: float

    def __post_init__(self):
        if self.radius <= 0:
            raise ValueError(f"sphere radius must be positive, got {self.radius}")


def sphere_aabb_overlap(center, radius: float, aabb: AABB) -> bool:
    """True when a sphere and an AABB overlap.

    Computed by clamping the sphere center to the box and comparing the
    squared distance to the squared radius — 3 multiplies as in the paper.
    """
    cx, cy, cz = float(center[0]), float(center[1]), float(center[2])
    bx, by, bz = (
        float(aabb.center[0]),
        float(aabb.center[1]),
        float(aabb.center[2]),
    )
    hx, hy, hz = (
        float(aabb.half_extents[0]),
        float(aabb.half_extents[1]),
        float(aabb.half_extents[2]),
    )
    dx = abs(cx - bx) - hx
    dy = abs(cy - by) - hy
    dz = abs(cz - bz) - hz
    dist_sq = 0.0
    if dx > 0.0:
        dist_sq += dx * dx
    if dy > 0.0:
        dist_sq += dy * dy
    if dz > 0.0:
        dist_sq += dz * dz
    return dist_sq <= radius * radius


def sphere_inside_aabb_test(center, radius: float, aabb: AABB) -> bool:
    """True when the sphere's center region guarantees deep overlap.

    Used by the inscribed-sphere filter (Figure 9b): if the inscribed sphere
    of the OBB overlaps the AABB, the OBB certainly collides with it.  The
    geometric test is identical to :func:`sphere_aabb_overlap`; this alias
    exists so call sites read like the flowchart in Figure 10.
    """
    return sphere_aabb_overlap(center, radius, aabb)


def sphere_sphere_overlap(center_a, radius_a: float, center_b, radius_b: float) -> bool:
    """True when two spheres overlap (squared-distance comparison)."""
    delta = np.asarray(center_a, dtype=float) - np.asarray(center_b, dtype=float)
    limit = radius_a + radius_b
    return float(delta @ delta) <= limit * limit
