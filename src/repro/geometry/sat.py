"""Separating-axis test between an OBB and an AABB.

There are 15 candidate separating axes for a pair of boxes (Section 2.2):

* axes 1-3: the AABB's face normals (the world axes),
* axes 4-6: the OBB's face normals (its rotation columns),
* axes 7-15: the 9 cross products of one edge direction from each box.

The per-axis multiply counts mirror the fixed-point datapath: 3 for an AABB
face axis, 6 for an OBB face axis, and 6 for a cross axis — 81 multiplies for
all 15 axes, the figure the paper quotes for a full test.

This module is the innermost hot loop of the whole simulator, so it works on
plain Python floats extracted once from the numpy-backed primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB

SAT_AXIS_COUNT = 15
#: Multiplies per axis test, indexed by 0-based axis identifier.
SAT_AXIS_MULTIPLIES = (3, 3, 3, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6)
SAT_TOTAL_MULTIPLIES = sum(SAT_AXIS_MULTIPLIES)  # == 81

# Numerical guard: treat near-parallel cross axes as degenerate rather than
# reporting a phantom separation from floating-point noise.
_EPS = 1e-9


@dataclass(frozen=True)
class SATResult:
    """Outcome of a (possibly partial) separating-axis test.

    ``separating_axis`` is the 1-based identifier of the first axis that
    separated the boxes, or ``None`` when no tested axis separated them.
    ``axes_tested`` and ``multiplies`` record the work performed, including
    the failed tests before the successful one.
    """

    separating_axis: Optional[int]
    axes_tested: int
    multiplies: int

    @property
    def overlapping(self) -> bool:
        """True when no separating axis was found among the tested axes."""
        return self.separating_axis is None


def _extract(obb: OBB, aabb: AABB):
    """Pull the 21 scalars the axis tests need out of the numpy primitives."""
    rot = obb.rotation
    r00, r01, r02 = float(rot[0, 0]), float(rot[0, 1]), float(rot[0, 2])
    r10, r11, r12 = float(rot[1, 0]), float(rot[1, 1]), float(rot[1, 2])
    r20, r21, r22 = float(rot[2, 0]), float(rot[2, 1]), float(rot[2, 2])
    a0 = float(aabb.half_extents[0])
    a1 = float(aabb.half_extents[1])
    a2 = float(aabb.half_extents[2])
    b0 = float(obb.half_extents[0])
    b1 = float(obb.half_extents[1])
    b2 = float(obb.half_extents[2])
    t0 = float(obb.center[0]) - float(aabb.center[0])
    t1 = float(obb.center[1]) - float(aabb.center[1])
    t2 = float(obb.center[2]) - float(aabb.center[2])
    return (
        (r00, r01, r02, r10, r11, r12, r20, r21, r22),
        (a0, a1, a2),
        (b0, b1, b2),
        (t0, t1, t2),
    )


def extract_obb_scalars(obb: OBB):
    """Plain-float view of an OBB for the scalar hot path.

    Returns ``(rot9, half3, center3, r_bounding, r_inscribed)`` where rot9 is
    the row-major rotation and the radii are the bounding/inscribed sphere
    radii the hardware stores alongside the box (Section 5.2).
    """
    rot = obb.rotation
    rot9 = (
        float(rot[0, 0]),
        float(rot[0, 1]),
        float(rot[0, 2]),
        float(rot[1, 0]),
        float(rot[1, 1]),
        float(rot[1, 2]),
        float(rot[2, 0]),
        float(rot[2, 1]),
        float(rot[2, 2]),
    )
    half3 = (
        float(obb.half_extents[0]),
        float(obb.half_extents[1]),
        float(obb.half_extents[2]),
    )
    center3 = (float(obb.center[0]), float(obb.center[1]), float(obb.center[2]))
    return rot9, half3, center3, obb.bounding_sphere_radius, obb.inscribed_sphere_radius


def test_axis_scalars(axis_id: int, rot, a, b, t) -> bool:
    """Single-axis SAT on pre-extracted scalars (see :func:`extract_obb_scalars`).

    ``a`` is the AABB half extents, ``b`` the OBB half extents, and ``t`` the
    OBB center minus the AABB center.
    """
    return _test_axis(axis_id, rot, a, b, t)


def sat_axis_test(obb: OBB, aabb: AABB, axis_id: int) -> bool:
    """Run a single axis test; True when axis ``axis_id`` (1-based) separates."""
    if not 1 <= axis_id <= SAT_AXIS_COUNT:
        raise ValueError(f"axis_id must be in [1, 15], got {axis_id}")
    rot, a, b, t = _extract(obb, aabb)
    return _test_axis(axis_id, rot, a, b, t)


def _test_axis(axis_id, rot, a, b, t) -> bool:
    (r00, r01, r02, r10, r11, r12, r20, r21, r22) = rot
    a0, a1, a2 = a
    b0, b1, b2 = b
    t0, t1, t2 = t
    ar00, ar01, ar02 = abs(r00), abs(r01), abs(r02)
    ar10, ar11, ar12 = abs(r10), abs(r11), abs(r12)
    ar20, ar21, ar22 = abs(r20), abs(r21), abs(r22)

    if axis_id == 1:  # AABB face x
        return abs(t0) > a0 + b0 * ar00 + b1 * ar01 + b2 * ar02
    if axis_id == 2:  # AABB face y
        return abs(t1) > a1 + b0 * ar10 + b1 * ar11 + b2 * ar12
    if axis_id == 3:  # AABB face z
        return abs(t2) > a2 + b0 * ar20 + b1 * ar21 + b2 * ar22
    if axis_id == 4:  # OBB face 0
        return abs(t0 * r00 + t1 * r10 + t2 * r20) > (
            b0 + a0 * ar00 + a1 * ar10 + a2 * ar20
        )
    if axis_id == 5:  # OBB face 1
        return abs(t0 * r01 + t1 * r11 + t2 * r21) > (
            b1 + a0 * ar01 + a1 * ar11 + a2 * ar21
        )
    if axis_id == 6:  # OBB face 2
        return abs(t0 * r02 + t1 * r12 + t2 * r22) > (
            b2 + a0 * ar02 + a1 * ar12 + a2 * ar22
        )

    # Cross axes: e_i x B_j for i, j in {0, 1, 2}, axis_id 7..15.
    cross_index = axis_id - 7
    i, j = divmod(cross_index, 3)
    if i == 0:
        if j == 0:
            ra = a1 * ar20 + a2 * ar10
            rb = b1 * ar02 + b2 * ar01
            tl = t2 * r10 - t1 * r20
        elif j == 1:
            ra = a1 * ar21 + a2 * ar11
            rb = b0 * ar02 + b2 * ar00
            tl = t2 * r11 - t1 * r21
        else:
            ra = a1 * ar22 + a2 * ar12
            rb = b0 * ar01 + b1 * ar00
            tl = t2 * r12 - t1 * r22
    elif i == 1:
        if j == 0:
            ra = a0 * ar20 + a2 * ar00
            rb = b1 * ar12 + b2 * ar11
            tl = t0 * r20 - t2 * r00
        elif j == 1:
            ra = a0 * ar21 + a2 * ar01
            rb = b0 * ar12 + b2 * ar10
            tl = t0 * r21 - t2 * r01
        else:
            ra = a0 * ar22 + a2 * ar02
            rb = b0 * ar11 + b1 * ar10
            tl = t0 * r22 - t2 * r02
    else:
        if j == 0:
            ra = a0 * ar10 + a1 * ar00
            rb = b1 * ar22 + b2 * ar21
            tl = t1 * r00 - t0 * r10
        elif j == 1:
            ra = a0 * ar11 + a1 * ar01
            rb = b0 * ar22 + b2 * ar20
            tl = t1 * r01 - t0 * r11
        else:
            ra = a0 * ar12 + a1 * ar02
            rb = b0 * ar21 + b1 * ar20
            tl = t1 * r02 - t0 * r12
    return abs(tl) > ra + rb + _EPS


def sat_obb_aabb(
    obb: OBB,
    aabb: AABB,
    axis_ids: Optional[Sequence[int]] = None,
) -> SATResult:
    """Run axis tests in order, stopping at the first separating axis.

    ``axis_ids`` selects which (1-based) axes to test and in what order;
    by default all 15 axes run in their canonical order.  When a subset is
    given and no axis in it separates, the result reports overlap *for that
    subset* — callers staging the test (6-5-4 cascade) chain subsets.
    """
    if axis_ids is None:
        axis_ids = range(1, SAT_AXIS_COUNT + 1)
    rot, a, b, t = _extract(obb, aabb)
    tested = 0
    multiplies = 0
    for axis_id in axis_ids:
        tested += 1
        multiplies += SAT_AXIS_MULTIPLIES[axis_id - 1]
        if _test_axis(axis_id, rot, a, b, t):
            return SATResult(axis_id, tested, multiplies)
    return SATResult(None, tested, multiplies)


def obb_aabb_overlap(obb: OBB, aabb: AABB) -> bool:
    """Exact boolean overlap test (all 15 axes, early exit)."""
    return sat_obb_aabb(obb, aabb).overlapping


def first_separating_axis(obb: OBB, aabb: AABB) -> Optional[int]:
    """1-based identifier of the first separating axis, or None if colliding."""
    return sat_obb_aabb(obb, aabb).separating_axis


def stage_axis_ids(stages: Tuple[int, ...] = (6, 5, 4)) -> Tuple[Tuple[int, ...], ...]:
    """Split the canonical axis order into contiguous stages (default 6-5-4)."""
    if sum(stages) != SAT_AXIS_COUNT:
        raise ValueError(f"stage sizes must sum to {SAT_AXIS_COUNT}, got {stages}")
    if any(s <= 0 for s in stages):
        raise ValueError(f"stage sizes must be positive, got {stages}")
    out = []
    start = 1
    for size in stages:
        out.append(tuple(range(start, start + size)))
        start += size
    return tuple(out)
