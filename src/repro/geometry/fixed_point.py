"""16-bit fixed-point quantization emulating the MPAccel datapath.

The accelerator stores poses, OBBs, and AABBs as 16-bit fixed-point values
(Section 6).  We emulate that by snapping floats to a signed Qm.n grid with
saturation, so the behavioral simulator sees exactly the rounded values the
hardware would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format with ``total_bits`` bits, ``frac_bits`` fractional.

    The representable range is [-2^(i), 2^(i) - 2^-f] for i integer bits
    (total - frac - 1 sign bit) and f fractional bits.
    """

    total_bits: int = 16
    frac_bits: int = 10

    def __post_init__(self):
        if self.total_bits < 2:
            raise ValueError("need at least a sign bit and one value bit")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError(
                f"frac_bits must be in [0, {self.total_bits}), got {self.frac_bits}"
            )

    @property
    def scale(self) -> float:
        return float(2**self.frac_bits)

    @property
    def resolution(self) -> float:
        """Smallest representable step."""
        return 1.0 / self.scale

    @property
    def max_value(self) -> float:
        return (2 ** (self.total_bits - 1) - 1) / self.scale

    @property
    def min_value(self) -> float:
        return -(2 ** (self.total_bits - 1)) / self.scale

    def quantize(self, value):
        """Round to the grid with saturation; works on scalars and arrays."""
        arr = np.asarray(value, dtype=float)
        raw = np.rint(arr * self.scale)
        raw = np.clip(raw, -(2 ** (self.total_bits - 1)), 2 ** (self.total_bits - 1) - 1)
        # ``+ 0.0`` normalizes -0.0 to +0.0: the hardware raw value 0 has one
        # encoding, and the scalar snap path (integer ``round``) agrees.
        out = raw / self.scale + 0.0
        if np.isscalar(value) or getattr(value, "shape", None) == ():
            return float(out)
        return out

    def to_raw(self, value):
        """The saturated integer raw word(s) backing ``quantize(value)``."""
        arr = np.asarray(value, dtype=float)
        raw = np.rint(arr * self.scale)
        raw = np.clip(
            raw, -(2 ** (self.total_bits - 1)), 2 ** (self.total_bits - 1) - 1
        )
        if np.isscalar(value) or getattr(value, "shape", None) == ():
            return int(raw)
        return raw.astype(np.int64)

    def from_raw(self, raw):
        """Grid value(s) for integer raw word(s); exact inverse of to_raw."""
        arr = np.asarray(raw, dtype=np.int64)
        lo = -(2 ** (self.total_bits - 1))
        hi = 2 ** (self.total_bits - 1) - 1
        if np.any(arr < lo) or np.any(arr > hi):
            raise ValueError(
                f"raw word out of range [{lo}, {hi}] for {self.total_bits}-bit format"
            )
        out = arr / self.scale
        if np.isscalar(raw) or getattr(raw, "shape", None) == ():
            return float(out)
        return out

    def quantization_error(self, value) -> float:
        """Max absolute error introduced by quantizing ``value``."""
        arr = np.asarray(value, dtype=float)
        return float(np.max(np.abs(arr - self.quantize(arr))))

    def representable(self, value) -> bool:
        """Whether ``value`` is exactly on the grid and within range."""
        arr = np.asarray(value, dtype=float)
        if np.any(arr > self.max_value) or np.any(arr < self.min_value):
            return False
        return bool(np.allclose(arr * self.scale, np.rint(arr * self.scale)))


#: Format used across the simulator: Q5.10 covers a +-32 m workspace at
#: sub-millimeter (2^-10 m) resolution, matching the paper's 16-bit datapath.
DEFAULT_FORMAT = FixedPointFormat(total_bits=16, frac_bits=10)

#: Rotation matrix entries live in [-1, 1], so they get a dedicated format
#: with all value bits fractional for maximum angular resolution.
ROTATION_FORMAT = FixedPointFormat(total_bits=16, frac_bits=14)


def quantize_aabb(aabb: AABB, fmt: FixedPointFormat = DEFAULT_FORMAT) -> AABB:
    """An AABB with center and half extents snapped to the fixed-point grid.

    Half extents round *up* to the next representable value so quantization
    never shrinks an obstacle (a false negative in collision detection would
    be unsafe; a false positive is merely conservative).
    """
    step = fmt.resolution
    half = np.ceil(np.asarray(aabb.half_extents) / step) * step
    half = np.clip(half, step, fmt.max_value)
    return AABB(fmt.quantize(aabb.center), half)


def quantize_obb(
    obb: OBB,
    fmt: FixedPointFormat = DEFAULT_FORMAT,
    rot_fmt: FixedPointFormat = ROTATION_FORMAT,
) -> OBB:
    """An OBB with all 17 stored values snapped to their fixed-point grids.

    Half extents round up (conservative, like :func:`quantize_aabb`).  This
    runs once per link per pose check, so it uses scalar math rather than
    numpy ufuncs.
    """
    scale = fmt.scale
    inv = 1.0 / scale
    raw_max = 2 ** (fmt.total_bits - 1) - 1
    raw_min = -(2 ** (fmt.total_bits - 1))

    def snap(value: float) -> float:
        raw = round(value * scale)
        if raw > raw_max:
            raw = raw_max
        elif raw < raw_min:
            raw = raw_min
        return raw * inv

    def snap_up(value: float) -> float:
        raw = math.ceil(value * scale)
        if raw > raw_max:
            raw = raw_max
        elif raw < 1:
            raw = 1
        return raw * inv

    rscale = rot_fmt.scale
    rinv = 1.0 / rscale
    rmax = 2 ** (rot_fmt.total_bits - 1) - 1
    rmin = -(2 ** (rot_fmt.total_bits - 1))

    def snap_rot(value: float) -> float:
        raw = round(value * rscale)
        if raw > rmax:
            raw = rmax
        elif raw < rmin:
            raw = rmin
        return raw * rinv

    c = obb.center
    h = obb.half_extents
    rot = obb.rotation
    center = np.array([snap(c[0]), snap(c[1]), snap(c[2])])
    half = np.array([snap_up(h[0]), snap_up(h[1]), snap_up(h[2])])
    rotation = np.array(
        [
            [snap_rot(rot[0, 0]), snap_rot(rot[0, 1]), snap_rot(rot[0, 2])],
            [snap_rot(rot[1, 0]), snap_rot(rot[1, 1]), snap_rot(rot[1, 2])],
            [snap_rot(rot[2, 0]), snap_rot(rot[2, 1]), snap_rot(rot[2, 2])],
        ]
    )
    return OBB(center, half, rotation)
