"""Rigid 3D transforms (rotation + translation) backed by 4x4 matrices."""

from __future__ import annotations

import math

import numpy as np


def rotation_x(angle: float) -> np.ndarray:
    """3x3 rotation about the X axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def rotation_y(angle: float) -> np.ndarray:
    """3x3 rotation about the Y axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotation_z(angle: float) -> np.ndarray:
    """3x3 rotation about the Z axis by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


class RigidTransform:
    """A rotation followed by a translation, stored as a 4x4 matrix.

    The class wraps a homogeneous matrix but only ever stores proper rigid
    transforms; composition and inversion stay closed under that set.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray | None = None):
        if matrix is None:
            matrix = np.eye(4)
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (4, 4):
            raise ValueError(f"expected a 4x4 matrix, got shape {matrix.shape}")
        self.matrix = matrix

    @classmethod
    def identity(cls) -> "RigidTransform":
        return cls(np.eye(4))

    @classmethod
    def from_parts(cls, rotation: np.ndarray, translation) -> "RigidTransform":
        """Build from a 3x3 rotation and a length-3 translation."""
        rotation = np.asarray(rotation, dtype=float)
        translation = np.asarray(translation, dtype=float)
        if rotation.shape != (3, 3):
            raise ValueError(f"rotation must be 3x3, got {rotation.shape}")
        if translation.shape != (3,):
            raise ValueError(f"translation must be length 3, got {translation.shape}")
        matrix = np.eye(4)
        matrix[:3, :3] = rotation
        matrix[:3, 3] = translation
        return cls(matrix)

    @classmethod
    def from_translation(cls, translation) -> "RigidTransform":
        return cls.from_parts(np.eye(3), translation)

    @property
    def rotation(self) -> np.ndarray:
        return self.matrix[:3, :3]

    @property
    def translation(self) -> np.ndarray:
        return self.matrix[:3, 3]

    def compose(self, other: "RigidTransform") -> "RigidTransform":
        """Return ``self @ other`` (apply ``other`` first, then ``self``)."""
        return RigidTransform(self.matrix @ other.matrix)

    def __matmul__(self, other: "RigidTransform") -> "RigidTransform":
        return self.compose(other)

    def apply(self, point) -> np.ndarray:
        """Transform a point (or an (N, 3) array of points)."""
        point = np.asarray(point, dtype=float)
        return point @ self.rotation.T + self.translation

    def apply_direction(self, direction) -> np.ndarray:
        """Rotate a direction vector without translating it."""
        direction = np.asarray(direction, dtype=float)
        return direction @ self.rotation.T

    def inverse(self) -> "RigidTransform":
        rot_t = self.rotation.T
        return RigidTransform.from_parts(rot_t, -rot_t @ self.translation)

    def is_rigid(self, tol: float = 1e-6) -> bool:
        """Check orthonormality and unit determinant of the rotation part."""
        rot = self.rotation
        if not np.allclose(rot @ rot.T, np.eye(3), atol=tol):
            return False
        return abs(np.linalg.det(rot) - 1.0) <= tol

    def __repr__(self) -> str:
        t = self.translation
        return f"RigidTransform(t=[{t[0]:.3f}, {t[1]:.3f}, {t[2]:.3f}])"
