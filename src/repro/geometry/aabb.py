"""Axis-aligned bounding boxes.

Octree nodes hand AABBs (center + half extents, 6 x 16-bit values in the
hardware) to the Intersection Unit, so this is the environment-side primitive
of every collision test.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

# Offsets of the 8 octants of a box, in Morton (zyx bit) order.  Octant k has
# bit 0 = +x half, bit 1 = +y half, bit 2 = +z half.
OCTANT_SIGNS = np.array(
    [
        [-1, -1, -1],
        [+1, -1, -1],
        [-1, +1, -1],
        [+1, +1, -1],
        [-1, -1, +1],
        [+1, -1, +1],
        [-1, +1, +1],
        [+1, +1, +1],
    ],
    dtype=float,
)


class AABB:
    """Axis-aligned box given by center and (strictly positive) half extents."""

    __slots__ = ("center", "half_extents")

    def __init__(self, center, half_extents):
        self.center = np.asarray(center, dtype=float)
        self.half_extents = np.asarray(half_extents, dtype=float)
        if self.center.shape != (3,) or self.half_extents.shape != (3,):
            raise ValueError("AABB center and half_extents must be length-3")
        if np.any(self.half_extents <= 0):
            raise ValueError(f"half extents must be positive, got {self.half_extents}")

    @classmethod
    def from_min_max(cls, minimum, maximum) -> "AABB":
        minimum = np.asarray(minimum, dtype=float)
        maximum = np.asarray(maximum, dtype=float)
        if np.any(maximum <= minimum):
            raise ValueError("maximum must exceed minimum on every axis")
        return cls((minimum + maximum) / 2.0, (maximum - minimum) / 2.0)

    @property
    def minimum(self) -> np.ndarray:
        return self.center - self.half_extents

    @property
    def maximum(self) -> np.ndarray:
        return self.center + self.half_extents

    @property
    def volume(self) -> float:
        return float(np.prod(2.0 * self.half_extents))

    def contains_point(self, point) -> bool:
        point = np.asarray(point, dtype=float)
        return bool(np.all(np.abs(point - self.center) <= self.half_extents))

    def overlaps(self, other: "AABB") -> bool:
        """Axis-interval overlap test between two AABBs (closed boxes)."""
        return bool(
            np.all(
                np.abs(self.center - other.center)
                <= self.half_extents + other.half_extents
            )
        )

    def octant(self, index: int) -> "AABB":
        """The ``index``-th (0-7, Morton order) octant of this box."""
        if not 0 <= index < 8:
            raise ValueError(f"octant index must be in [0, 8), got {index}")
        quarter = self.half_extents / 2.0
        return AABB(self.center + OCTANT_SIGNS[index] * quarter, quarter)

    def octants(self) -> Iterator["AABB"]:
        for index in range(8):
            yield self.octant(index)

    def corners(self) -> np.ndarray:
        """The 8 corner points, shape (8, 3), Morton order."""
        return self.center + OCTANT_SIGNS * self.half_extents

    def expanded(self, margin: float) -> "AABB":
        return AABB(self.center, self.half_extents + margin)

    def intersection_volume(self, other: "AABB") -> float:
        """Volume of the overlap region (0.0 when disjoint)."""
        lo = np.maximum(self.minimum, other.minimum)
        hi = np.minimum(self.maximum, other.maximum)
        extent = np.clip(hi - lo, 0.0, None)
        return float(np.prod(extent))

    def __eq__(self, other) -> bool:
        if not isinstance(other, AABB):
            return NotImplemented
        return bool(
            np.array_equal(self.center, other.center)
            and np.array_equal(self.half_extents, other.half_extents)
        )

    def __hash__(self):
        return hash((tuple(self.center), tuple(self.half_extents)))

    def __repr__(self) -> str:
        c, h = self.center, self.half_extents
        return (
            f"AABB(center=[{c[0]:.3f}, {c[1]:.3f}, {c[2]:.3f}], "
            f"half=[{h[0]:.3f}, {h[1]:.3f}, {h[2]:.3f}])"
        )
