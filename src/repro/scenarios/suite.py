"""The standardized benchmark suite: planner x engine x scenario sweeps.

Nova-benchmark-style discipline over the scenario corpus
(:mod:`repro.scenarios.dsl`): every case is one (scenario, planner,
engine) cell, run on the frozen instance regenerated from the spec, and
reported with

- **success rate** over the scenario's query set,
- **latency percentiles in simulated ms** — each query's recorded phase
  trace priced on the MPAccel model
  (:class:`~repro.accel.mpaccel.MPAccelSimulator`, cycle-accurate SAS
  replay), so the number is hardware latency, not Python wall clock
  (wall clock is reported alongside, unguarded),
- **collision-check counts** from the checker's
  :class:`~repro.collision.stats.CollisionStats` (bit-identical across
  engines by the engine contract — the suite asserts nothing less),
- **energy** via the accelerator energy model (pJ accumulated by the SAS
  replay),
- for multi-arm scenes, **cross-robot contacts** along the emitted path
  (:func:`repro.scenarios.multiarm.path_cross_robot_contacts`),
- for moving-obstacle scenarios, a per-epoch ledger of cache
  invalidations and replan outcomes driven through
  :meth:`~repro.collision.checker.RobotEnvironmentChecker.update_octree`.

:func:`suite_payload` shapes a run into the machine-readable
``BENCH_scenarios.json`` artifact
(:mod:`repro.harness.bench_artifact`), which
``benchmarks/collect_bench.py`` folds into the cross-PR trajectory.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.scenarios.dsl import ScenarioInstance, ScenarioSpec, build_scenario

__all__ = [
    "SUITE_PLANNERS",
    "SUITE_ENGINES",
    "CaseResult",
    "SuiteReport",
    "default_corpus",
    "run_case",
    "run_suite",
    "suite_payload",
    "percentile",
]

#: Planner kinds the suite sweeps (the facade-constructible ones).
SUITE_PLANNERS = ("rrt", "rrt_connect", "prm")
#: Engine kinds the suite sweeps.
SUITE_ENGINES = ("sequential", "batch")


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return float(ordered[min(rank, len(ordered)) - 1])


@dataclass
class CaseResult:
    """One (scenario, planner, engine) cell of the sweep."""

    scenario: str
    family: str
    planner: str
    engine: str
    n_queries: int
    successes: int
    #: Per-query verdict/path digest, for reproducibility assertions:
    #: (success, path length in waypoints).
    verdicts: List[Tuple[bool, int]]
    sim_ms: List[float]
    wall_ms: List[float]
    energy_pj: float
    cd_cycles: int
    pose_checks: int
    intersection_tests: int
    node_visits: int
    cross_robot_contacts: Optional[int] = None
    epochs: List[dict] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.n_queries if self.n_queries else 0.0

    def metrics(self) -> Dict[str, float]:
        """Flat numeric metrics for the bench artifact.

        Deliberately excludes wall clock: the artifact must be
        byte-identical across reruns of the same seed, so only simulated
        time, counts, and energy go in.  Wall clock stays on the
        :class:`CaseResult` (``wall_ms``) for interactive reports.
        """
        out = {
            "n_queries": self.n_queries,
            "success_rate": round(self.success_rate, 6),
            "sim_ms_p50": round(percentile(self.sim_ms, 50.0), 6),
            "sim_ms_p99": round(percentile(self.sim_ms, 99.0), 6),
            "sim_ms_max": round(max(self.sim_ms), 6) if self.sim_ms else 0.0,
            "energy_uj": round(self.energy_pj / 1e6, 6),
            "cd_cycles": self.cd_cycles,
            "pose_checks": self.pose_checks,
            "intersection_tests": self.intersection_tests,
            "node_visits": self.node_visits,
        }
        if self.cross_robot_contacts is not None:
            out["cross_robot_contacts"] = self.cross_robot_contacts
        if self.epochs:
            out["n_epochs"] = len(self.epochs) + 1
            out["cache_dropped_total"] = sum(e["cache_dropped"] for e in self.epochs)
            out["epoch_successes"] = sum(1 for e in self.epochs if e["success"])
        return out

    def to_dict(self) -> dict:
        return {
            "name": f"{self.scenario}/{self.planner}/{self.engine}",
            "scenario": self.scenario,
            "family": self.family,
            "planner": self.planner,
            "engine": self.engine,
            "metrics": self.metrics(),
            "verdicts": [[bool(s), int(n)] for s, n in self.verdicts],
            "epochs": self.epochs,
        }


@dataclass
class SuiteReport:
    """A full sweep: the case grid plus run-level metadata."""

    seed: int
    cases: List[CaseResult]

    def summary(self) -> Dict[str, float]:
        total = sum(c.n_queries for c in self.cases)
        succ = sum(c.successes for c in self.cases)
        all_sim = [ms for c in self.cases for ms in c.sim_ms]
        return {
            "n_cases": len(self.cases),
            "n_queries": total,
            "success_rate": round(succ / total, 6) if total else 0.0,
            "sim_ms_p50": round(percentile(all_sim, 50.0), 6),
            "sim_ms_p99": round(percentile(all_sim, 99.0), 6),
            "energy_uj": round(sum(c.energy_pj for c in self.cases) / 1e6, 6),
        }


def default_corpus(profile: str = "smoke") -> List[ScenarioSpec]:
    """The frozen corpus the benchmark ships.

    ``smoke`` keeps planar arms and tiny query counts so the sweep runs in
    CI time; ``paper`` uses the paper's Jaco2/Baxter robots at the same
    instance geometry.  Both are *fixed* problem sets: the specs (and
    therefore every regenerated instance) are pinned by name and seed.
    """
    profiles = ("smoke", "paper")
    if profile not in profiles:
        raise ValueError(
            f"unknown corpus profile {profile!r}; valid choices: {list(profiles)}"
        )
    arm = "planar3" if profile == "smoke" else "jaco2"
    nq = 2 if profile == "smoke" else 4
    arms = "planar3+planar3" if profile == "smoke" else "jaco2+baxter"
    return [
        ScenarioSpec(
            "sec6_cuboids", "random_cuboids", seed=101,
            params={"robot": arm, "n_queries": nq},
        ),
        ScenarioSpec(
            "narrow_window", "narrow_passage", seed=202,
            params={"robot": arm, "n_queries": nq, "gap_fraction": 0.2},
        ),
        ScenarioSpec(
            "shelf_pick", "cluttered_shelf", seed=303,
            params={"robot": arm, "n_queries": nq},
        ),
        ScenarioSpec(
            "sweep_cart", "moving_obstacles", seed=404,
            params={"robot": arm, "n_queries": nq, "script": "sweep", "n_epochs": 4},
        ),
        ScenarioSpec(
            "toggle_door", "moving_obstacles", seed=505,
            params={"robot": arm, "n_queries": nq, "script": "toggle", "n_epochs": 4},
        ),
        ScenarioSpec(
            "dual_arm_cell", "multi_arm", seed=606,
            params={"arms": arms, "n_queries": max(1, nq - 1)},
        ),
    ]


def _default_accel_config():
    from repro.accel.config import CECDUConfig, MPAccelConfig

    # The paper's flagship configuration: 16 CECDUs, 4 multi-cycle OOCDs.
    return MPAccelConfig(n_cecdus=16, cecdu=CECDUConfig(n_oocds=4))


def _make_simulator(robot, octree, accel_config):
    from repro.accel.cecdu import CECDUModel
    from repro.accel.mpaccel import MPAccelSimulator
    from repro.neural.mpnet_nets import ORIGINAL_ENET_MACS, ORIGINAL_PNET_MACS

    cecdu = CECDUModel(robot, octree, accel_config.cecdu)
    return MPAccelSimulator(
        accel_config,
        cecdu,
        sampler_pnet_macs=ORIGINAL_PNET_MACS,
        sampler_enet_macs=ORIGINAL_ENET_MACS,
    )


def _case_config(planner: str, engine: str, motion_step: float):
    from repro.config import EngineConfig, ReproConfig

    backend = "batch" if engine == "batch" else "scalar"
    return ReproConfig(
        backend=backend,
        planner=planner,
        motion_step=motion_step,
        engine=EngineConfig(kind=engine),
    )


def _run_epoch_script(
    instance: ScenarioInstance, planner: str, engine: str, config, seed: int
) -> List[dict]:
    """Drive the scripted octree updates through a cached checker.

    One persistent checker (collision cache enabled) survives across
    epochs; every epoch applies its octree through ``update_octree`` —
    exercising the selective cache invalidation — and replans the
    scenario's first query on the updated environment.
    """
    import dataclasses

    from repro.api import make_planner
    from repro.collision.checker import RobotEnvironmentChecker
    from repro.config import CacheConfig
    from repro.planning.engine import make_engine
    from repro.planning.recorder import CDTraceRecorder

    cached_config = dataclasses.replace(config, cache=CacheConfig(enabled=True))
    checker = RobotEnvironmentChecker.from_config(
        instance.robot, instance.epoch_octrees[0], cached_config
    )
    engine_obj = make_engine(cached_config.engine, checker)
    recorder = CDTraceRecorder(checker, engine=engine_obj)
    q_start, q_goal = instance.queries[0]
    ledger: List[dict] = []
    for epoch in range(1, instance.n_epochs):
        dropped = checker.update_octree(instance.epoch_octrees[epoch])
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, 7000 + epoch])
        )
        planner_obj = make_planner(recorder, planner)
        result = planner_obj.plan(q_start, q_goal, rng)
        success = result is not None and (
            bool(result.success) if hasattr(result, "success") else True
        )
        ledger.append(
            {
                "epoch": epoch,
                "cache_dropped": int(dropped),
                "cache_size": len(checker.cache) if checker.cache else 0,
                "success": bool(success),
            }
        )
        recorder.clear()
    return ledger


def run_case(
    instance: ScenarioInstance,
    planner: str,
    engine: str,
    seed: int = 0,
    accel_config=None,
    max_queries: Optional[int] = None,
) -> CaseResult:
    """One sweep cell: plan every query, price each trace on MPAccel."""
    from repro.api import plan
    from repro.planning.mpnet import PlanResult
    from repro.scenarios.multiarm import path_cross_robot_contacts

    if planner not in SUITE_PLANNERS:
        raise ValueError(
            f"unknown suite planner {planner!r}; valid choices: {list(SUITE_PLANNERS)}"
        )
    if accel_config is None:
        accel_config = _default_accel_config()
    config = _case_config(
        planner, engine, instance.spec.resolved_params()["motion_step"]
    )
    simulator = _make_simulator(instance.robot, instance.octree, accel_config)

    queries = instance.queries
    if max_queries is not None:
        queries = queries[:max_queries]

    verdicts: List[Tuple[bool, int]] = []
    sim_ms: List[float] = []
    wall_ms: List[float] = []
    energy_pj = 0.0
    cd_cycles = 0
    pose_checks = inter_tests = node_visits = 0
    cross_contacts: Optional[int] = None
    paths: List[list] = []

    for qi, (q_start, q_goal) in enumerate(queries):
        rng = np.random.default_rng(np.random.SeedSequence([seed, qi]))
        started = time.perf_counter()
        outcome = plan(
            instance.robot, instance.octree, q_start, q_goal, config, rng=rng
        )
        wall_ms.append((time.perf_counter() - started) * 1e3)
        stats = outcome.stats.copy()
        pose_checks += stats.pose_checks
        inter_tests += stats.intersection_tests
        node_visits += stats.node_visits
        verdicts.append((outcome.success, len(outcome.path or [])))
        if outcome.success:
            paths.append(outcome.path)
        synthetic = PlanResult(success=outcome.success, path=outcome.path or [])
        timing = simulator.run_query(synthetic, outcome.recorder.phases)
        sim_ms.append(timing.total_ms)
        energy_pj += timing.cd_energy_pj
        cd_cycles += timing.cd_cycles

    if len(instance.robots) > 1:
        rest = instance.rest_configurations[1]
        cross_contacts = sum(
            path_cross_robot_contacts(
                instance.robot, path, instance.robots[1], rest
            )
            for path in paths
        )

    epochs: List[dict] = []
    if instance.is_dynamic:
        epochs = _run_epoch_script(instance, planner, engine, config, seed)

    return CaseResult(
        scenario=instance.spec.name,
        family=instance.spec.family,
        planner=planner,
        engine=engine,
        n_queries=len(queries),
        successes=sum(1 for s, _ in verdicts if s),
        verdicts=verdicts,
        sim_ms=sim_ms,
        wall_ms=wall_ms,
        energy_pj=energy_pj,
        cd_cycles=cd_cycles,
        pose_checks=pose_checks,
        intersection_tests=inter_tests,
        node_visits=node_visits,
        cross_robot_contacts=cross_contacts,
        epochs=epochs,
    )


def run_suite(
    specs: Sequence[ScenarioSpec],
    planners: Sequence[str] = ("rrt_connect",),
    engines: Sequence[str] = SUITE_ENGINES,
    seed: int = 0,
    accel_config=None,
    max_queries: Optional[int] = None,
) -> SuiteReport:
    """Sweep planner x engine over every scenario spec."""
    if accel_config is None:
        accel_config = _default_accel_config()
    cases: List[CaseResult] = []
    for spec in specs:
        instance = build_scenario(spec)
        for planner in planners:
            for engine in engines:
                cases.append(
                    run_case(
                        instance,
                        planner,
                        engine,
                        seed=seed,
                        accel_config=accel_config,
                        max_queries=max_queries,
                    )
                )
    return SuiteReport(seed=seed, cases=cases)


def suite_payload(report: SuiteReport, specs: Sequence[ScenarioSpec]) -> dict:
    """Shape a suite run into the ``BENCH_scenarios.json`` artifact."""
    from repro.harness.bench_artifact import make_bench_payload

    return make_bench_payload(
        bench="scenarios",
        seed=report.seed,
        cases=[case.to_dict() for case in report.cases],
        summary=report.summary(),
        extra={"scenarios": [spec.to_dict() for spec in specs]},
    )
