"""The scenario generator families.

Five families beyond-and-including the paper's Section 6 workload:

- ``random_cuboids`` — the paper's generator (5-9 random cuboids sized
  3%-12% of the extent), wrapped in the DSL so instances freeze and
  replay;
- ``narrow_passage`` — a wall splits the workspace, pierced by one
  rectangular window whose size is the difficulty knob (the classic
  narrow-corridor stressor from the sampling-based planning literature);
- ``cluttered_shelf`` — a shelf unit (boards, side panels, back panel)
  in front of the robot with loose clutter boxes on every board, the
  tabletop-manipulation regime where most of C-space is blocked;
- ``moving_obstacles`` — a static backdrop plus one scripted dynamic box
  whose position is a pure function of the epoch index (sweep, orbit, or
  toggle scripts); the per-epoch octrees drive
  :meth:`~repro.collision.checker.RobotEnvironmentChecker.update_octree`
  and therefore the collision cache's selective invalidation;
- ``multi_arm`` — two arms (Jaco2 + Baxter by default) sharing one
  workspace with their bases offset along x, for cross-robot collision
  checking (:mod:`repro.scenarios.multiarm`).

Every builder draws randomness only from :class:`numpy.random.SeedSequence`
children of the spec's seed, spawned in a fixed order (scene first, then
queries, then rest poses), so regeneration is bit-identical.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.env.generator import BENCHMARK_EXTENT, random_scene
from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.geometry.aabb import AABB
from repro.geometry.transform import RigidTransform
from repro.scenarios.dsl import (
    ParamSpec,
    ROBOT_KINDS,
    ScenarioFamily,
    ScenarioInstance,
    ScenarioSpec,
    make_robot,
    register_family,
    sample_queries,
)

__all__ = ["MOVING_SCRIPTS"]

#: Moving-obstacle script kinds (validated by name).
MOVING_SCRIPTS = ("sweep", "orbit", "toggle")

_COMMON_PARAMS = {
    "extent": ParamSpec(BENCHMARK_EXTENT, "float", low=0.5, high=10.0),
    "octree_resolution": ParamSpec(16, "int", low=2, high=128),
    "n_queries": ParamSpec(4, "int", low=1, high=1000),
    "motion_step": ParamSpec(0.05, "float", low=1e-4, high=1.0),
    "robot": ParamSpec("jaco2", "enum", choices=ROBOT_KINDS),
}


def _rngs(spec: ScenarioSpec, n: int) -> List[np.random.Generator]:
    """``n`` independent generators spawned from the spec seed, in order."""
    children = spec.seed_sequence().spawn(n)
    return [np.random.default_rng(child) for child in children]


def _static_instance(
    spec: ScenarioSpec, params: Dict[str, object], scene: Scene
) -> ScenarioInstance:
    """Finish a single-robot static scenario: octree + sampled queries."""
    octree = Octree.from_scene(scene, resolution=params["octree_resolution"])
    robot = make_robot(params["robot"])
    (query_rng,) = _rngs(spec, 2)[1:]
    queries = sample_queries(
        robot, octree, params["n_queries"], query_rng, params["motion_step"]
    )
    return ScenarioInstance(
        spec=spec,
        scene=scene,
        octree=octree,
        robots=[robot],
        queries=queries,
        rest_configurations=[],
    )


# ----------------------------------------------------------------------
# random_cuboids: the paper's Section 6 generator, frozen.


def _build_random_cuboids(spec, params):
    scene_rng = _rngs(spec, 1)[0]
    n_obstacles = params["n_obstacles"] if params["n_obstacles"] > 0 else None
    # Mount clearance is measured against the voxel-snapped box (PR-7
    # multi_arm precedent): at coarse resolutions the rasterizer inflates
    # an obstacle by up to a whole cell, and an exact-AABB clearance test
    # can admit a box whose voxelized form buries the mount (hypothesis
    # seed 65536: planar3 at resolution 8 had zero free configurations).
    scene = random_scene(
        extent=params["extent"],
        n_obstacles=n_obstacles,
        rng=scene_rng,
        voxel_size=params["extent"] / params["octree_resolution"],
    )
    return _static_instance(spec, params, scene)


register_family(
    ScenarioFamily(
        name="random_cuboids",
        description="Section 6: 5-9 random cuboids, 3%-12% of the extent",
        params={
            **_COMMON_PARAMS,
            # 0 means "draw the paper's 5-9 band from the seed".
            "n_obstacles": ParamSpec(0, "int", low=0, high=64),
        },
        builder=_build_random_cuboids,
    )
)


# ----------------------------------------------------------------------
# narrow_passage: a wall with one window.


def _build_narrow_passage(spec, params):
    extent = params["extent"]
    scene_rng = _rngs(spec, 1)[0]
    scene = Scene(extent)
    half = extent / 2.0
    wall_x = params["wall_offset_fraction"] * extent
    t = params["wall_thickness_fraction"] * extent / 2.0  # half thickness
    gap = params["gap_fraction"] * extent  # window side length

    # Window center: drawn within the middle band so the window never
    # degenerates against the workspace boundary.
    wy = scene_rng.uniform(-half + gap, half - gap)
    wz = scene_rng.uniform(gap, extent - gap)
    g = gap / 2.0

    # Four slabs around the [wy±g] x [wz±g] window at x = wall_x.
    def slab(y0, y1, z0, z1):
        if y1 - y0 < 1e-9 or z1 - z0 < 1e-9:
            return
        scene.add_obstacle(
            AABB.from_min_max([wall_x - t, y0, z0], [wall_x + t, y1, z1])
        )

    slab(-half, half, 0.0, wz - g)          # below the window
    slab(-half, half, wz + g, extent)       # above the window
    slab(-half, wy - g, wz - g, wz + g)     # left of the window
    slab(wy + g, half, wz - g, wz + g)      # right of the window

    for _ in range(params["n_clutter"]):
        size = scene_rng.uniform(0.03, 0.08, size=3) * extent / 2.0
        lo_x, hi_x = wall_x + t + size[0], half - size[0]
        if hi_x <= lo_x:  # thick wall near the boundary: no room behind it
            continue
        center = scene_rng.uniform(
            [lo_x, -half + size[1], size[2]],
            [hi_x, half - size[1], extent - size[2]],
        )
        scene.add_obstacle(AABB(center, size))
    return _static_instance(spec, params, scene)


register_family(
    ScenarioFamily(
        name="narrow_passage",
        description="a wall pierced by one window; gap_fraction is the difficulty",
        params={
            **_COMMON_PARAMS,
            "gap_fraction": ParamSpec(0.18, "float", low=0.05, high=0.45),
            "wall_thickness_fraction": ParamSpec(0.04, "float", low=0.01, high=0.2),
            "wall_offset_fraction": ParamSpec(0.22, "float", low=0.15, high=0.45),
            "n_clutter": ParamSpec(2, "int", low=0, high=32),
        },
        builder=_build_narrow_passage,
    )
)


# ----------------------------------------------------------------------
# cluttered_shelf: boards + panels + loose clutter.


def _build_cluttered_shelf(spec, params):
    extent = params["extent"]
    scene_rng = _rngs(spec, 1)[0]
    scene = Scene(extent)
    half = extent / 2.0
    n_shelves = params["n_shelves"]
    depth = params["shelf_depth_fraction"] * extent
    board_t = params["board_thickness_fraction"] * extent / 2.0
    x0 = half - depth  # shelf unit occupies the far x band
    shelf_w = params["shelf_width_fraction"] * extent
    y0, y1 = -shelf_w / 2.0, shelf_w / 2.0
    top = params["shelf_height_fraction"] * extent

    # Horizontal boards (n_shelves + 1 including the top board).
    board_z = np.linspace(0.0, top, n_shelves + 1)
    for z in board_z[1:]:
        scene.add_obstacle(
            AABB.from_min_max([x0, y0, z - board_t], [half, y1, z + board_t])
        )
    # Side panels and back panel.
    scene.add_obstacle(AABB.from_min_max([x0, y0 - board_t, 0.0], [half, y0 + board_t, top]))
    scene.add_obstacle(AABB.from_min_max([x0, y1 - board_t, 0.0], [half, y1 + board_t, top]))
    scene.add_obstacle(AABB.from_min_max([half - board_t, y0, 0.0], [half, y1, top]))

    # Loose clutter on each board's upper face.
    bay = (y1 - y0) / max(1, params["clutter_per_shelf"])
    for level in range(n_shelves):
        z_floor = board_z[level] + (board_t if level > 0 else 0.0)
        z_ceiling = board_z[level + 1] - board_t
        for slot in range(params["clutter_per_shelf"]):
            size = scene_rng.uniform(0.02, 0.05, size=3) * extent / 2.0
            size[2] = min(size[2], max(1e-3, (z_ceiling - z_floor) / 2.0 - 1e-3))
            lo_y, hi_y = y0 + slot * bay + size[1], y0 + (slot + 1) * bay - size[1]
            lo_x, hi_x = x0 + size[0], half - 2 * board_t - size[0]
            if hi_y <= lo_y or hi_x <= lo_x:  # bay too small for this piece
                continue
            cy = scene_rng.uniform(lo_y, hi_y)
            cx = scene_rng.uniform(lo_x, hi_x)
            scene.add_obstacle(AABB([cx, cy, z_floor + size[2]], size))
    return _static_instance(spec, params, scene)


register_family(
    ScenarioFamily(
        name="cluttered_shelf",
        description="a shelf unit with per-board clutter in front of the robot",
        params={
            **_COMMON_PARAMS,
            "n_shelves": ParamSpec(3, "int", low=1, high=8),
            "shelf_depth_fraction": ParamSpec(0.18, "float", low=0.08, high=0.4),
            "shelf_width_fraction": ParamSpec(0.7, "float", low=0.2, high=1.0),
            "shelf_height_fraction": ParamSpec(0.6, "float", low=0.2, high=1.0),
            "board_thickness_fraction": ParamSpec(0.02, "float", low=0.005, high=0.08),
            "clutter_per_shelf": ParamSpec(2, "int", low=0, high=8),
        },
        builder=_build_cluttered_shelf,
    )
)


# ----------------------------------------------------------------------
# moving_obstacles: a scripted dynamic box over epochs.


def _dynamic_center(script: str, epoch: int, n_epochs: int, extent: float):
    """The dynamic box center at ``epoch`` (None = box absent this epoch)."""
    half = extent / 2.0
    r = 0.30 * extent
    z = 0.25 * extent
    if script == "toggle":
        # Present on even epochs at a fixed spot: the same octants flip
        # occupied/free repeatedly (the cache-invalidation worst case).
        if epoch % 2 == 1:
            return None
        return np.array([r, 0.0, z])
    if script == "sweep":
        # Back and forth along y across the reachable band.
        period = max(1, n_epochs - 1)
        phase = (epoch % (2 * period)) / period  # 0..2
        frac = phase if phase <= 1.0 else 2.0 - phase
        y = -0.35 * extent + 0.7 * extent * frac
        return np.array([r, y, z])
    if script == "orbit":
        # A circle around the mount in the x-y plane.
        angle = 2.0 * np.pi * epoch / max(1, n_epochs)
        return np.array([r * np.cos(angle), r * np.sin(angle), z])
    raise ValueError(
        f"unknown moving script {script!r}; valid choices: {list(MOVING_SCRIPTS)}"
    )


def _build_moving_obstacles(spec, params):
    extent = params["extent"]
    scene_rng = _rngs(spec, 1)[0]
    n_epochs = params["n_epochs"]
    script = params["script"]
    box_half = np.full(3, params["obstacle_size_fraction"] * extent / 2.0)

    static = random_scene(
        extent=extent,
        n_obstacles=params["n_static"],
        rng=scene_rng,
        voxel_size=extent / params["octree_resolution"],
    )

    def epoch_scene(epoch: int) -> Scene:
        scene = Scene(extent, static.obstacles)
        center = _dynamic_center(script, epoch, n_epochs, extent)
        if center is not None:
            lo = np.minimum(
                np.maximum(center - box_half, static.bounds.minimum),
                static.bounds.maximum - 2 * box_half,
            )
            scene.add_obstacle(AABB(lo + box_half, box_half))
        return scene

    scenes = [epoch_scene(e) for e in range(n_epochs)]
    octrees = [
        Octree.from_scene(s, resolution=params["octree_resolution"]) for s in scenes
    ]
    robot = make_robot(params["robot"])
    (query_rng,) = _rngs(spec, 2)[1:]
    queries = sample_queries(
        robot, octrees[0], params["n_queries"], query_rng, params["motion_step"]
    )
    return ScenarioInstance(
        spec=spec,
        scene=scenes[0],
        octree=octrees[0],
        robots=[robot],
        queries=queries,
        rest_configurations=[],
        epoch_scenes=scenes,
        epoch_octrees=octrees,
    )


register_family(
    ScenarioFamily(
        name="moving_obstacles",
        description="static backdrop + one scripted dynamic box over epochs",
        params={
            **_COMMON_PARAMS,
            "n_static": ParamSpec(3, "int", low=0, high=32),
            "n_epochs": ParamSpec(6, "int", low=2, high=64),
            "script": ParamSpec("sweep", "enum", choices=MOVING_SCRIPTS),
            "obstacle_size_fraction": ParamSpec(0.10, "float", low=0.02, high=0.3),
        },
        builder=_build_moving_obstacles,
    )
)


# ----------------------------------------------------------------------
# multi_arm: two arms sharing one workspace.

_ARM_PAIRS = ("jaco2+baxter", "jaco2+jaco2", "planar3+planar3")


def _build_multi_arm(spec, params):
    extent = params["extent"]
    kinds = params["arms"].split("+")
    sep = params["separation_fraction"] * extent
    bases = [
        RigidTransform.from_translation([-sep / 2.0, 0.0, 0.0]),
        RigidTransform.from_translation([+sep / 2.0, 0.0, 0.0]),
    ]
    robots = [make_robot(kind, base=base) for kind, base in zip(kinds, bases)]

    scene_rng, query_rng, rest_rng = _rngs(spec, 3)
    scene = Scene(extent)
    half = extent / 2.0
    for _ in range(params["n_obstacles"]):
        size = scene_rng.uniform(0.03, 0.10, size=3) * extent / 2.0
        center = scene_rng.uniform(
            [-half + size[0], -half + size[1], size[2]],
            [half - size[0], half - size[1], extent - size[2]],
        )
        # Keep both mounts clear so rest poses are not trivially buried.
        # The octree rasterizer marks every voxel the obstacle touches, so
        # the obstacle the checker actually sees is the AABB grid-snapped
        # outward to voxel boundaries; at coarse resolutions that inflation
        # can swallow a mount the exact AABB clears (leaving a robot with
        # no free configurations at all).  Measure clearance against the
        # snapped box.
        clear = 0.12 * extent
        cell = extent / params["octree_resolution"]
        origin = np.array([-half, -half, 0.0])
        snapped_lo = origin + np.floor((center - size - origin) / cell) * cell
        snapped_hi = origin + np.ceil((center + size - origin) / cell) * cell
        if any(
            float(np.linalg.norm(np.clip(b.translation, snapped_lo, snapped_hi) - b.translation))
            <= clear
            for b in bases
        ):
            continue
        scene.add_obstacle(AABB(center, size))

    octree = Octree.from_scene(scene, resolution=params["octree_resolution"])
    queries = sample_queries(
        robots[0], octree, params["n_queries"], query_rng, params["motion_step"]
    )
    # The second arm holds a collision-free rest pose (vs the environment).
    from repro.collision.checker import RobotEnvironmentChecker
    from repro.config import ReproConfig

    rest_checker = RobotEnvironmentChecker.from_config(
        robots[1], octree, ReproConfig(collect_stats=False)
    )
    rest = [np.zeros(robots[0].dof), rest_checker.sample_free_configuration(rest_rng)]
    return ScenarioInstance(
        spec=spec,
        scene=scene,
        octree=octree,
        robots=robots,
        queries=queries,
        rest_configurations=rest,
    )


register_family(
    ScenarioFamily(
        name="multi_arm",
        description="two arms (Jaco2 + Baxter) sharing a workspace",
        params={
            "extent": ParamSpec(2.4, "float", low=0.5, high=10.0),
            "octree_resolution": ParamSpec(16, "int", low=2, high=128),
            "n_queries": ParamSpec(4, "int", low=1, high=1000),
            "motion_step": ParamSpec(0.05, "float", low=1e-4, high=1.0),
            "arms": ParamSpec("jaco2+baxter", "enum", choices=_ARM_PAIRS),
            "separation_fraction": ParamSpec(0.45, "float", low=0.1, high=0.9),
            "n_obstacles": ParamSpec(3, "int", low=0, high=32),
        },
        builder=_build_multi_arm,
    )
)
