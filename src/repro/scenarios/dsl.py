"""The seeded scenario DSL: frozen, parameterized, replayable instances.

Every benchmark instance in the corpus is described by a
:class:`ScenarioSpec` — a (name, family, seed, params) tuple that is pure
data.  Building the spec (:func:`build_scenario`) regenerates the scene,
octree, robot placement, and query set **bit-identically**: the instance
is a pure function of the spec, with all randomness drawn from
independent :class:`numpy.random.SeedSequence` children of ``seed`` in a
fixed order.  Specs serialize through ``to_dict``/``from_dict`` (and JSON
via :func:`repro.harness.serialization.save_scenario`), are
schema-versioned, and fail loudly on unknown keys, unknown families,
unknown parameters, or out-of-band values — always naming the valid
choices.

This is the robometrics-style fixed-problem-set discipline: planner and
engine claims are measured against frozen scenario instances that any
future run can regenerate exactly, instead of against whatever a live RNG
produced that day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.robot.model import RobotModel

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "ParamSpec",
    "ScenarioFamily",
    "ScenarioSpec",
    "ScenarioInstance",
    "FAMILIES",
    "register_family",
    "family_names",
    "build_scenario",
]

SCENARIO_SCHEMA_VERSION = 1

#: Robot presets a scenario may place (validated by name).
ROBOT_KINDS = ("planar2", "planar3", "jaco2", "baxter")


def make_robot(kind: str, base=None) -> RobotModel:
    """Instantiate a robot preset by its DSL name."""
    from repro.robot.presets import baxter_arm, jaco2, planar_arm

    if kind == "planar2":
        return planar_arm(2, base=base)
    if kind == "planar3":
        return planar_arm(3, base=base)
    if kind == "jaco2":
        return jaco2(base=base)
    if kind == "baxter":
        return baxter_arm(base=base)
    raise ValueError(
        f"unknown robot kind {kind!r}; valid choices: {list(ROBOT_KINDS)}"
    )


@dataclass(frozen=True)
class ParamSpec:
    """One parameter a family accepts: default + validation envelope.

    ``kind`` is ``"int"``, ``"float"``, or ``"enum"``.  Numeric parameters
    validate against the closed ``[low, high]`` band; enum parameters
    against ``choices``.  Validation errors name the parameter and list
    the valid band/choices, mirroring the typed-config error style.
    """

    default: object
    kind: str = "float"
    low: Optional[float] = None
    high: Optional[float] = None
    choices: Optional[Tuple[str, ...]] = None

    def validate(self, name: str, value):
        if self.kind == "enum":
            if value not in self.choices:
                raise ValueError(
                    f"invalid scenario param {name}={value!r}; "
                    f"valid choices: {list(self.choices)}"
                )
            return value
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                raise ValueError(
                    f"scenario param {name} must be an integer, got {value!r}"
                )
            value = int(value)
        elif self.kind == "float":
            if isinstance(value, bool) or not isinstance(
                value, (int, float, np.integer, np.floating)
            ):
                raise ValueError(
                    f"scenario param {name} must be a number, got {value!r}"
                )
            value = float(value)
        else:  # pragma: no cover - registration error, not user input
            raise ValueError(f"unknown ParamSpec kind {self.kind!r}")
        if self.low is not None and value < self.low:
            raise ValueError(
                f"scenario param {name}={value} below minimum {self.low}"
            )
        if self.high is not None and value > self.high:
            raise ValueError(
                f"scenario param {name}={value} above maximum {self.high}"
            )
        return value


@dataclass(frozen=True)
class ScenarioFamily:
    """A registered generator family: parameter table + builder."""

    name: str
    description: str
    params: Mapping[str, ParamSpec]
    #: builder(spec, resolved_params) -> ScenarioInstance
    builder: Callable[["ScenarioSpec", Dict[str, object]], "ScenarioInstance"]

    def resolve_params(self, overrides: Mapping[str, object]) -> Dict[str, object]:
        """Defaults overlaid with validated overrides; unknown keys rejected."""
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            raise ValueError(
                f"unknown param(s) {unknown} for scenario family "
                f"{self.name!r}; valid params: {sorted(self.params)}"
            )
        resolved: Dict[str, object] = {}
        for name, pspec in self.params.items():
            value = overrides.get(name, pspec.default)
            resolved[name] = pspec.validate(name, value)
        return resolved


#: Registry of generator families, populated by repro.scenarios.generators.
FAMILIES: Dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> ScenarioFamily:
    if family.name in FAMILIES:
        raise ValueError(f"scenario family {family.name!r} already registered")
    FAMILIES[family.name] = family
    return family


def family_names() -> List[str]:
    return sorted(FAMILIES)


def _get_family(name: str) -> ScenarioFamily:
    family = FAMILIES.get(name)
    if family is None:
        raise ValueError(
            f"unknown scenario family {name!r}; "
            f"valid choices: {family_names()}"
        )
    return family


@dataclass(frozen=True)
class ScenarioSpec:
    """A frozen scenario description: (name, family, seed, params).

    ``params`` holds only the overrides (defaults are not materialized),
    so a spec's serialized form stays stable when a family gains new
    defaulted parameters.  Construction validates the family name and
    every override against the family's parameter table.
    """

    name: str
    family: str
    seed: int = 0
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"scenario name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.seed, (int, np.integer)) or isinstance(self.seed, bool):
            raise ValueError(f"scenario seed must be an integer, got {self.seed!r}")
        family = _get_family(self.family)
        resolved = dict(self.params)
        family.resolve_params(resolved)  # validates overrides + names
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "params", MappingProxyType(resolved))

    # -- derived -------------------------------------------------------

    def resolved_params(self) -> Dict[str, object]:
        """The full parameter set (defaults + validated overrides)."""
        return _get_family(self.family).resolve_params(self.params)

    def seed_sequence(self) -> np.random.SeedSequence:
        return np.random.SeedSequence(self.seed)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise TypeError(
                f"ScenarioSpec expects a dict, got {type(data).__name__}"
            )
        valid_keys = {"schema_version", "name", "family", "seed", "params"}
        unknown = sorted(set(data) - valid_keys)
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec key(s) {unknown}; "
                f"valid keys: {sorted(valid_keys)}"
            )
        version = data.get("schema_version", SCENARIO_SCHEMA_VERSION)
        if version != SCENARIO_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported scenario schema version {version!r}; "
                f"expected {SCENARIO_SCHEMA_VERSION}"
            )
        missing = sorted({"name", "family"} - set(data))
        if missing:
            raise ValueError(f"ScenarioSpec missing required key(s) {missing}")
        return cls(
            name=data["name"],
            family=data["family"],
            seed=data.get("seed", 0),
            params=data.get("params", {}),
        )


@dataclass
class ScenarioInstance:
    """One regenerated scenario: geometry, robots, queries, update script.

    ``robots`` lists every placed arm (one for single-arm families); the
    planner's queries target ``robots[0]``.  ``rest_configurations[i]`` is
    the frozen pose of robot ``i`` while it is *not* the planning subject
    (multi-arm scenes).  ``epoch_scenes``/``epoch_octrees`` hold the
    scripted moving-obstacle sequence — index 0 is the initial state, so
    static scenarios have exactly one epoch.
    """

    spec: ScenarioSpec
    scene: Scene
    octree: Octree
    robots: List[RobotModel]
    queries: List[Tuple[np.ndarray, np.ndarray]]
    rest_configurations: List[np.ndarray]
    epoch_scenes: List[Scene] = field(default_factory=list)
    epoch_octrees: List[Octree] = field(default_factory=list)

    def __post_init__(self):
        if not self.epoch_scenes:
            self.epoch_scenes = [self.scene]
        if not self.epoch_octrees:
            self.epoch_octrees = [self.octree]

    @property
    def robot(self) -> RobotModel:
        """The planning subject."""
        return self.robots[0]

    @property
    def n_epochs(self) -> int:
        return len(self.epoch_octrees)

    @property
    def is_dynamic(self) -> bool:
        return self.n_epochs > 1

    def fingerprint(self) -> dict:
        """A JSON-safe digest used to assert bit-identical regeneration."""
        return {
            "octree": self.octree.to_dict(),
            "queries": [
                [qs.tolist(), qg.tolist()] for qs, qg in self.queries
            ],
            "rest": [q.tolist() for q in self.rest_configurations],
            "epochs": [o.to_dict() for o in self.epoch_octrees],
        }


def build_scenario(spec: ScenarioSpec) -> ScenarioInstance:
    """Regenerate a scenario instance from its spec (pure, deterministic)."""
    family = _get_family(spec.family)
    params = family.resolve_params(spec.params)
    return family.builder(spec, params)


def sample_queries(
    robot: RobotModel,
    octree: Octree,
    n_queries: int,
    rng: np.random.Generator,
    motion_step: float = 0.05,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Collision-free start/goal pairs, sampled the Section 6 way.

    Always uses the scalar sequential checker so the sampled set is
    independent of whatever backend/engine the suite later sweeps.
    """
    from repro.collision.checker import RobotEnvironmentChecker
    from repro.config import ReproConfig

    config = ReproConfig(motion_step=motion_step, collect_stats=False)
    checker = RobotEnvironmentChecker.from_config(robot, octree, config)
    queries = []
    for _ in range(n_queries):
        q_start = checker.sample_free_configuration(rng)
        q_goal = checker.sample_free_configuration(rng)
        queries.append((q_start, q_goal))
    return queries
