"""Cross-robot collision checking for multi-arm scenes.

The paper's collision substrate checks one robot against the environment
octree.  A shared workspace adds a second hazard class: arm-vs-arm.  This
module closes that gap with OBB-vs-OBB tests built on the same
separating-axis machinery as the robot-vs-octree cascade
(:mod:`repro.geometry.sat`): robot B's link boxes are expressed in robot
A's link frame, where A's box is an AABB at the origin, and the existing
15-axis OBB-vs-AABB test applies unchanged.

Two deliberately distinct masking policies:

- **self-collision** (one arm against itself) ignores *adjacent* link
  pairs — consecutive links share a joint and always touch there, so the
  adjacency mask is part of the robot's own collision model;
- **cross-robot** checks test **every** link pair.  Two different robots
  share no joints, so no pair is exempt — the adjacency mask must not
  leak across robots (pinned by ``tests/test_scenarios_multiarm.py``).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB
from repro.geometry.sat import obb_aabb_overlap
from repro.robot.model import RobotModel

__all__ = [
    "obb_pair_overlap",
    "cross_robot_link_pairs",
    "robots_collide",
    "adjacent_link_mask",
    "self_collision_pairs",
    "path_cross_robot_contacts",
]


def obb_pair_overlap(a: OBB, b: OBB) -> bool:
    """Whether two oriented boxes overlap (15-axis SAT).

    ``b`` is re-expressed in ``a``'s frame, where ``a`` becomes an AABB at
    the origin and the existing OBB-vs-AABB test applies.  The test is
    symmetric: swapping the operands changes only which frame hosts the
    axis projections, not the verdict.
    """
    rot_a = a.rotation
    b_local = OBB(
        rot_a.T @ (b.center - a.center),
        b.half_extents,
        rot_a.T @ b.rotation,
    )
    return obb_aabb_overlap(b_local, AABB(np.zeros(3), a.half_extents))


def cross_robot_link_pairs(
    robot_a: RobotModel,
    q_a,
    robot_b: RobotModel,
    q_b,
) -> List[Tuple[int, int]]:
    """All colliding (link of A, link of B) index pairs — no mask.

    Every pair is tested: cross-robot adjacency does not exist, so the
    self-collision exemptions never apply here.
    """
    obbs_a = robot_a.link_obbs(q_a)
    obbs_b = robot_b.link_obbs(q_b)
    hits: List[Tuple[int, int]] = []
    for i, obb_a in enumerate(obbs_a):
        for j, obb_b in enumerate(obbs_b):
            if obb_pair_overlap(obb_a, obb_b):
                hits.append((i, j))
    return hits


def robots_collide(robot_a: RobotModel, q_a, robot_b: RobotModel, q_b) -> bool:
    """Whether any link of A overlaps any link of B."""
    obbs_a = robot_a.link_obbs(q_a)
    obbs_b = robot_b.link_obbs(q_b)
    return any(
        obb_pair_overlap(obb_a, obb_b) for obb_a in obbs_a for obb_b in obbs_b
    )


def adjacent_link_mask(robot: RobotModel) -> Set[Tuple[int, int]]:
    """The default self-collision exemptions: consecutive link pairs.

    Consecutive links in the chain share a joint and touch there by
    construction; exempting them is standard practice (and what vendor
    SRDF files encode).  The mask belongs to *one* robot — cross-robot
    checks must never apply it.
    """
    return {(i, i + 1) for i in range(robot.num_links - 1)}


def self_collision_pairs(
    robot: RobotModel,
    q,
    ignore: Optional[Set[Tuple[int, int]]] = None,
) -> List[Tuple[int, int]]:
    """Colliding link pairs of one arm against itself, minus the mask."""
    if ignore is None:
        ignore = adjacent_link_mask(robot)
    obbs = robot.link_obbs(q)
    hits: List[Tuple[int, int]] = []
    for i in range(len(obbs)):
        for j in range(i + 1, len(obbs)):
            if (i, j) in ignore or (j, i) in ignore:
                continue
            if obb_pair_overlap(obbs[i], obbs[j]):
                hits.append((i, j))
    return hits


def path_cross_robot_contacts(
    robot_a: RobotModel,
    path,
    robot_b: RobotModel,
    q_b_rest,
) -> int:
    """How many waypoints of A's path contact B frozen at its rest pose.

    The scenario suite reports this per multi-arm case: a plan that is
    octree-clean can still sweep through the other arm, and this counter
    makes that visible in the benchmark artifact.
    """
    return sum(
        1 for q in path if robots_collide(robot_a, q, robot_b, q_b_rest)
    )
