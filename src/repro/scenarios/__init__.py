"""Seeded scenario corpus and standardized benchmark suite.

``repro.scenarios`` turns benchmark instances into data: a
:class:`~repro.scenarios.dsl.ScenarioSpec` (name, family, seed, params)
regenerates its scene, octree, robot placement, and query set
bit-identically via :func:`~repro.scenarios.dsl.build_scenario`.  Five
generator families ship in :mod:`repro.scenarios.generators`; the
planner x engine x scenario sweep lives in
:mod:`repro.scenarios.suite`; cross-robot collision checks for
multi-arm scenes in :mod:`repro.scenarios.multiarm`.
"""

from repro.scenarios.dsl import (
    FAMILIES,
    SCENARIO_SCHEMA_VERSION,
    ParamSpec,
    ScenarioFamily,
    ScenarioInstance,
    ScenarioSpec,
    build_scenario,
    family_names,
    make_robot,
    register_family,
)

# Importing the generators registers the built-in families.
from repro.scenarios import generators as _generators  # noqa: F401
from repro.scenarios.suite import (
    SUITE_ENGINES,
    SUITE_PLANNERS,
    CaseResult,
    SuiteReport,
    default_corpus,
    run_case,
    run_suite,
    suite_payload,
)

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "ParamSpec",
    "ScenarioFamily",
    "ScenarioInstance",
    "ScenarioSpec",
    "FAMILIES",
    "build_scenario",
    "family_names",
    "make_robot",
    "register_family",
    "SUITE_ENGINES",
    "SUITE_PLANNERS",
    "CaseResult",
    "SuiteReport",
    "default_corpus",
    "run_case",
    "run_suite",
    "suite_payload",
]
