"""Typed configuration objects: the one coherent way to wire the stack.

Before this module the public surface had accreted three uncoordinated
string-kwarg vocabularies — ``backend=`` on the collision checker,
``engine=`` on the runtime and :func:`repro.planning.engine.make_engine`,
and the loose fault/deadline kwargs on :class:`repro.accel.runtime.
RobotRuntime`.  Each validated its own strings, none composed, and a new
layer (the multi-client planning service) would have added a fourth.

This module replaces them with frozen dataclasses:

- :class:`EngineConfig` — which query engine answers planner CD phases and
  how the simulated one is parameterized;
- :class:`ResilienceConfig` — the per-tick deadline budget, retry policy,
  and audit flag (:mod:`repro.resilience`);
- :class:`CacheConfig` — the octree-versioned collision cache
  (:mod:`repro.collision.cache`);
- :class:`ServiceConfig` — the multi-client planning service
  (:mod:`repro.serving`): admission, batching window, the simulated
  cost model, and the in-config fault-injection regime;
- :class:`FleetConfig` — the sharded planning fleet
  (:mod:`repro.serving.fleet`): shard count, routing policy, and the
  worker substrate (inline vs ``multiprocessing``);
- :class:`ReproConfig` — the top-level bundle the :mod:`repro.api` facade
  consumes.

Every config is immutable, validates its fields on construction with
error messages that list the valid choices, and round-trips through
``to_dict``/``from_dict`` (and JSON via
:func:`repro.harness.serialization.save_config`).  ``from_dict`` rejects
unknown keys by name so a typo in a saved config fails loudly.

The legacy string kwargs keep working everywhere they existed, but emit a
:class:`DeprecationWarning`; the library itself only builds through the
typed path (CI runs the new-API suite under ``-W error::DeprecationWarning``
to prove it).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple, Type, TypeVar

from repro.resilience.faults import FaultModels

__all__ = [
    "BACKENDS",
    "ENGINE_KINDS",
    "PLANNERS",
    "SERVICE_MODES",
    "ROUTER_POLICIES",
    "FLEET_WORKER_MODES",
    "EngineConfig",
    "ResilienceConfig",
    "CacheConfig",
    "ServiceConfig",
    "FleetConfig",
    "ReproConfig",
    "config_from_dict",
    "config_to_dict",
]

#: Collision-checker backends (see :class:`repro.collision.checker`).
BACKENDS = ("scalar", "batch")
#: Query-engine kinds (see :mod:`repro.planning.engine`).
ENGINE_KINDS = ("sequential", "batch", "simulated")
#: Planner kinds the facade and the serving layer can instantiate.
PLANNERS = ("rrt", "rrt_connect", "prm", "mpnet")
#: Serving dispatch modes (see :class:`repro.serving.PlanningService`).
SERVICE_MODES = ("sequential", "batched")
#: Fleet request-routing policies (see :class:`repro.serving.router.FleetRouter`).
ROUTER_POLICIES = ("hash", "round_robin", "client", "region")
#: Fleet shard execution substrates (see :class:`repro.serving.fleet.PlanningFleet`).
FLEET_WORKER_MODES = ("inline", "process")


def _check_choice(name: str, value: str, choices: Tuple[str, ...]) -> None:
    if value not in choices:
        raise ValueError(
            f"unknown {name} {value!r}; valid choices: {list(choices)}"
        )


def _check_positive(name: str, value, allow_none: bool = False) -> None:
    if value is None:
        if allow_none:
            return
        raise ValueError(f"{name} must not be None")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _check_non_negative(name: str, value) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


_C = TypeVar("_C")


def config_to_dict(config) -> dict:
    """Serialize any config dataclass (nested configs become nested dicts)."""
    out = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        out[f.name] = config_to_dict(value) if dataclasses.is_dataclass(value) else value
    return out


def config_from_dict(cls: Type[_C], data: dict) -> _C:
    """Build a config dataclass from a dict, rejecting unknown keys.

    Nested config fields accept nested dicts.  The error message for an
    unknown key lists every valid key (mirroring the name-validation
    pattern of the string-kwarg era, but for whole config objects).
    """
    if not isinstance(data, dict):
        raise TypeError(f"{cls.__name__} expects a dict, got {type(data).__name__}")
    fields_by_name = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - set(fields_by_name))
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} key(s) {unknown}; "
            f"valid keys: {sorted(fields_by_name)}"
        )
    kwargs = {}
    for name, value in data.items():
        f = fields_by_name[name]
        nested = _NESTED_FIELDS.get((cls.__name__, name))
        if nested is not None and isinstance(value, dict):
            value = config_from_dict(nested, value)
        kwargs[name] = value
    return cls(**kwargs)


@dataclass(frozen=True)
class EngineConfig:
    """Which :class:`~repro.planning.engine.QueryEngine` answers CD phases.

    ``n_cdus``/``policy``/``seed``/``check_invariants``/``record_timeline``
    only matter for ``kind="simulated"`` (they parameterize the inline SAS
    run); ``prefilter`` only matters for ``kind="batch"`` (it enables the
    conservative swept-motion prefilter,
    :class:`~repro.planning.swept.SweptMotionPrefilter`); the other kinds
    ignore them.
    """

    kind: str = "sequential"
    n_cdus: int = 16
    policy: str = "mcsp"
    seed: int = 0
    check_invariants: bool = True
    record_timeline: bool = False
    prefilter: bool = False

    def __post_init__(self):
        _check_choice("engine kind", self.kind, ENGINE_KINDS)
        _check_positive("n_cdus", self.n_cdus)

    def to_dict(self) -> dict:
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        return config_from_dict(cls, data)


@dataclass(frozen=True)
class ResilienceConfig:
    """Deadline budget + retry policy + audit flag for the realtime loop.

    ``sim_ms``/``wall_ms`` of ``None`` disable that clock; with both
    disabled no :class:`~repro.resilience.deadline.DeadlineBudget` is built
    and the runtime follows the legacy (non-resilient) flow exactly.
    """

    sim_ms: Optional[float] = None
    wall_ms: Optional[float] = None
    max_retries: int = 2
    backoff_ms: float = 0.05
    audit: bool = False

    def __post_init__(self):
        if self.sim_ms is not None:
            _check_positive("sim_ms", self.sim_ms)
        if self.wall_ms is not None:
            _check_positive("wall_ms", self.wall_ms)
        _check_non_negative("max_retries", self.max_retries)
        _check_non_negative("backoff_ms", self.backoff_ms)

    @property
    def has_deadline(self) -> bool:
        return self.sim_ms is not None or self.wall_ms is not None

    def make_deadline(self):
        """The equivalent :class:`DeadlineBudget`, or None when disabled."""
        if not self.has_deadline:
            return None
        from repro.resilience.deadline import DeadlineBudget

        return DeadlineBudget(
            sim_ms=self.sim_ms,
            wall_ms=self.wall_ms,
            max_retries=self.max_retries,
            backoff_ms=self.backoff_ms,
        )

    def to_dict(self) -> dict:
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceConfig":
        return config_from_dict(cls, data)


@dataclass(frozen=True)
class CacheConfig:
    """The octree-versioned collision cache (:mod:`repro.collision.cache`).

    ``quantum`` is the pose-quantization step of the cache key: poses are
    snapped to a grid of this pitch (radians) before hashing, so two poses
    closer than half a quantum share a verdict.  The default is far below
    any workload's pose spacing, which makes the key effectively exact
    (pinned by the differential tests); raise it to trade fidelity for hit
    rate.  ``max_entries`` bounds memory with deterministic FIFO eviction.
    """

    enabled: bool = False
    quantum: float = 1e-9
    max_entries: int = 1_000_000

    def __post_init__(self):
        _check_positive("quantum", self.quantum)
        _check_positive("max_entries", self.max_entries)

    def to_dict(self) -> dict:
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CacheConfig":
        return config_from_dict(cls, data)


@dataclass(frozen=True)
class ServiceConfig:
    """The multi-client planning service (:mod:`repro.serving`).

    ``mode="batched"`` coalesces CD phases from up to ``batch_window``
    in-flight requests into single vectorized dispatches (inter-query
    MCSP); ``"sequential"`` serves one request start-to-finish at a time
    (the one-at-a-time baseline the differential tests compare against).

    The ``*_us`` fields are the simulated cost model the service clock
    charges per round: a fixed ``dispatch_overhead_us`` per dispatch, plus
    per-pose costs that mirror the measured scalar/vectorized/cache-hit
    gap (``pose_cost_us`` for scalar sequential evaluation,
    ``batch_pose_cost_us`` per pose inside a coalesced vectorized dispatch,
    ``cache_hit_cost_us`` per verdict served from the collision cache).

    The overload fields (all off by default — the defaults reproduce the
    pre-overload service bit-for-bit) gate :mod:`repro.serving.admission`:
    ``admission_control`` turns on the shedding gates, with
    ``max_queue_depth`` bounding the backlog and driving the
    queue-depth → :class:`~repro.resilience.degradation.DegradationLevel`
    ladder; ``fairness`` admits via deficit round-robin over
    ``PlanRequest.client_id`` with per-visit credit ``fairness_quantum``
    (in units of ``PlanRequest.size``); ``preempt_energy_budget_pj``
    evicts an in-flight request once its consumed work, priced through the
    MPAccel energy model, exceeds the budget; ``max_fault_retries`` bounds
    per-phase retries against injected engine faults in sequential mode
    before the request fails.

    ``fault_models`` (a :class:`repro.resilience.faults.FaultModels`) plus
    ``fault_seed`` describe the chaos regime in-config: when
    ``fault_models`` is set the service builds its own seeded
    :class:`~repro.resilience.faults.FaultInjector` at construction
    (exposed as ``service.fault_injector`` for event inspection).  This
    replaces the legacy ``fault_injector=`` constructor kwarg, which still
    works behind a :class:`DeprecationWarning` shim pinned bit-identical
    in the tests.
    """

    mode: str = "batched"
    batch_window: int = 8
    max_inflight: int = 8
    default_deadline_ms: Optional[float] = None
    cancel_on_deadline_miss: bool = False
    dispatch_overhead_us: float = 25.0
    pose_cost_us: float = 1.0
    batch_pose_cost_us: float = 0.05
    cache_hit_cost_us: float = 0.01
    admission_control: bool = False
    max_queue_depth: Optional[int] = None
    fairness: bool = False
    fairness_quantum: float = 1.0
    preempt_energy_budget_pj: Optional[float] = None
    max_fault_retries: int = 2
    fault_seed: int = 0
    fault_models: Optional[FaultModels] = None

    def __post_init__(self):
        _check_choice("service mode", self.mode, SERVICE_MODES)
        _check_positive("batch_window", self.batch_window)
        _check_positive("max_inflight", self.max_inflight)
        if self.default_deadline_ms is not None:
            _check_positive("default_deadline_ms", self.default_deadline_ms)
        _check_non_negative("dispatch_overhead_us", self.dispatch_overhead_us)
        _check_non_negative("pose_cost_us", self.pose_cost_us)
        _check_non_negative("batch_pose_cost_us", self.batch_pose_cost_us)
        _check_non_negative("cache_hit_cost_us", self.cache_hit_cost_us)
        if self.max_queue_depth is not None:
            _check_positive("max_queue_depth", self.max_queue_depth)
        _check_positive("fairness_quantum", self.fairness_quantum)
        if self.preempt_energy_budget_pj is not None:
            _check_positive(
                "preempt_energy_budget_pj", self.preempt_energy_budget_pj
            )
        _check_non_negative("max_fault_retries", self.max_fault_retries)
        if self.fault_models is not None and not isinstance(
            self.fault_models, FaultModels
        ):
            raise TypeError(
                "fault_models must be a repro.resilience.faults.FaultModels "
                f"(or None), got {type(self.fault_models).__name__}"
            )

    def to_dict(self) -> dict:
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        return config_from_dict(cls, data)


@dataclass(frozen=True)
class FleetConfig:
    """The sharded planning fleet (:mod:`repro.serving.fleet`).

    ``n_shards`` is the number of :class:`~repro.serving.PlanningService`
    shards behind the :class:`~repro.serving.fleet.PlanningFleet` facade;
    ``router`` picks the deterministic request-to-shard assignment policy
    (:class:`~repro.serving.router.FleetRouter`): ``"hash"`` — seeded hash
    of the request id; ``"round_robin"`` — global submission order;
    ``"client"`` — seeded hash of ``PlanRequest.client_id`` (all of one
    robot's/client's requests land on one shard, preserving per-client
    FIFO); ``"region"`` — seeded hash of the request's start configuration
    quantized to ``region_quantum`` (spatial locality).  ``router_seed``
    keys the hashes.

    ``workers`` selects the execution substrate: ``"inline"`` drains every
    shard in-process (the deterministic reference), ``"process"`` drains
    shards in parallel ``multiprocessing`` workers fed by shared-memory
    numpy octree/pose buffers — bit-identical to inline by construction
    (pinned by the fleet differential tests).  ``global_cache`` enables the
    fleet-wide global verdict-cache tier that shards sync into at drain
    boundaries (requires ``CacheConfig.enabled``).
    """

    n_shards: int = 1
    router: str = "hash"
    router_seed: int = 0
    workers: str = "inline"
    region_quantum: float = 1.0
    global_cache: bool = True

    def __post_init__(self):
        _check_positive("n_shards", self.n_shards)
        _check_choice("router policy", self.router, ROUTER_POLICIES)
        _check_choice("fleet worker mode", self.workers, FLEET_WORKER_MODES)
        _check_positive("region_quantum", self.region_quantum)

    def to_dict(self) -> dict:
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FleetConfig":
        return config_from_dict(cls, data)


@dataclass(frozen=True)
class ReproConfig:
    """Top-level configuration bundle for the :mod:`repro.api` facade.

    One object wires the whole stack: collision backend, planner kind,
    query engine, resilience policy, collision cache, and serving layer.
    Cross-field constraints are validated here (e.g. the batched engine
    needs the batch collision backend to dispatch to).
    """

    backend: str = "scalar"
    planner: str = "rrt_connect"
    motion_step: float = 0.05
    octree_resolution: int = 16
    collect_stats: bool = True
    engine: EngineConfig = field(default_factory=EngineConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    fleet: FleetConfig = field(default_factory=FleetConfig)

    def __post_init__(self):
        _check_choice("backend", self.backend, BACKENDS)
        _check_choice("planner", self.planner, PLANNERS)
        _check_positive("motion_step", self.motion_step)
        _check_positive("octree_resolution", self.octree_resolution)
        if self.engine.kind == "batch" and self.backend != "batch":
            raise ValueError(
                "engine kind 'batch' requires backend 'batch' "
                "(the scalar checker has no vectorized pipeline to dispatch to)"
            )
        # (service mode "batched" additionally requires backend "batch";
        # PlanningService enforces that at construction, where the service
        # section actually binds — the default bundle stays valid for
        # non-serving uses.)

    @classmethod
    def for_service(cls, **overrides) -> "ReproConfig":
        """The serving default: batch backend + enabled collision cache."""
        overrides.setdefault("backend", "batch")
        overrides.setdefault("cache", CacheConfig(enabled=True))
        return cls(**overrides)

    @classmethod
    def for_fleet(cls, n_shards: int = 1, **overrides) -> "ReproConfig":
        """The fleet default: serving defaults plus an ``n_shards`` fleet."""
        overrides.setdefault("fleet", FleetConfig(n_shards=n_shards))
        return cls.for_service(**overrides)

    def to_dict(self) -> dict:
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReproConfig":
        return config_from_dict(cls, data)


#: (owner class name, field name) -> nested config class, for from_dict.
_NESTED_FIELDS = {
    ("ReproConfig", "engine"): EngineConfig,
    ("ReproConfig", "resilience"): ResilienceConfig,
    ("ReproConfig", "cache"): CacheConfig,
    ("ReproConfig", "service"): ServiceConfig,
    ("ReproConfig", "fleet"): FleetConfig,
    ("ServiceConfig", "fault_models"): FaultModels,
}

#: Config classes by name, for serialization dispatch.
CONFIG_CLASSES = {
    "EngineConfig": EngineConfig,
    "ResilienceConfig": ResilienceConfig,
    "CacheConfig": CacheConfig,
    "ServiceConfig": ServiceConfig,
    "FleetConfig": FleetConfig,
    "ReproConfig": ReproConfig,
}
