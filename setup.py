"""Setuptools shim: enables legacy editable installs on toolchains
without the ``wheel`` package (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
