"""Real-time control loop: plan maintenance against a moving obstacle.

The paper's deployment story: the environment octree is rebuilt as sensors
observe changes, and planning must complete inside the ~1 ms actuator
period every time it runs.  This example drives the closed-loop
:class:`~repro.accel.runtime.RobotRuntime` while an obstacle sweeps across
the workspace, prints an ASCII map of the evolving scene, and reports the
per-tick MPAccel latency series.

The run is enforced, not just measured: the typed config's
:class:`~repro.config.ResilienceConfig` deadline caps each
tick's simulated cost at the 1 ms actuator period and the runtime walks the
graceful-degradation ladder rather than shipping an unvalidated path.  The
process exits nonzero when the budget is missed or the final path is
invalid, so this example doubles as a smoke test.

Run:  python examples/realtime_loop.py
"""

import sys

import numpy as np

from repro.accel import CECDUConfig, MPAccelConfig, RobotRuntime
from repro.config import EngineConfig, ReproConfig, ResilienceConfig
from repro.env import Scene, render_top_down
from repro.geometry.aabb import AABB
from repro.robot import planar_arm


def build_scene() -> Scene:
    scene = Scene(extent=4.0)
    # A fixed wall on the +x side; the planner must route around it.
    scene.add_obstacle(AABB.from_min_max([0.7, -0.4, 0.0], [0.9, 0.4, 0.2]))
    # The mover: starts in the far corner, sweeps toward the detour region.
    scene.add_obstacle(AABB.from_min_max([-1.8, 1.4, 0.0], [-1.5, 1.7, 0.2]))
    return scene


def sweep_mover(scene: Scene, tick: int, rng: np.random.Generator) -> bool:
    """Every second tick, step the moving obstacle toward the robot."""
    if tick % 2:
        return False
    mover = scene.obstacles[-1]
    step = np.array([0.12, -0.18, 0.0])
    new_center = mover.center + step
    scene.obstacles[-1] = AABB(new_center, mover.half_extents)
    return True


def main() -> int:
    rng = np.random.default_rng(23)
    scene = build_scene()
    robot = planar_arm(2)
    runtime = RobotRuntime(
        robot=robot,
        scene=scene,
        config=MPAccelConfig(n_cecdus=8, cecdu=CECDUConfig(n_oocds=4)),
        scene_update=sweep_mover,
        repro=ReproConfig(
            octree_resolution=32,
            # Answer every planner phase with one vectorized dispatch: the
            # batched query engine (over the batch checker backend) keeps
            # each tick's wall clock down without changing any planner
            # decision.
            backend="batch",
            engine=EngineConfig(kind="batch"),
            # Enforce the actuator period per tick: if the simulated tick
            # cost exceeds 1 ms the runtime degrades (revalidate-only,
            # reuse the last validated path, or safe-stop) instead of
            # running long.
            resilience=ResilienceConfig(sim_ms=1.0),
        ),
    )

    q_start = np.array([np.pi * 0.9, 0.0])
    q_goal = np.array([-np.pi * 0.9, 0.0])
    print("initial scene (top-down, robot at center):")
    print(render_top_down(scene, cells=32, robot_obbs=robot.link_obbs(q_start)))

    report = runtime.run(q_start, q_goal, n_ticks=8, rng=rng)

    print("\ntick | replanned | plan ok | plan (ms) | env update (ms) | phases | ladder")
    for tick in report.ticks:
        print(
            f"{tick.tick:4d} | {str(tick.replanned):9s} | {str(tick.plan_valid):7s} | "
            f"{tick.planning_ms:9.3f} | {tick.octree_update_ms:15.4f} | "
            f"{tick.phases:6d} | {tick.degradation or 'quiet'}"
        )
    print(f"\nreplans: {report.replan_count}, worst tick: {report.worst_tick_ms:.3f} ms")
    histogram = {k: v for k, v in report.degradation_histogram.items() if v}
    print(f"degradation histogram: {histogram}, "
          f"deadline misses: {report.deadline_miss_count}")
    budget_ok = report.meets_budget(1.0)
    print(f"the 1 ms real-time budget {'holds' if budget_ok else 'misses'} across the run")

    print("\nfinal scene:")
    final_pose = report.final_path[-1] if report.final_path else q_start
    print(render_top_down(scene, cells=32, robot_obbs=robot.link_obbs(final_pose)))

    if not report.final_path:
        print("FAIL: the run ended without a validated path")
        return 1
    if not budget_ok:
        print("FAIL: the 1 ms budget was violated")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
