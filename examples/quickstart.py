"""Quickstart: plan a motion for a 7-DOF arm and time it on MPAccel.

This walks the full public API in one page:

1. generate a benchmark environment and its octree,
2. build the collision checker for a Baxter arm,
3. run the MPNet-style planner through a query engine (recording its
   collision detection phases; the batched engine answers each phase with
   one vectorized dispatch),
4. replay the recorded phases on the MPAccel simulator and print the
   end-to-end motion planning latency breakdown.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accel import CECDUConfig, CECDUModel, MPAccelConfig, MPAccelSimulator
from repro.api import make_recorder
from repro.config import EngineConfig, ReproConfig
from repro.env import Octree, random_scene
from repro.env.mapping import scan_scene_points
from repro.planning import HeuristicSampler, MPNetPlanner
from repro.robot import baxter_arm


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. Environment: 5-9 random cuboid obstacles in a 1.8 m workspace,
    #    rasterized into the octree MPAccel keeps in on-chip SRAM.
    scene = random_scene(seed=7)
    octree = Octree.from_scene(scene, resolution=16)
    print(f"environment: {scene}")
    print(f"octree: {octree} (hardware compatible: {octree.hardware_compatible})")

    # 2. One typed config wires the whole software stack: the "batch"
    #    checker backend feeds the vectorized pipeline the batched query
    #    engine dispatches to (16-bit fixed-point datapath throughout).
    robot = baxter_arm()
    repro_config = ReproConfig(
        backend="batch", collect_stats=False, engine=EngineConfig(kind="batch")
    )

    # 3. Plan with the learning-based planner.  Every collision query is
    #    recorded as a CD phase (motions + scheduler function mode) and
    #    answered by a query engine — here the batched one, which resolves
    #    each phase in a single vectorized dispatch.  Swapping
    #    EngineConfig(kind=...) ("sequential", "batch", "simulated") never
    #    changes the plan, only how it is computed.
    recorder = make_recorder(robot, octree, repro_config)
    checker = recorder.checker
    planner = MPNetPlanner(
        recorder,
        HeuristicSampler(robot),
        environment_points=scan_scene_points(scene, points_per_obstacle=60, rng=rng),
    )
    q_start = checker.sample_free_configuration(rng)
    q_goal = checker.sample_free_configuration(rng)
    result = planner.plan(q_start, q_goal, rng)
    print(
        f"\nplanner: success={result.success}, waypoints={len(result.path)}, "
        f"C-space length={result.length:.2f} rad, "
        f"NN inferences={result.nn_inferences}, replans={result.replans}"
    )
    print(
        f"recorded workload: {recorder.num_phases} phases, "
        f"{recorder.total_motions} motions, {recorder.total_poses} poses"
    )

    # 4. Price the run on MPAccel: 16 CECDUs, 4 multi-cycle OOCDs each,
    #    MCSP scheduling (the paper's flagship configuration).
    config = MPAccelConfig(n_cecdus=16, cecdu=CECDUConfig(n_oocds=4))
    cecdu = CECDUModel(robot, octree, config.cecdu)
    simulator = MPAccelSimulator(
        config,
        cecdu,
        sampler_pnet_macs=3_800_000,
        sampler_enet_macs=1_300_000,
    )
    timing = simulator.run_query(result, recorder.phases)
    print(f"\nMPAccel ({config.label()}): {timing.total_ms:.3f} ms total")
    print(f"  collision detection: {timing.collision_detection_s * 1e3:.3f} ms")
    print(f"  neural inference:    {timing.nn_inference_s * 1e3:.3f} ms")
    print(f"  IO + controller:     {(timing.io_s + timing.controller_s) * 1e3:.3f} ms")
    print(f"  area {simulator.area_mm2():.1f} mm^2, power {simulator.power_w():.2f} W")
    realtime = "yes" if timing.total_ms < 1.0 else "no"
    print(f"  real-time (< 1 ms actuator period): {realtime}")


if __name__ == "__main__":
    main()
