"""C-space tour: the Figure 2/3 picture, computed for real.

Builds a planar 2-DOF world, projects the workspace obstacle into the
robot's configuration space (the "C-obst"), plans around it, and renders
both views as ASCII maps with the path overlaid — exactly the conceptual
diagrams the paper opens with, derived from the actual collision substrate.

Run:  python examples/cspace_tour.py
"""

import numpy as np

from repro.api import make_checker
from repro.config import ReproConfig
from repro.env import Octree, Scene, render_top_down
from repro.geometry.aabb import AABB
from repro.planning import CDTraceRecorder, greedy_shortcut
from repro.planning.cspace_map import build_cspace_map, path_stays_free
from repro.planning.rrt_connect import RRTConnectPlanner
from repro.robot import planar_arm


def main() -> None:
    rng = np.random.default_rng(4)
    scene = Scene(extent=4.0)
    scene.add_obstacle(AABB.from_min_max([0.7, -0.4, 0.0], [0.9, 0.4, 0.2]))
    octree = Octree.from_scene(scene, resolution=32)
    robot = planar_arm(2)
    checker = make_checker(robot, octree, ReproConfig(motion_step=0.05))

    q_start = np.array([np.pi * 0.9, 0.0])
    q_goal = np.array([-np.pi * 0.9, 0.0])

    print("workspace (top-down; robot at center, wall to the right):")
    print(render_top_down(scene, cells=30, robot_obbs=robot.link_obbs(q_start)))

    print("\nprojecting the obstacle into C-space (this is the C-obst)...")
    cmap = build_cspace_map(checker, cells=40)
    print(f"C-obst covers {cmap.obstacle_fraction:.0%} of the configuration space\n")
    print(cmap.render())

    print("\nplanning from @ to @ around the C-obst...")
    recorder = CDTraceRecorder(checker)
    planner = RRTConnectPlanner(recorder, max_iterations=1000, max_step=0.3)
    path = planner.plan(q_start, q_goal, rng)
    if path is None:
        print("planning failed; rerun with a different seed")
        return
    path = greedy_shortcut(path, recorder)
    print(
        f"path: {len(path)} waypoints, "
        f"{recorder.total_poses} collision-checked poses, "
        f"stays in free C-space: {path_stays_free(cmap, path)}\n"
    )
    print(cmap.render(path=path))


if __name__ == "__main__":
    main()
