"""Train the from-scratch MPNet networks and plan with the neural sampler.

The faithful MPNet configuration: an environment encoder (ENet) and planning
network (PNet), both plain-numpy MLPs, trained end-to-end on demonstration
paths produced by RRT-Connect + shortcutting.  A planar arm keeps the demo
laptop-fast; the same pipeline works for the Jaco2/Baxter presets with more
demonstrations and epochs.

Run:  python examples/train_neural_planner.py
"""

import numpy as np

from repro.api import make_checker
from repro.config import ReproConfig
from repro.env import Octree, Scene
from repro.env.mapping import scan_scene_points
from repro.geometry.aabb import AABB
from repro.neural import default_mpnet_model, generate_demonstrations, train_mpnet
from repro.planning import CDTraceRecorder, MPNetPlanner, NeuralSampler
from repro.robot import planar_arm


def training_scenes(n: int):
    """Planar worlds with a wall obstacle at a random bearing."""
    rng = np.random.default_rng(91)
    scenes = []
    for _ in range(n):
        scene = Scene(extent=4.0)
        angle = rng.uniform(-np.pi, np.pi)
        center = 0.8 * np.array([np.cos(angle), np.sin(angle), 0.0])
        scene.add_obstacle(
            AABB(center=[center[0], center[1], 0.1], half_extents=[0.12, 0.3, 0.1])
        )
        scenes.append(scene)
    return scenes


def main() -> None:
    dof = 2
    robot_factory = lambda: planar_arm(dof)  # noqa: E731 - tiny local factory
    scenes = training_scenes(6)

    model = default_mpnet_model(dof=dof, n_cloud_points=24, latent=16, seed=3)
    print(
        f"model: ENet {model.enet.sizes} + PNet {model.pnet.sizes} "
        f"({model.enet.parameter_count + model.pnet.parameter_count} parameters)"
    )

    print("generating RRT-Connect demonstrations...")
    demos = generate_demonstrations(
        robot_factory,
        scenes,
        n_cloud_points=model.n_cloud_points,
        queries_per_scene=6,
        octree_resolution=32,
        seed=5,
    )
    n_pairs = sum(len(d.path) - 1 for d in demos)
    print(f"{len(demos)} demonstrations, {n_pairs} training pairs")

    losses = train_mpnet(model, demos, epochs=60, batch_size=16, lr=2e-3)
    print(f"training loss: {losses[0]:.4f} -> {losses[-1]:.4f}")

    # Plan in a held-out scene with the trained neural sampler.
    rng = np.random.default_rng(17)
    scene = training_scenes(8)[-1]
    octree = Octree.from_scene(scene, resolution=32)
    robot = robot_factory()
    checker = make_checker(robot, octree, ReproConfig(motion_step=0.05))
    recorder = CDTraceRecorder(checker)
    sampler = NeuralSampler(model, robot)
    planner = MPNetPlanner(
        recorder,
        sampler,
        environment_points=scan_scene_points(scene, 200, rng=rng),
    )
    successes = 0
    trials = 5
    for i in range(trials):
        q_start = checker.sample_free_configuration(rng)
        q_goal = checker.sample_free_configuration(rng)
        result = planner.plan(q_start, q_goal, rng)
        successes += result.success
        print(
            f"query {i}: success={result.success}, "
            f"nn_inferences={result.nn_inferences}, fallback={result.fallback_used}"
        )
    print(f"\nneural planner: {successes}/{trials} queries solved")
    print(
        f"sampler cost: PNet {sampler.pnet_macs} MACs, ENet {sampler.enet_macs} MACs "
        f"per inference (used by the DNN-accelerator timing model)"
    )


if __name__ == "__main__":
    main()
