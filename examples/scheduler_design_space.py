"""Scheduler design-space exploration with the limit study.

Reproduces the Section 3 analysis interactively: sweep every scheduling
policy over CDU counts on a freshly generated planner workload and print
the speedup / work-efficiency frontier, including the step-size ablation
for the coarse-step policy.

Run:  python examples/scheduler_design_space.py
"""

import numpy as np

from repro.accel.limit import limit_study, tabulate
from repro.api import make_checker
from repro.config import ReproConfig
from repro.env import Octree, random_scene
from repro.env.mapping import scan_scene_points
from repro.planning import CDTraceRecorder, HeuristicSampler, MPNetPlanner
from repro.robot import jaco2


def build_workload(n_queries: int = 4, seed: int = 17):
    rng = np.random.default_rng(seed)
    scene = random_scene(seed=seed, n_obstacles=8)
    octree = Octree.from_scene(scene, resolution=16)
    robot = jaco2()
    checker = make_checker(robot, octree, ReproConfig(collect_stats=False))
    recorder = CDTraceRecorder(checker)
    planner = MPNetPlanner(
        recorder,
        HeuristicSampler(robot),
        environment_points=scan_scene_points(scene, 60, rng=rng),
    )
    planned = 0
    attempts = 0
    while planned < n_queries and attempts < 50 * n_queries:
        attempts += 1
        q_start = checker.sample_free_configuration(rng)
        q_goal = checker.sample_free_configuration(rng)
        # Keep only *blocked* queries — ones whose straight motion collides —
        # so the workload exercises the early-exit scheduling the paper
        # studies (trivially connectable queries make every policy tie).
        if checker.motion_is_free(q_start, q_goal):
            continue
        planner.plan(q_start, q_goal, rng)
        planned += 1
    return recorder.phases


def main() -> None:
    phases = build_workload()
    poses = sum(p.total_poses for p in phases)
    print(f"workload: {len(phases)} phases, {poses} poses\n")

    cdu_counts = (1, 4, 8, 16, 32, 64)
    points = limit_study(phases, cdu_counts=cdu_counts)
    table = tabulate(points)
    print("speedup (x) / normalized collision tests, by policy and #CDUs:")
    header = "policy | " + " | ".join(f"{n:>11d}" for n in cdu_counts)
    print(header)
    print("-" * len(header))
    for policy in ("np", "rnd", "brp", "csp", "ms", "mnp", "mbrp", "mcsp"):
        cells = [
            f"{table[policy][n].speedup:5.1f}/{table[policy][n].normalized_tests:4.2f}"
            for n in cdu_counts
        ]
        print(f"{policy:6s} | " + " | ".join(f"{c:>11s}" for c in cells))

    # Ablation: the MCSP step size (hardware uses 8).
    print("\nMCSP step-size ablation at 16 CDUs (speedup / normalized tests):")
    for step in (1, 2, 4, 8, 16, 32):
        point = limit_study(
            phases, policies=("mcsp",), cdu_counts=(16,), step_size=step
        )[0]
        print(f"  step {step:2d}: {point.speedup:5.1f}x / {point.normalized_tests:4.2f}")


if __name__ == "__main__":
    main()
