"""Dynamic replanning: the environment changes mid-task.

Autonomous robots must replan when obstacles move (the paper's real-time
motivation: the environment octree is rebuilt once per planning query, and
planning must finish within the ~1 ms actuator period).  This example plans
a path, drops a new obstacle across it, detects the invalidation with a
feasibility check, replans in the updated octree, and reports what the
replanning cycle would cost on MPAccel versus an embedded CPU.

The process exits nonzero when any stage fails (initial plan, replan, or
the 1 ms budget), so this example doubles as a smoke test.

Run:  python examples/dynamic_replanning.py
"""

import sys

import numpy as np

from repro.accel import CECDUConfig, CECDUModel, MPAccelConfig, MPAccelSimulator
from repro.api import make_checker
from repro.baselines.device import CPU_DEVICES
from repro.baselines.system import BaselineSystemModel
from repro.collision import RobotEnvironmentChecker
from repro.config import ReproConfig
from repro.env import Octree, random_scene
from repro.env.mapping import scan_scene_points
from repro.geometry.aabb import AABB
from repro.harness.traces import QueryTrace
from repro.planning import CDTraceRecorder, HeuristicSampler, MPNetPlanner
from repro.robot import baxter_arm


def _pose_along_path(path, fraction: float) -> np.ndarray:
    """The configuration at arc-length fraction ``fraction`` of a path."""
    lengths = [
        float(np.linalg.norm(np.asarray(b) - np.asarray(a)))
        for a, b in zip(path[:-1], path[1:])
    ]
    total = sum(lengths)
    if total == 0.0:
        return np.asarray(path[0], dtype=float)
    target = fraction * total
    walked = 0.0
    for (a, b), seg in zip(zip(path[:-1], path[1:]), lengths):
        if walked + seg >= target and seg > 0:
            t = (target - walked) / seg
            return np.asarray(a) + t * (np.asarray(b) - np.asarray(a))
        walked += seg
    return np.asarray(path[-1], dtype=float)


def main() -> int:
    rng = np.random.default_rng(5)
    scene = random_scene(seed=9, n_obstacles=5)
    octree = Octree.from_scene(scene, resolution=16)
    robot = baxter_arm()
    # Deprecated string-kwarg construction, left in on purpose as the shim
    # demo: it emits a DeprecationWarning and is pinned bit-identical to
    # the typed path (make_checker / from_config) used everywhere else.
    checker = RobotEnvironmentChecker(
        robot, octree, collect_stats=False, backend="scalar"
    )

    recorder = CDTraceRecorder(checker)
    planner = MPNetPlanner(
        recorder,
        HeuristicSampler(robot),
        environment_points=scan_scene_points(scene, 60, rng=rng),
    )
    q_start = checker.sample_free_configuration(rng)
    q_goal = checker.sample_free_configuration(rng)
    result = planner.plan(q_start, q_goal, rng)
    print(f"initial plan: success={result.success}, waypoints={len(result.path)}")
    if not result.success:
        print("FAIL: initial planning failed; rerun with another seed")
        return 1

    # A new obstacle appears on top of the planned path: drop a box at the
    # robot's elbow position for the C-space midpoint of the path, making
    # sure the start and goal poses themselves stay collision-free (else
    # replanning would be impossible by construction).
    new_octree = None
    new_checker = None
    for fraction in (0.5, 0.35, 0.65, 0.25):
        mid = _pose_along_path(result.path, fraction)
        elbow = robot.forward_kinematics(mid)[4].translation
        size = np.array([0.09, 0.09, 0.09])
        lo = np.maximum(scene.bounds.minimum + 0.01, elbow - size)
        hi = np.minimum(scene.bounds.maximum - 0.01, elbow + size)
        candidate = AABB.from_min_max(lo, hi)
        scene.add_obstacle(candidate)
        octree_try = Octree.from_scene(scene, resolution=16)
        checker_try = make_checker(
            robot, octree_try, ReproConfig(collect_stats=False)
        )
        if checker_try.check_pose(q_start) or checker_try.check_pose(q_goal):
            scene.obstacles.remove(candidate)  # endpoints blocked: retry
            continue
        new_octree, new_checker = octree_try, checker_try
        print(f"obstacle dropped at elbow {np.round(elbow, 2)} (t={fraction}); octree rebuilt")
        break
    if new_octree is None:
        print("FAIL: could not place an obstacle without blocking the endpoints")
        return 1

    # Detect the invalidation (a feasibility-mode phase) and replan.
    replan_recorder = CDTraceRecorder(new_checker)
    bad_segment = replan_recorder.feasibility(result.path, label="revalidate")
    if bad_segment is None:
        print("old path still valid (obstacle missed it); nothing to do")
        return 0
    print(f"old path invalidated at segment {bad_segment}; replanning...")
    replanner = MPNetPlanner(
        replan_recorder,
        HeuristicSampler(robot),
        environment_points=scan_scene_points(scene, 60, rng=rng),
    )
    new_result = replanner.plan(q_start, q_goal, rng)
    print(
        f"replanned: success={new_result.success}, waypoints={len(new_result.path)}, "
        f"phases recorded={replan_recorder.num_phases}"
    )
    if not new_result.success:
        print("FAIL: replanning did not recover a valid path")
        return 1

    # Price the replanning cycle on MPAccel vs an embedded CPU.
    config = MPAccelConfig(n_cecdus=16, cecdu=CECDUConfig(n_oocds=4))
    cecdu = CECDUModel(robot, new_octree, config.cecdu)
    accel = MPAccelSimulator(config, cecdu, 3_800_000, 1_300_000)
    timing = accel.run_query(new_result, replan_recorder.phases)
    cpu = BaselineSystemModel("cortex-a57", CPU_DEVICES["cortex-a57"])
    cpu_ms = cpu.run_query(
        QueryTrace(0, new_result, list(replan_recorder.phases))
    ).total_ms
    print(f"\nreplanning latency: MPAccel {timing.total_ms:.3f} ms "
          f"vs Cortex-A57 {cpu_ms:.2f} ms "
          f"({cpu_ms / max(1e-9, timing.total_ms):.0f}x)")
    budget_ok = timing.total_ms < 1.0
    print(f"MPAccel {'meets' if budget_ok else 'misses'} the 1 ms real-time budget")
    if not budget_ok:
        print("FAIL: the 1 ms budget was violated")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
