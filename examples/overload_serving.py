"""Overload serving: a seeded burst slams the planning service.

Generates a bursty Markov-modulated traffic trace, replays it open-loop
into the multi-client planning service with admission control, fairness,
and preemption enabled, and prints what the overload machinery did: the
terminal-status histogram, the shed reasons, the overload-ladder
histogram, per-client completions, and the simulated tail latencies.

Everything runs on the simulated clock from fixed seeds, so the numbers
are the same on every machine.  The script self-checks the overload
contract (typed sheds, non-negative latencies, fairness coverage,
no unvalidated paths) and exits nonzero on any violation.

Run:  PYTHONPATH=src python examples/overload_serving.py
"""

import sys

import numpy as np

from repro.collision.checker import RobotEnvironmentChecker
from repro.config import ReproConfig, ServiceConfig
from repro.env.generator import random_scene
from repro.env.octree import Octree
from repro.robot.presets import planar_arm
from repro.scenarios.suite import percentile
from repro.serving import (
    PlanningService,
    SHED_REASONS,
    TrafficSpec,
    requests_from_trace,
)


def main() -> int:
    robot = planar_arm(3)
    octree = Octree.from_scene(random_scene(seed=5), resolution=16)
    checker = RobotEnvironmentChecker.from_config(robot, octree, ReproConfig())
    rng = np.random.default_rng(13)
    pairs = [
        (
            checker.sample_free_configuration(rng),
            checker.sample_free_configuration(rng),
        )
        for _ in range(6)
    ]

    spec = TrafficSpec(
        kind="onoff",
        seed=42,
        n_requests=40,
        n_clients=3,
        burst_rate_rps=4000.0,
        idle_rate_rps=40.0,
        mean_burst_ms=30.0,
        mean_idle_ms=120.0,
        deadline_ms=60.0,
        hot_fraction=0.5,
    )
    trace = spec.generate()
    print(
        f"traffic: {len(trace.events)} requests over "
        f"{trace.duration_ms:.1f} simulated ms "
        f"({trace.offered_rps:.0f} rps offered, "
        f"{len(trace.clients())} clients, hot_fraction="
        f"{spec.hot_fraction:g})"
    )

    config = ReproConfig.for_service(
        service=ServiceConfig(
            admission_control=True,
            max_inflight=4,
            max_queue_depth=6,
            fairness=True,
            preempt_energy_budget_pj=5e9,
        )
    )
    service = PlanningService(robot, octree, config=config)
    for request, arrival_ms in requests_from_trace(trace, pairs):
        service.submit(request, arrival_ms=arrival_ms)
    report = service.run()

    print(f"\ndrained in {report.sim_ms:.1f} simulated ms "
          f"({report.rounds} rounds, {report.dispatches} dispatches)")
    print("terminal statuses:")
    for status, count in sorted(report.status_counts.items()):
        print(f"  {status:<10} {count}")
    if any(report.shed_counts.values()):
        print("shed reasons:")
        for reason in SHED_REASONS:
            if report.shed_counts.get(reason):
                print(f"  {reason:<22} {report.shed_counts[reason]}")
    print("overload ladder at the arrival gates:")
    for level, count in sorted(report.overload_histogram.items()):
        print(f"  {level:<16} {count}")

    responses = list(report.responses.values())
    per_client = {}
    for response in responses:
        bucket = per_client.setdefault(response.client_id, [0, 0])
        bucket[0] += 1
        bucket[1] += 1 if response.status == "completed" else 0
    print("per-client outcomes (requests -> completed):")
    for client in sorted(per_client):
        total, done = per_client[client]
        print(f"  {client:<10} {total:>3} -> {done}")

    latencies = [r.latency_ms for r in responses]
    print(
        f"latency (simulated ms): p50 {percentile(latencies, 50):.2f}  "
        f"p99 {percentile(latencies, 99):.2f}  "
        f"max {max(latencies):.2f}"
    )
    print(
        f"throughput: {report.requests_per_sim_s:.1f} req/sim-s, "
        f"goodput {report.goodput_per_sim_s:.1f}/sim-s"
    )

    # ---- self-checks: the overload contract ---------------------------
    failures = []
    if len(report.responses) != spec.n_requests:
        failures.append("not every request reached a terminal status")
    for response in responses:
        if response.latency_ms < 0.0:
            failures.append(f"negative latency on {response.request_id}")
        if response.status == "shed" and response.shed_reason not in SHED_REASONS:
            failures.append(f"untyped shed on {response.request_id}")
        if response.path is not None and response.status != "completed":
            failures.append(
                f"{response.request_id} carries a path with status "
                f"{response.status}"
            )
    if not any(r.status == "shed" for r in responses):
        failures.append("burst never triggered load shedding")
    quiet = [c for c in per_client if c != "client-0"]
    if quiet and not any(per_client[c][1] > 0 for c in quiet):
        failures.append("fairness failed: no quiet-client request completed")
    rerun_service = PlanningService(robot, octree, config=config)
    for request, arrival_ms in requests_from_trace(spec.generate(), pairs):
        rerun_service.submit(request, arrival_ms=arrival_ms)
    rerun = rerun_service.run()
    if {r.request_id: r.status for r in rerun.responses.values()} != {
        r.request_id: r.status for r in responses
    } or rerun.sim_ms != report.sim_ms:
        failures.append("rerun diverged: overload drain is not deterministic")

    if failures:
        print("\nCONTRACT VIOLATIONS:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall overload contracts held (typed sheds, fairness, "
          "determinism, no unvalidated paths)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
