"""Tabletop manipulation: repeated pick-style motions in a cluttered scene.

The motivating workload of the paper's introduction: a 6-DOF Jaco2 arm
(the assistive manipulator) moving between hover poses above a cluttered
table while avoiding the clutter.  The example builds the scene from a
simulated depth-sensor point cloud (the mapping-accelerator substrate),
plans a sequence of moves, and compares the scheduler policies' energy on
the recorded workload.

Run:  python examples/tabletop_manipulation.py
"""

import numpy as np

from repro.accel import SASSimulator
from repro.accel.config import SASConfig
from repro.api import make_checker
from repro.config import ReproConfig
from repro.env import Scene
from repro.env.mapping import OccupancyMapper, scan_scene_points
from repro.geometry.aabb import AABB
from repro.planning import CDTraceRecorder, HeuristicSampler, MPNetPlanner
from repro.robot import jaco2


def build_tabletop_scene() -> Scene:
    """A table slab plus a few box-shaped objects standing on it."""
    scene = Scene(extent=1.8)
    table_height = 0.40
    # The table keeps clear of the robot mount: after voxelization and one
    # cell of sensing dilation (0.1125 m voxels) its nearest face must stay
    # outside the base link's footprint.
    scene.add_obstacle(
        AABB(center=[0.60, 0.0, table_height / 2], half_extents=[0.25, 0.45, table_height / 2])
    )
    rng = np.random.default_rng(3)
    for _ in range(4):
        size = rng.uniform(0.03, 0.07, size=3)
        x = rng.uniform(0.42, 0.78)
        y = rng.uniform(-0.35, 0.35)
        scene.add_obstacle(AABB(center=[x, y, table_height + size[2]], half_extents=size))
    return scene


def main() -> None:
    rng = np.random.default_rng(11)
    scene = build_tabletop_scene()
    print(f"tabletop scene: {scene.num_obstacles} obstacles")

    # Sense the scene into an octree through the mapping pipeline.
    mapper = OccupancyMapper(scene.bounds, resolution=16, dilation_cells=1)
    cloud = scan_scene_points(scene, points_per_obstacle=800, noise_std=0.004, rng=rng)
    mapper.integrate(cloud)
    octree = mapper.to_octree()
    print(f"sensed octree: {octree}")

    robot = jaco2()
    checker = make_checker(robot, octree, ReproConfig(collect_stats=False))
    recorder = CDTraceRecorder(checker)
    planner = MPNetPlanner(
        recorder, HeuristicSampler(robot), environment_points=cloud
    )

    # A pick sequence alternating sides of the table: reach poses whose
    # end effector sits low on the +y / -y side, so the straight C-space
    # segment between consecutive waypoints tends to sweep through the
    # clutter and the planner has real collision avoidance to do.
    def reach_pose(side: float) -> np.ndarray:
        for _ in range(500):
            q = robot.random_configuration(rng)
            if checker.check_pose(q):
                continue
            ee = robot.forward_kinematics(q)[-1].translation
            if ee[0] > 0.30 and side * ee[1] > 0.20 and ee[2] < 0.55:
                return q
        return checker.sample_free_configuration(rng)

    waypoints = [reach_pose(side) for side in (1.0, -1.0, 1.0, -1.0)]
    successes = 0
    for leg, (q_from, q_to) in enumerate(zip(waypoints[:-1], waypoints[1:])):
        result = planner.plan(q_from, q_to, rng)
        successes += result.success
        print(
            f"leg {leg}: success={result.success}, waypoints={len(result.path)}, "
            f"length={result.length:.2f} rad"
        )
    print(f"\n{successes}/{len(waypoints) - 1} legs planned")

    # Compare scheduling policies on the recorded CD workload (8 CDUs).
    print("\nscheduler comparison over the recorded workload (8 CDUs):")
    reference = sum(p.sequential_reference().tests for p in recorder.phases)
    for policy in ("np", "csp", "mcsp"):
        sim = SASSimulator(
            n_cdus=8,
            policy=policy,
            config=SASConfig(policy=policy, dispatch_per_cycle=None),
        )
        total = sim.run_phases(recorder.phases)
        print(
            f"  {policy.upper():5s}: {reference / max(1, total.cycles):5.2f}x speedup, "
            f"{total.tests / max(1, reference):5.2f}x collision tests vs sequential"
        )


if __name__ == "__main__":
    main()
