"""Scenario gallery: a tour of the seeded benchmark corpus.

The scenario DSL (:mod:`repro.scenarios`) freezes every benchmark
instance as a (name, family, seed, params) spec that regenerates its
scene, octree, robot placement, and query set bit-identically.  This
example walks the smoke corpus end to end:

1. build every generator family and print what it produced;
2. save one spec to JSON, reload it, and verify the regenerated
   instance is bit-identical to the original;
3. plan one query per scenario and price it on the MPAccel model
   (simulated milliseconds + energy);
4. drive a moving-obstacle script through a cache-enabled checker
   (selective invalidation via ``update_octree``) and through the
   deadline-enforced realtime runtime, so the scripted epochs exercise
   the graceful-degradation ladder;
5. run a cross-robot collision check in the multi-arm scene.

The process exits nonzero when any stage fails, so this example doubles
as a smoke test.

Run:  python examples/scenario_gallery.py
"""

import os
import sys
import tempfile

import numpy as np

from repro.accel import CECDUConfig, MPAccelConfig, RobotRuntime
from repro.collision.checker import RobotEnvironmentChecker
from repro.config import CacheConfig, EngineConfig, ReproConfig, ResilienceConfig
from repro.env import Scene
from repro.harness.serialization import load_scenario, save_scenario
from repro.scenarios import FAMILIES, build_scenario, default_corpus, run_case
from repro.scenarios.multiarm import robots_collide


def tour_the_corpus(specs):
    print("the smoke corpus (every instance frozen by name + seed):")
    instances = {}
    for spec in specs:
        instance = build_scenario(spec)
        instances[spec.name] = instance
        family = FAMILIES[spec.family]
        extra = ""
        if instance.is_dynamic:
            extra = f", {instance.n_epochs} scripted epochs"
        if len(instance.robots) > 1:
            extra = f", {len(instance.robots)} arms"
        print(
            f"  {spec.name:<14} [{spec.family}] seed={spec.seed}: "
            f"{len(instance.scene.obstacles)} obstacles, "
            f"{len(instance.queries)} queries{extra}"
        )
        print(f"    {family.description}")
    return instances


def roundtrip_one(spec) -> bool:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, f"{spec.name}.json")
        save_scenario(path, spec)
        reloaded = load_scenario(path)
    identical = (
        build_scenario(spec).fingerprint()
        == build_scenario(reloaded).fingerprint()
    )
    state = "bit-identical" if identical else "DIVERGED"
    print(f"\nsave -> load -> regenerate [{spec.name}]: {state}")
    return identical


def plan_the_corpus(instances) -> int:
    print("\none query per scenario, priced on MPAccel (16 CECDUs):")
    failures = 0
    for name, instance in instances.items():
        case = run_case(instance, "rrt_connect", "batch", seed=0, max_queries=1)
        ok = case.successes == case.n_queries
        failures += 0 if ok else 1
        metrics = case.metrics()
        print(
            f"  {name:<14} success={case.successes}/{case.n_queries} "
            f"sim={metrics['sim_ms_p50']:.4f} ms "
            f"energy={metrics['energy_uj']:.4f} uJ"
        )
    return failures


def drive_moving_scenario(instance) -> bool:
    # (a) The collision cache sees every scripted epoch through
    # update_octree: entries whose footprint overlaps a changed region are
    # dropped, everything else survives.
    config = ReproConfig(cache=CacheConfig(enabled=True))
    checker = RobotEnvironmentChecker.from_config(
        instance.robot, instance.epoch_octrees[0], config
    )
    rng = np.random.default_rng(1)
    for _ in range(12):
        checker.check_pose(instance.robot.random_configuration(rng))
    print(f"\nmoving scenario '{instance.spec.name}' through the cached checker:")
    for epoch in range(1, instance.n_epochs):
        dropped = checker.update_octree(instance.epoch_octrees[epoch])
        print(
            f"  epoch {epoch}: cache dropped {dropped} entr"
            f"{'y' if dropped == 1 else 'ies'}, {len(checker.cache)} kept"
        )

    # (b) The same script through the deadline-enforced realtime runtime:
    # each tick replays the next epoch's scene, and the 1 ms actuator
    # deadline makes the runtime walk the degradation ladder rather than
    # run long.
    params = instance.spec.resolved_params()
    scene = Scene(params["extent"], list(instance.epoch_scenes[0].obstacles))

    def scripted_update(s: Scene, tick: int, _rng) -> bool:
        if tick == 0 or tick >= instance.n_epochs:
            return False
        s.obstacles[:] = instance.epoch_scenes[tick].obstacles
        return True

    runtime = RobotRuntime(
        robot=instance.robot,
        scene=scene,
        config=MPAccelConfig(n_cecdus=8, cecdu=CECDUConfig(n_oocds=4)),
        scene_update=scripted_update,
        repro=ReproConfig(
            octree_resolution=params["octree_resolution"],
            backend="batch",
            engine=EngineConfig(kind="batch"),
            cache=CacheConfig(enabled=True),
            resilience=ResilienceConfig(sim_ms=1.0),
        ),
    )
    q_start, q_goal = instance.queries[0]
    report = runtime.run(
        q_start, q_goal, n_ticks=instance.n_epochs, rng=np.random.default_rng(2)
    )
    histogram = {k: v for k, v in report.degradation_histogram.items() if v}
    print(
        f"  realtime replay: {report.replan_count} replans over "
        f"{instance.n_epochs} ticks, worst tick "
        f"{report.worst_tick_ms:.3f} ms, ladder: {histogram or 'quiet'}"
    )
    if not report.final_path:
        print("  FAIL: the runtime ended without a validated path")
        return False
    return True


def check_multi_arm(instance) -> bool:
    jaco, other = instance.robots[0], instance.robots[1]
    rest = instance.rest_configurations[1]
    q = instance.queries[0][0]
    ab = robots_collide(jaco, q, other, rest)
    ba = robots_collide(other, rest, jaco, q)
    print(
        f"\nmulti-arm '{instance.spec.name}': arm A at its start pose "
        f"{'CONTACTS' if ab else 'clears'} arm B at rest "
        f"(symmetric check agrees: {ab == ba})"
    )
    return ab == ba


def main() -> int:
    specs = default_corpus("smoke")
    instances = tour_the_corpus(specs)

    ok = roundtrip_one(specs[1])  # the narrow-passage spec
    plan_failures = plan_the_corpus(instances)
    ok &= drive_moving_scenario(instances["sweep_cart"])
    ok &= check_multi_arm(instances["dual_arm_cell"])

    if plan_failures:
        print(f"\nFAIL: {plan_failures} scenario(s) had failing queries")
        return 1
    if not ok:
        print("\nFAIL: a gallery stage failed")
        return 1
    print("\nall gallery stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
