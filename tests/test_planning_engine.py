"""Tests for the query-engine layer (repro.planning.engine)."""

import numpy as np
import pytest

from repro.accel.invariants import check_sas_result
from repro.accel.sas import SASSimulator
from repro.accel.telemetry import MetricsRegistry
from repro.collision.checker import RobotEnvironmentChecker
from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.geometry.aabb import AABB
from repro.planning.engine import (
    ENGINE_KINDS,
    BatchedEngine,
    PhaseAnswer,
    SequentialEngine,
    SimulatedEngine,
    make_engine,
)
from repro.planning.motion import CDPhase, FunctionMode, MotionRecord
from repro.planning.recorder import CDTraceRecorder
from repro.robot.presets import planar_arm


@pytest.fixture(scope="module")
def world():
    scene = Scene(extent=4.0)
    scene.add_obstacle(AABB.from_min_max([0.7, -0.4, 0.0], [0.9, 0.4, 0.2]))
    octree = Octree.from_scene(scene, resolution=32)
    robot = planar_arm(2)
    return robot, octree


def make_checker(world, backend: str) -> RobotEnvironmentChecker:
    robot, octree = world
    return RobotEnvironmentChecker(
        robot, octree, motion_step=0.05, collect_stats=True, backend=backend
    )


FREE_A = np.array([np.pi, 0.0])  # pointing -x, away from the wall
FREE_B = np.array([np.pi - 0.4, 0.0])
BLOCKED = np.array([0.0, 0.0])  # straight through the wall


def run_script(recorder: CDTraceRecorder) -> list:
    """A fixed query script covering all four recorder entry points."""
    return [
        recorder.steer(FREE_A, FREE_B),
        recorder.steer(FREE_A, BLOCKED),
        recorder.feasibility([FREE_A, FREE_B, BLOCKED, FREE_A]),
        recorder.connectivity(FREE_A, [BLOCKED, FREE_B, FREE_A]),
        recorder.complete([(FREE_A, FREE_B), (FREE_A, BLOCKED)]),
    ]


class TestPhaseAnswer:
    def test_first_colliding_and_free(self):
        answer = PhaseAnswer(outcomes=[False, True, None])
        assert answer.first_colliding() == 1
        assert answer.first_free() == 0
        assert not answer.all_free

    def test_all_free(self):
        assert PhaseAnswer(outcomes=[False, False]).all_free
        assert PhaseAnswer(outcomes=[]).all_free

    def test_flags_requires_complete_answer(self):
        assert PhaseAnswer(outcomes=[False, True]).flags() == [False, True]
        with pytest.raises(ValueError):
            PhaseAnswer(outcomes=[False, None]).flags()


class TestMakeEngine:
    def test_kinds_and_aliases(self, world):
        scalar = make_checker(world, "scalar")
        batch = make_checker(world, "batch")
        assert isinstance(make_engine("sequential", scalar), SequentialEngine)
        assert isinstance(make_engine("batch", batch), BatchedEngine)
        assert isinstance(make_engine("batched", batch), BatchedEngine)
        assert isinstance(make_engine("simulated", scalar), SimulatedEngine)
        assert isinstance(make_engine("sas", scalar), SimulatedEngine)
        assert set(ENGINE_KINDS) == {"sequential", "batch", "simulated"}

    def test_unknown_kind_raises(self, world):
        with pytest.raises(ValueError, match="unknown engine kind"):
            make_engine("warp", make_checker(world, "scalar"))

    def test_batched_rejects_scalar_checker(self, world):
        with pytest.raises(ValueError, match="backend='batch'"):
            BatchedEngine(make_checker(world, "scalar"))


class TestRecorderEngineIntegration:
    def test_answers_parallel_to_phases(self, world):
        checker = make_checker(world, "scalar")
        recorder = CDTraceRecorder(checker)
        run_script(recorder)
        assert len(recorder.answers) == len(recorder.phases) == 5
        assert all(a.engine == "sequential" for a in recorder.answers)

    def test_engine_without_checker_argument(self, world):
        checker = make_checker(world, "batch")
        recorder = CDTraceRecorder(engine=BatchedEngine(checker))
        assert recorder.checker is checker
        assert recorder.steer(FREE_A, FREE_B)

    def test_requires_checker_or_engine(self):
        with pytest.raises(ValueError):
            CDTraceRecorder()


class TestEngineEquivalence:
    """The semantics contract: identical answers AND identical stats."""

    def _run(self, world, engine_kind, backend, **engine_kwargs):
        checker = make_checker(world, backend)
        engine = make_engine(engine_kind, checker, **engine_kwargs)
        recorder = CDTraceRecorder(checker, engine=engine)
        answers = run_script(recorder)
        return answers, checker.stats.as_dict(), recorder

    def test_batched_matches_sequential(self, world):
        seq_answers, seq_stats, _ = self._run(world, "sequential", "scalar")
        bat_answers, bat_stats, _ = self._run(world, "batch", "batch")
        assert bat_answers == seq_answers
        assert bat_stats == seq_stats

    def test_simulated_scalar_matches_sequential(self, world):
        seq_answers, seq_stats, _ = self._run(world, "sequential", "scalar")
        sim_answers, sim_stats, recorder = self._run(
            world, "simulated", "scalar", seed=3
        )
        assert sim_answers == seq_answers
        # Planner-visible stats are sequential-identical; the extra ground
        # truth the simulator needed went to shadow_stats instead.
        assert sim_stats == seq_stats
        assert recorder.engine.shadow_stats.pose_checks > 0

    def test_simulated_batch_matches_sequential(self, world):
        seq_answers, seq_stats, _ = self._run(world, "sequential", "scalar")
        sim_answers, sim_stats, _ = self._run(world, "simulated", "batch", seed=3)
        assert sim_answers == seq_answers
        assert sim_stats == seq_stats


class TestSimulatedEngine:
    def test_one_audited_result_per_phase(self, world):
        checker = make_checker(world, "scalar")
        engine = SimulatedEngine(checker, n_cdus=4, seed=11)
        recorder = CDTraceRecorder(checker, engine=engine)
        run_script(recorder)
        assert len(engine.results) == len(recorder.phases)
        for phase, result in zip(recorder.phases, engine.results):
            assert check_sas_result(result, phases=[phase]) == []
        assert engine.total_cycles > 0
        assert engine.total_tests > 0
        assert engine.total_energy_pj > 0.0

    def test_inline_equals_posthoc_replay(self, world):
        """Inline SAS pricing equals a post-hoc run_phases replay of the
        recorded trace when seed/policy/config match (mcsp is
        deterministic, so pose orderings coincide)."""
        checker = make_checker(world, "scalar")
        engine = SimulatedEngine(checker, n_cdus=8, policy="mcsp", seed=5)
        recorder = CDTraceRecorder(checker, engine=engine)
        run_script(recorder)
        replay = SASSimulator(n_cdus=8, policy="mcsp", seed=5).run_phases(
            recorder.phases
        )
        assert replay.cycles == engine.total_cycles
        assert replay.tests == engine.total_tests
        assert replay.energy_pj == pytest.approx(engine.total_energy_pj)
        assert replay.motion_outcomes == [
            outcome for result in engine.results
            for outcome in result.motion_outcomes
        ]

    def test_clear(self, world):
        checker = make_checker(world, "scalar")
        engine = SimulatedEngine(checker, n_cdus=4)
        recorder = CDTraceRecorder(checker, engine=engine)
        recorder.steer(FREE_A, FREE_B)
        assert engine.results
        engine.clear()
        assert not engine.results
        assert engine.shadow_stats.pose_checks == 0

    def test_precomputed_trace_needs_no_checker(self):
        poses = np.linspace([0.0, 0.0], [1.0, 0.0], 5)
        motion = MotionRecord.from_precomputed(poses, [False] * 5)
        engine = SimulatedEngine(checker=None, n_cdus=2)
        answer = engine.answer(CDPhase(FunctionMode.FEASIBILITY, [motion]))
        assert answer.outcomes == [False]
        assert len(engine.results) == 1


class TestEngineTelemetry:
    def test_scopes_and_counters(self, world):
        telemetry = MetricsRegistry()
        checker = make_checker(world, "scalar")
        engine = SequentialEngine(checker, telemetry=telemetry)
        recorder = CDTraceRecorder(checker, engine=engine)
        run_script(recorder)
        scopes = telemetry.scopes_of("engine.phase")
        assert len(scopes) == 5
        assert scopes[0].label == "sequential:steer"
        assert telemetry.counter_value("engine.sequential.phases") == 5
        assert telemetry.counter_value("engine.mode.feasibility") == 3
        assert telemetry.counter_value("engine.mode.connectivity") == 1
        assert telemetry.counter_value("engine.mode.complete") == 1
        assert telemetry.counter_value("engine.motions") == sum(
            len(p.motions) for p in recorder.phases
        )
        assert telemetry.counter_value("engine.poses") == sum(
            p.total_poses for p in recorder.phases
        )

    def test_disabled_registry_is_noop(self, world):
        telemetry = MetricsRegistry(enabled=False)
        checker = make_checker(world, "scalar")
        recorder = CDTraceRecorder(
            checker, engine=SequentialEngine(checker, telemetry=telemetry)
        )
        assert recorder.steer(FREE_A, FREE_B)
        assert telemetry.scopes == []
