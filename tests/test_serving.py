"""Multi-client planning service: determinism, bit-identity, deadlines.

The serving layer's headline claim is that concurrency is *free* of
observable effects per request: whatever the arrival interleaving, batch
window, cache state, or co-tenants, every request's path, verdicts, and
:class:`CollisionStats` are bit-identical to running that request alone
through the sequential scalar reference stack with no cache.  These tests
pin that differential, the cross-run determinism, the staleness-freedom of
the shared cache across environment updates, and the deadline policies.
"""

import numpy as np
import pytest

from repro.collision.checker import RobotEnvironmentChecker
from repro.config import CacheConfig, ReproConfig, ServiceConfig
from repro.env.generator import random_scene
from repro.env.octree import Octree
from repro.geometry.aabb import AABB
from repro.planning.prm import PRMPlanner
from repro.planning.recorder import CDTraceRecorder
from repro.planning.rrt import RRTPlanner
from repro.planning.rrt_connect import RRTConnectPlanner
from repro.robot.presets import planar_arm
from repro.serving import PlanningService, PlanRequest

pytestmark = pytest.mark.serving

_SOLO_PLANNERS = {
    "rrt": RRTPlanner,
    "rrt_connect": RRTConnectPlanner,
    "prm": PRMPlanner,
}


@pytest.fixture(scope="module")
def world():
    scene = random_scene(seed=1)
    octree = Octree.from_scene(scene, resolution=16)
    return scene, octree, planar_arm()


@pytest.fixture(scope="module")
def requests(world):
    _, octree, robot = world
    checker = RobotEnvironmentChecker.from_config(robot, octree, ReproConfig())
    rng = np.random.default_rng(7)
    qs = [checker.sample_free_configuration(rng) for _ in range(8)]
    return [
        PlanRequest("rc-0", qs[0], qs[1], planner="rrt_connect", seed=100),
        PlanRequest("rrt-1", qs[2], qs[3], planner="rrt", seed=101),
        PlanRequest("rc-2", qs[4], qs[5], planner="rrt_connect", seed=102),
        PlanRequest("prm-3", qs[6], qs[7], planner="prm", seed=103),
    ]


def _solo(robot, octree, request):
    """The reference run: sequential scalar engine, no cache, alone."""
    checker = RobotEnvironmentChecker.from_config(robot, octree, ReproConfig())
    recorder = CDTraceRecorder(checker)
    planner = _SOLO_PLANNERS[request.planner](recorder)
    result = planner.plan(
        request.q_start, request.q_goal, np.random.default_rng(request.seed)
    )
    if result is None:
        path = None
    elif hasattr(result, "success"):
        path = list(result.path) if result.success else None
    else:
        path = list(result)
    return path, checker.stats.as_dict(), recorder.num_phases


def _paths_equal(a, b):
    if a is None or b is None:
        return a is b
    return len(a) == len(b) and all(
        np.array_equal(x, y) for x, y in zip(a, b)
    )


def _fingerprint(report):
    """Per-request observable outcome (no timing): path + stats + phases."""
    out = {}
    for rid, resp in report.responses.items():
        path = None if resp.path is None else [q.tolist() for q in resp.path]
        out[rid] = (resp.success, path, resp.stats.as_dict(), resp.num_phases)
    return out


class TestDifferential:
    """Service (batched + cached) == each request alone, bit for bit."""

    @pytest.mark.parametrize("mode", ["batched", "sequential"])
    def test_service_matches_solo_reference(self, world, requests, mode):
        _, octree, robot = world
        config = ReproConfig.for_service(service=ServiceConfig(mode=mode))
        service = PlanningService(robot, octree, config=config)
        for request in requests:
            service.submit(request)
        report = service.run()
        assert len(report.responses) == len(requests)
        for request in requests:
            resp = report.responses[request.request_id]
            path, stats, phases = _solo(robot, octree, request)
            assert _paths_equal(resp.path, path), request.request_id
            assert resp.stats.as_dict() == stats, request.request_id
            assert resp.num_phases == phases, request.request_id

    def test_batched_run_actually_coalesces_and_caches(self, world, requests):
        _, octree, robot = world
        service = PlanningService(robot, octree)
        for request in requests:
            service.submit(request)
        report = service.run()
        # Fewer dispatches than phases: cross-request coalescing happened.
        assert report.dispatches < report.phases_answered
        assert report.cache_counters is not None
        assert report.cache_counters["hits"] > 0
        assert report.sim_ms > 0
        assert report.completed >= 1
        assert report.requests_per_sim_s > 0


class TestDeterminism:
    def test_submission_order_is_invisible(self, world, requests):
        _, octree, robot = world
        fingerprints = []
        for order in (requests, list(reversed(requests))):
            service = PlanningService(robot, octree)
            for request in order:
                service.submit(request)
            fingerprints.append(_fingerprint(service.run()))
        assert fingerprints[0] == fingerprints[1]

    @pytest.mark.parametrize("window", [1, 2, 8])
    def test_batch_window_is_invisible(self, world, requests, window):
        _, octree, robot = world
        service = PlanningService(
            robot,
            octree,
            config=ReproConfig.for_service(
                service=ServiceConfig(batch_window=window)
            ),
        )
        for request in requests:
            service.submit(request)
        fingerprint = _fingerprint(service.run())
        for request in requests:
            path, stats, phases = _solo(robot, octree, request)
            got_success, got_path, got_stats, got_phases = fingerprint[
                request.request_id
            ]
            assert got_stats == stats
            assert got_phases == phases

    def test_repeat_runs_identical(self, world, requests):
        _, octree, robot = world

        def run_once():
            service = PlanningService(robot, octree)
            for request in requests:
                service.submit(request)
            report = service.run()
            return _fingerprint(report), report.sim_ms, report.dispatches

        assert run_once() == run_once()


class TestCacheAcrossWaves:
    def test_warm_cache_serves_identical_results(self, world, requests):
        _, octree, robot = world
        service = PlanningService(robot, octree)
        first = requests[0]
        service.submit(first)
        service.run()
        hits_after_first = service.cache.hits
        rerun = PlanRequest(
            "again", first.q_start, first.q_goal, planner=first.planner,
            seed=first.seed,
        )
        service.submit(rerun)
        report = service.run()
        assert service.cache.hits > hits_after_first
        a = service.response(first.request_id)
        b = report.responses["again"]
        assert _paths_equal(a.path, b.path)
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_environment_update_never_serves_stale(self, world, requests):
        scene, octree, robot = world
        service = PlanningService(robot, octree)
        for request in requests[:2]:
            service.submit(request)
        service.run()

        scene2 = random_scene(seed=1)
        scene2.add_obstacle(
            AABB.from_min_max([0.1, -0.3, 0.0], [0.5, 0.3, 0.3])
        )
        octree2 = Octree.from_scene(scene2, resolution=16)
        dropped = service.update_environment(octree2)
        assert dropped >= 0
        assert service.env_epoch == 1

        for request in requests[:2]:
            renamed = PlanRequest(
                request.request_id + "-v2",
                request.q_start,
                request.q_goal,
                planner=request.planner,
                seed=request.seed,
            )
            service.submit(renamed)
        report = service.run()
        for request in requests[:2]:
            resp = report.responses[request.request_id + "-v2"]
            path, stats, phases = _solo(robot, octree2, request)
            assert _paths_equal(resp.path, path)
            assert resp.stats.as_dict() == stats
            assert resp.num_phases == phases
            assert resp.env_epoch == 1

    def test_update_requires_idle(self, world, requests):
        _, octree, robot = world
        service = PlanningService(robot, octree)
        service.submit(requests[0])
        with pytest.raises(RuntimeError, match="idle"):
            service.update_environment(octree)


class TestAdmissionAndDeadlines:
    def test_duplicate_request_id_rejected(self, world, requests):
        _, octree, robot = world
        service = PlanningService(robot, octree)
        service.submit(requests[0])
        with pytest.raises(ValueError, match="duplicate"):
            service.submit(requests[0])

    def test_unknown_planner_lists_choices(self, world, requests):
        _, octree, robot = world
        service = PlanningService(robot, octree)
        bad = PlanRequest(
            "bad", requests[0].q_start, requests[0].q_goal, planner="dijkstra"
        )
        with pytest.raises(ValueError, match="rrt_connect"):
            service.submit(bad)

    def test_batched_mode_requires_batch_backend(self, world):
        _, octree, robot = world
        with pytest.raises(ValueError, match="batch"):
            PlanningService(robot, octree, config=ReproConfig())

    def test_priority_orders_sequential_completion(self, world, requests):
        _, octree, robot = world
        service = PlanningService(
            robot,
            octree,
            config=ReproConfig.for_service(
                service=ServiceConfig(mode="sequential")
            ),
        )
        by_priority = {}
        for priority, request in zip((2, 0, 1), requests[:3]):
            renamed = PlanRequest(
                f"p{priority}",
                request.q_start,
                request.q_goal,
                planner=request.planner,
                seed=request.seed,
                priority=priority,
            )
            by_priority[priority] = renamed.request_id
            service.submit(renamed)
        report = service.run()
        completed = sorted(
            report.responses.values(), key=lambda r: r.completed_ms
        )
        assert [r.request_id for r in completed] == ["p0", "p1", "p2"]

    def test_deadline_flagged_but_not_cancelled_by_default(
        self, world, requests
    ):
        _, octree, robot = world
        service = PlanningService(robot, octree)
        tight = PlanRequest(
            "tight",
            requests[0].q_start,
            requests[0].q_goal,
            seed=requests[0].seed,
            deadline_ms=1e-6,
        )
        service.submit(tight)
        resp = service.run().responses["tight"]
        assert resp.deadline_missed
        assert not resp.cancelled
        # Flag-only policy: the result is still the bit-identical solo one.
        path, stats, _ = _solo(robot, octree, requests[0])
        assert _paths_equal(resp.path, path)
        assert resp.stats.as_dict() == stats

    def test_cancel_on_deadline_miss(self, world, requests):
        _, octree, robot = world
        service = PlanningService(
            robot,
            octree,
            config=ReproConfig.for_service(
                service=ServiceConfig(cancel_on_deadline_miss=True)
            ),
        )
        tight = PlanRequest(
            "tight",
            requests[0].q_start,
            requests[0].q_goal,
            seed=requests[0].seed,
            deadline_ms=1e-6,
        )
        service.submit(tight)
        resp = service.run().responses["tight"]
        assert resp.cancelled
        assert resp.deadline_missed
        assert not resp.success
        assert service.num_pending == 0

    def test_latency_accounting_monotone(self, world, requests):
        _, octree, robot = world
        service = PlanningService(robot, octree)
        for request in requests[:2]:
            service.submit(request)
        report = service.run()
        for resp in report.responses.values():
            assert resp.submitted_ms <= resp.admitted_ms <= resp.completed_ms
            assert resp.latency_ms >= 0
