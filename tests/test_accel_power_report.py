"""Tests for the Wattch-style runtime power report."""

import pytest

from repro.accel.config import CECDUConfig, IntersectionUnitKind, MPAccelConfig
from repro.accel.energy import HardwareBlockLibrary
from repro.accel.power_report import (
    BlockActivity,
    LEAKAGE_FRACTION,
    activity_from_sas_run,
    runtime_power_report,
)


def _config(n_cecdus=16, n_oocds=4):
    return MPAccelConfig(n_cecdus=n_cecdus, cecdu=CECDUConfig(n_oocds=n_oocds))


class TestBlockActivity:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockActivity(scheduler=1.5)
        with pytest.raises(ValueError):
            BlockActivity(intersection=-0.1)

    def test_from_sas_run_bounds(self):
        activity = activity_from_sas_run(
            _config(), window_cycles=10_000, tests=500, poses=500
        )
        for name in ("scheduler", "obb_generation", "octree_traversal", "intersection"):
            assert 0.0 <= getattr(activity, name) <= 1.0

    def test_from_sas_run_validation(self):
        with pytest.raises(ValueError):
            activity_from_sas_run(_config(), window_cycles=0, tests=1, poses=1)

    def test_busier_run_has_higher_activity(self):
        quiet = activity_from_sas_run(_config(), 100_000, tests=100, poses=100)
        busy = activity_from_sas_run(_config(), 100_000, tests=5000, poses=5000)
        assert busy.intersection > quiet.intersection
        assert busy.scheduler > quiet.scheduler


class TestPowerReport:
    def test_idle_power_is_pure_leakage(self):
        config = _config()
        report = runtime_power_report(config, BlockActivity(), window_cycles=1000)
        full = HardwareBlockLibrary.mpaccel(config).power_mw
        assert report.total_mw == pytest.approx(full * LEAKAGE_FRACTION, rel=0.01)
        for row in report.rows:
            assert row.dynamic_mw == 0.0

    def test_full_activity_recovers_synthesis_power(self):
        config = _config()
        activity = BlockActivity(
            scheduler=1.0, obb_generation=1.0, octree_traversal=1.0, intersection=1.0
        )
        report = runtime_power_report(config, activity, window_cycles=1000)
        full = HardwareBlockLibrary.mpaccel(config).power_mw
        assert report.total_mw == pytest.approx(full, rel=0.01)

    def test_power_monotone_in_activity(self):
        config = _config()
        low = runtime_power_report(config, BlockActivity(intersection=0.1), 1000)
        high = runtime_power_report(config, BlockActivity(intersection=0.9), 1000)
        assert high.total_mw > low.total_mw

    def test_energy_scales_with_window(self):
        config = _config()
        activity = BlockActivity(intersection=0.5)
        short = runtime_power_report(config, activity, window_cycles=1000)
        long = runtime_power_report(config, activity, window_cycles=2000)
        assert long.energy_pj == pytest.approx(2 * short.energy_pj)

    def test_block_counts(self):
        report = runtime_power_report(
            _config(n_cecdus=8, n_oocds=4), BlockActivity(), 1000
        )
        counts = {row.block: row.count for row in report.rows}
        assert counts["Scheduler"] == 1
        assert counts["OBB Generation Units"] == 8
        assert counts["Intersection Units"] == 32

    def test_pipelined_units_cost_more(self):
        mc = runtime_power_report(_config(), BlockActivity(intersection=1.0), 1000)
        p_config = MPAccelConfig(
            n_cecdus=16,
            cecdu=CECDUConfig(n_oocds=4, iu_kind=IntersectionUnitKind.PIPELINED),
        )
        p = runtime_power_report(p_config, BlockActivity(intersection=1.0), 1000)
        assert p.total_mw > mc.total_mw

    def test_as_rows_shape(self):
        report = runtime_power_report(_config(), BlockActivity(), 1000)
        rows = report.as_rows()
        assert len(rows) == 4
        assert all("total_mw" in row for row in rows)
