"""Octree-versioned collision cache: bit-identity and invalidation safety.

The cache's contract is *invisibility*: with the cache attached, every
verdict and every :class:`CollisionStats` tally is bit-identical to the
same query sequence with the cache off — on cold lookups (miss -> fresh
evaluation, delta stored) and on warm ones (hit -> stored delta replayed).
Environment updates must never let a stale verdict survive: entries whose
robot footprint overlaps a changed octree region are dropped, and the
differential against a fresh checker on the new octree pins it.
"""

import numpy as np
import pytest

from repro.accel.telemetry import MetricsRegistry
from repro.collision.cache import DEFAULT_QUANTUM, CollisionCache
from repro.collision.checker import RobotEnvironmentChecker
from repro.config import CacheConfig, ReproConfig
from repro.env.generator import random_scene
from repro.env.octree import Octree
from repro.geometry.aabb import AABB
from repro.robot.presets import planar_arm


@pytest.fixture(scope="module")
def world():
    scene = random_scene(seed=11)
    octree = Octree.from_scene(scene, resolution=16)
    return scene, octree, planar_arm()


def _checker(robot, octree, backend, cached, **cache_kwargs):
    config = ReproConfig(
        backend=backend,
        cache=CacheConfig(enabled=cached, **cache_kwargs),
    )
    return RobotEnvironmentChecker.from_config(robot, octree, config)


def _drive(checker, robot, seed=5, n=12):
    """A fixed op mix (poses, batches, motions) with repeated queries."""
    rng = np.random.default_rng(seed)
    poses = [robot.random_configuration(rng) for _ in range(n)]
    verdicts = []
    for q in poses:
        verdicts.append(bool(checker.check_pose(q)))
    # Re-check everything (cache-warm on the second lap).
    for q in poses:
        verdicts.append(bool(checker.check_pose(q)))
    verdicts.extend(bool(v) for v in checker.check_poses(np.stack(poses)))
    for a, b in zip(poses[:-1:2], poses[1::2]):
        res = checker.check_motion(a, b)
        verdicts.append(
            (res.collision, res.first_colliding_index, res.poses_checked, res.total_poses)
        )
    return verdicts


class TestCacheBitIdentity:
    @pytest.mark.parametrize("backend", ["scalar", "batch"])
    def test_cache_on_equals_cache_off(self, world, backend):
        _, octree, robot = world
        plain = _checker(robot, octree, backend, cached=False)
        cached = _checker(robot, octree, backend, cached=True)
        assert _drive(plain, robot) == _drive(cached, robot)
        assert plain.stats.as_dict() == cached.stats.as_dict()
        assert cached.cache.hits > 0  # the warm lap actually hit

    def test_scalar_and_batch_cached_agree(self, world):
        _, octree, robot = world
        scalar = _checker(robot, octree, "scalar", cached=True)
        batch = _checker(robot, octree, "batch", cached=True)
        assert _drive(scalar, robot) == _drive(batch, robot)
        assert scalar.stats.as_dict() == batch.stats.as_dict()

    def test_counters_and_telemetry_mirror(self, world):
        _, octree, robot = world
        telemetry = MetricsRegistry()
        cache = CollisionCache(quantum=DEFAULT_QUANTUM, telemetry=telemetry)
        config = ReproConfig(backend="batch")
        checker = RobotEnvironmentChecker.from_config(
            robot, octree, config, cache=cache
        )
        _drive(checker, robot)
        counters = cache.counters()
        assert counters["hits"] == cache.hits > 0
        assert counters["misses"] == cache.misses > 0
        assert telemetry.counter_value("cache.hits") == cache.hits
        assert telemetry.counter_value("cache.misses") == cache.misses
        assert 0.0 < cache.hit_rate() < 1.0


class TestInvalidation:
    def test_update_never_serves_stale(self, world):
        scene, octree, robot = world
        cached = _checker(robot, octree, "batch", cached=True)
        _drive(cached, robot)  # populate the cache on the old octree

        # Drop a new obstacle right through the arm's workspace.
        scene2 = random_scene(seed=11)
        scene2.add_obstacle(
            AABB.from_min_max([0.1, -0.3, 0.0], [0.5, 0.3, 0.3])
        )
        octree2 = Octree.from_scene(scene2, resolution=16)
        dropped = cached.update_octree(octree2)
        assert dropped >= 0

        fresh = _checker(robot, octree2, "batch", cached=False)
        cached.stats.reset()
        assert _drive(cached, robot) == _drive(fresh, robot)
        assert cached.stats.as_dict() == fresh.stats.as_dict()

    def test_far_update_preserves_entries(self, world):
        scene, octree, robot = world
        cached = _checker(robot, octree, "batch", cached=True)
        rng = np.random.default_rng(3)
        poses = [robot.random_configuration(rng) for _ in range(8)]
        for q in poses:
            cached.check_pose(q)
        populated = len(cached.cache)

        # An obstacle high above the planar arm's z=0 plane: no cached
        # footprint overlaps it, so every verdict survives the epoch bump.
        scene2 = random_scene(seed=11)
        scene2.add_obstacle(
            AABB.from_min_max([0.4, 0.4, 0.5], [0.7, 0.7, 0.8])
        )
        octree2 = Octree.from_scene(scene2, resolution=16)
        dropped = cached.update_octree(octree2)
        assert dropped == 0
        assert len(cached.cache) == populated

        hits_before = cached.cache.hits
        for q in poses:
            cached.check_pose(q)
        assert cached.cache.hits == hits_before + len(poses)

    def test_identical_octree_keeps_everything(self, world):
        scene, octree, robot = world
        cached = _checker(robot, octree, "batch", cached=True)
        rng = np.random.default_rng(4)
        for _ in range(5):
            cached.check_pose(robot.random_configuration(rng))
        octree_same = Octree.from_scene(scene, resolution=16)
        populated = len(cached.cache)
        assert cached.update_octree(octree_same) == 0
        # Entries were re-stamped to the new epoch, not dropped.
        assert cached.cache.epoch_advances == 1
        assert len(cached.cache) == populated
        assert cached.cache.invalidated == 0


class TestCacheMechanics:
    def test_quantization_shares_verdicts(self, world):
        _, octree, robot = world
        coarse = _checker(robot, octree, "scalar", cached=True, quantum=0.5)
        q = np.zeros(robot.dof)
        first = coarse.check_pose(q)
        second = coarse.check_pose(q + 0.2)  # rounds to the same key
        assert first == second
        assert coarse.cache.hits == 1 and coarse.cache.misses == 1

    def test_fifo_eviction(self):
        cache = CollisionCache(quantum=1e-9, max_entries=2)
        cache.attach(False, None)
        qs = [np.array([float(i)]) for i in range(3)]
        for q in qs:
            assert cache.lookup(q) is None
            cache.store(q, False, None)
        assert len(cache) == 2
        assert cache.lookup(qs[0]) is None  # evicted first-in
        assert cache.lookup(qs[2]) is not None

    def test_overwrite_does_not_evict(self):
        """Re-storing an existing key is not an insert: at capacity, an
        overwrite must not drop the FIFO-oldest live entry (the old bug
        shrank effective capacity by one per overwrite)."""
        cache = CollisionCache(quantum=1e-9, max_entries=2)
        cache.attach(False, None)
        qs = [np.array([float(i)]) for i in range(2)]
        for q in qs:
            cache.store(q, False, None)
        assert len(cache) == 2
        for _ in range(5):  # repeated same-key stores at capacity
            cache.store(qs[1], True, None)
        assert len(cache) == 2
        assert cache.lookup(qs[0]) is not None  # survived every overwrite
        assert cache.lookup(qs[1]).verdict is True

    def test_overwrite_keeps_fifo_order(self):
        """An overwrite keeps the key's original insertion slot, so the
        next genuine insert at capacity still evicts the true oldest."""
        cache = CollisionCache(quantum=1e-9, max_entries=2)
        cache.attach(False, None)
        q0, q1, q2 = (np.array([float(i)]) for i in range(3))
        cache.store(q0, False, None)
        cache.store(q1, False, None)
        cache.store(q0, True, None)  # overwrite: q0 stays the oldest
        cache.store(q2, False, None)  # genuine insert evicts q0
        assert cache.lookup(q0) is None
        assert cache.lookup(q1) is not None
        assert cache.lookup(q2) is not None

    def test_attach_mode_mismatch_rejected(self):
        cache = CollisionCache(quantum=1e-9)
        cache.attach(True, None)
        cache.attach(True, None)  # idempotent re-attach is fine
        with pytest.raises(ValueError):
            cache.attach(False, None)

    def test_advance_epoch_clears(self):
        cache = CollisionCache(quantum=1e-9)
        cache.attach(False, None)
        cache.store(np.array([1.0]), True, None)
        cache.advance_epoch()
        assert len(cache) == 0
        assert cache.lookup(np.array([1.0])) is None


class TestRuntimeCacheEquivalence:
    def test_realtime_loop_unchanged_by_cache(self):
        """The closed loop with a persistent cache is bit-identical."""
        from repro.accel.cecdu import CECDUConfig
        from repro.accel.config import MPAccelConfig
        from repro.accel.runtime import RobotRuntime
        from repro.env.scene import Scene

        def scene():
            s = Scene(extent=4.0)
            s.add_obstacle(AABB.from_min_max([0.7, -0.4, 0.0], [0.9, 0.4, 0.2]))
            return s

        def update(s, tick, rng_):
            if tick == 2:
                s.add_obstacle(
                    AABB.from_min_max([-0.9, -0.2, 0.0], [-0.7, 0.2, 0.2])
                )
                return True
            return False

        def run(cache_enabled):
            runtime = RobotRuntime(
                robot=planar_arm(2),
                scene=scene(),
                config=MPAccelConfig(n_cecdus=8, cecdu=CECDUConfig(n_oocds=4)),
                scene_update=update,
                repro=ReproConfig(
                    backend="batch",
                    octree_resolution=32,
                    cache=CacheConfig(enabled=cache_enabled),
                ),
            )
            report = runtime.run(
                np.array([np.pi * 0.9, 0.0]),
                np.array([-np.pi * 0.9, 0.0]),
                n_ticks=3,
                rng=np.random.default_rng(0),
            )
            return runtime, report

        runtime_off, off = run(False)
        runtime_on, on = run(True)
        assert [t.phases for t in off.ticks] == [t.phases for t in on.ticks]
        assert [t.poses_checked for t in off.ticks] == [
            t.poses_checked for t in on.ticks
        ]
        assert len(off.final_path) == len(on.final_path)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(off.final_path, on.final_path)
        )
        assert runtime_off._cache is None
        assert runtime_on._cache is not None
