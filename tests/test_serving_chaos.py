"""Chaos serving: the planning service under injected engine faults.

The serving leg of the chaos contract: with seeded fault models
configured through ``ServiceConfig(fault_models=..., fault_seed=...)``
raising transient engine faults under live multi-request traffic, the service (a) never emits a
path that was not validated by a successfully answered phase — a request
whose retries are exhausted fails with ``status="failed"`` and no path;
(b) remains deterministic per request — two runs with the same seeds
produce bit-identical responses, statuses, and clocks; and (c) any path it
does emit revalidates cleanly against a fault-free checker.
"""

import numpy as np
import pytest

from repro.collision.checker import RobotEnvironmentChecker
from repro.config import ReproConfig, ServiceConfig
from repro.env.generator import random_scene
from repro.env.octree import Octree
from repro.resilience.faults import FaultModels
from repro.robot.presets import planar_arm
from repro.serving import PlanningService, PlanRequest

pytestmark = [pytest.mark.chaos, pytest.mark.serving]


@pytest.fixture(scope="module")
def world():
    scene = random_scene(seed=1)
    octree = Octree.from_scene(scene, resolution=16)
    return scene, octree, planar_arm()


@pytest.fixture(scope="module")
def requests(world):
    _, octree, robot = world
    checker = RobotEnvironmentChecker.from_config(robot, octree, ReproConfig())
    rng = np.random.default_rng(7)
    qs = [checker.sample_free_configuration(rng) for _ in range(8)]
    return [
        PlanRequest(f"chaos-{i}", qs[2 * i], qs[2 * i + 1], seed=200 + i)
        for i in range(4)
    ]


def _chaos_drain(world, requests, rate, max_fault_retries=2):
    _, octree, robot = world
    config = ReproConfig(
        service=ServiceConfig(
            mode="sequential",
            max_fault_retries=max_fault_retries,
            fault_models=FaultModels(
                engine_exception_rate=rate / 2, engine_timeout_rate=rate / 2
            ),
            fault_seed=99,
        )
    )
    service = PlanningService(robot, octree, config=config)
    for request in requests:
        service.submit(request)
    return service.run(), service.fault_injector


class TestChaosServing:
    def test_deterministic_under_faults(self, world, requests):
        def fingerprint():
            report, injector = _chaos_drain(world, requests, rate=0.05)
            return (
                {
                    rid: (
                        r.status,
                        r.success,
                        None
                        if r.path is None
                        else [q.tolist() for q in r.path],
                        r.stats.as_dict(),
                    )
                    for rid, r in report.responses.items()
                },
                report.sim_ms,
                [event.kind for event in injector.events],
            )

        first, second = fingerprint(), fingerprint()
        assert first == second
        assert first[2], "the fault schedule should have fired"

    def test_exhausted_retries_fail_without_a_path(self, world, requests):
        # Every phase faults: retries always exhaust, every request fails,
        # and no path is ever emitted from an unvalidated phase.
        report, injector = _chaos_drain(
            world, requests, rate=2.0, max_fault_retries=1
        )
        assert len(report.responses) == len(requests)
        for response in report.responses.values():
            assert response.status == "failed"
            assert response.path is None
            assert not response.success
            assert response.latency_ms >= 0.0
        assert report.status_counts == {"failed": len(requests)}
        assert any(
            event.kind in ("engine_exception", "engine_timeout")
            for event in injector.events
        )

    def test_surviving_paths_revalidate_cleanly(self, world, requests):
        # Moderate fault rate: some requests complete; every emitted path
        # must be collision-free under a fresh fault-free checker.
        _, octree, robot = world
        report, _ = _chaos_drain(world, requests, rate=0.02)
        clean = RobotEnvironmentChecker.from_config(
            robot, octree, ReproConfig()
        )
        validated = 0
        for response in report.responses.values():
            if response.path is None:
                continue
            assert response.status == "completed"
            for q_start, q_end in zip(response.path, response.path[1:]):
                assert not clean.check_motion(q_start, q_end).collision
            validated += 1
        assert validated > 0, "expected at least one survivor at this rate"
