"""Tests for rigid transforms and rotation constructors."""

import math

import numpy as np
import pytest

from repro.geometry.transform import (
    RigidTransform,
    rotation_x,
    rotation_y,
    rotation_z,
)


class TestRotations:
    @pytest.mark.parametrize("factory", [rotation_x, rotation_y, rotation_z])
    @pytest.mark.parametrize("angle", [0.0, 0.3, -1.2, math.pi, 2 * math.pi])
    def test_rotation_is_orthonormal(self, factory, angle):
        rot = factory(angle)
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)
        assert np.isclose(np.linalg.det(rot), 1.0)

    def test_rotation_z_quarter_turn_maps_x_to_y(self):
        rot = rotation_z(math.pi / 2)
        assert np.allclose(rot @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_rotation_x_quarter_turn_maps_y_to_z(self):
        rot = rotation_x(math.pi / 2)
        assert np.allclose(rot @ [0, 1, 0], [0, 0, 1], atol=1e-12)

    def test_rotation_y_quarter_turn_maps_z_to_x(self):
        rot = rotation_y(math.pi / 2)
        assert np.allclose(rot @ [0, 0, 1], [1, 0, 0], atol=1e-12)

    def test_zero_angle_is_identity(self):
        for factory in (rotation_x, rotation_y, rotation_z):
            assert np.allclose(factory(0.0), np.eye(3))


class TestRigidTransform:
    def test_identity_fixes_points(self):
        t = RigidTransform.identity()
        point = np.array([1.0, -2.0, 3.0])
        assert np.allclose(t.apply(point), point)

    def test_requires_4x4(self):
        with pytest.raises(ValueError):
            RigidTransform(np.eye(3))

    def test_from_parts_shape_validation(self):
        with pytest.raises(ValueError):
            RigidTransform.from_parts(np.eye(2), [0, 0, 0])
        with pytest.raises(ValueError):
            RigidTransform.from_parts(np.eye(3), [0, 0])

    def test_translation_only(self):
        t = RigidTransform.from_translation([1.0, 2.0, 3.0])
        assert np.allclose(t.apply([0, 0, 0]), [1, 2, 3])
        assert np.allclose(t.apply_direction([1, 0, 0]), [1, 0, 0])

    def test_compose_applies_right_transform_first(self):
        rotate = RigidTransform.from_parts(rotation_z(math.pi / 2), [0, 0, 0])
        shift = RigidTransform.from_translation([1.0, 0.0, 0.0])
        # rotate after shift: (1,0,0) -> (2,0,0) -> (0,2,0)
        combined = rotate @ shift
        assert np.allclose(combined.apply([1, 0, 0]), [0, 2, 0], atol=1e-12)

    def test_inverse_roundtrip(self, rng):
        rot = rotation_x(0.7) @ rotation_z(-1.1)
        t = RigidTransform.from_parts(rot, [0.5, -0.3, 2.0])
        points = rng.normal(size=(10, 3))
        assert np.allclose(t.inverse().apply(t.apply(points)), points, atol=1e-10)

    def test_inverse_is_rigid(self):
        t = RigidTransform.from_parts(rotation_y(0.4), [1, 2, 3])
        assert t.inverse().is_rigid()

    def test_apply_batch(self, rng):
        t = RigidTransform.from_parts(rotation_z(0.3), [1, 0, 0])
        points = rng.normal(size=(5, 3))
        batch = t.apply(points)
        for i in range(5):
            assert np.allclose(batch[i], t.apply(points[i]))

    def test_is_rigid_rejects_scaling(self):
        matrix = np.eye(4)
        matrix[0, 0] = 2.0
        assert not RigidTransform(matrix).is_rigid()

    def test_rotation_translation_accessors(self):
        rot = rotation_z(0.2)
        t = RigidTransform.from_parts(rot, [4, 5, 6])
        assert np.allclose(t.rotation, rot)
        assert np.allclose(t.translation, [4, 5, 6])
