"""Typed configuration API: validation, round-trip, shims, and the facade.

Two contracts are pinned here.  First, the config objects themselves:
construction validates every field with error messages listing the valid
choices, and any config round-trips through dicts and JSON losslessly
(unknown keys and bad enums in a loaded file fail loudly).  Second, the
migration: the legacy string-kwarg constructors keep producing bit-identical
behavior while emitting a :class:`DeprecationWarning`, and the new typed
path (``from_config`` / ``repro.api``) never touches a shim — the facade
tests run under ``error::DeprecationWarning``.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro import api
from repro.collision.checker import RobotEnvironmentChecker
from repro.config import (
    CacheConfig,
    EngineConfig,
    FleetConfig,
    ReproConfig,
    ResilienceConfig,
    ServiceConfig,
)
from repro.env.generator import random_scene
from repro.env.octree import Octree
from repro.harness.serialization import load_config, save_config
from repro.planning.engine import BatchedEngine, SequentialEngine, make_engine
from repro.planning.recorder import CDTraceRecorder
from repro.planning.rrt_connect import RRTConnectPlanner
from repro.robot.presets import planar_arm


@pytest.fixture(scope="module")
def world():
    scene = random_scene(seed=7)
    octree = Octree.from_scene(scene, resolution=16)
    return scene, octree, planar_arm()


class TestValidation:
    def test_bad_backend_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            ReproConfig(backend="vectorised")
        message = str(excinfo.value)
        assert "vectorised" in message and "scalar" in message and "batch" in message

    def test_bad_planner_lists_choices(self):
        with pytest.raises(ValueError, match="rrt_connect"):
            ReproConfig(planner="a_star")

    def test_bad_engine_kind_lists_choices(self):
        with pytest.raises(ValueError, match="sequential"):
            EngineConfig(kind="sas")

    def test_batch_engine_requires_batch_backend(self):
        with pytest.raises(ValueError, match="backend 'batch'"):
            ReproConfig(engine=EngineConfig(kind="batch"))

    def test_bad_service_mode(self):
        with pytest.raises(ValueError, match="batched"):
            ServiceConfig(mode="threads")

    def test_positive_fields(self):
        with pytest.raises(ValueError, match="quantum"):
            CacheConfig(quantum=0.0)
        with pytest.raises(ValueError, match="motion_step"):
            ReproConfig(motion_step=-1.0)
        with pytest.raises(ValueError, match="sim_ms"):
            ResilienceConfig(sim_ms=0.0)

    def test_configs_are_frozen(self):
        config = ReproConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.backend = "batch"

    def test_for_service_defaults(self):
        config = ReproConfig.for_service()
        assert config.backend == "batch"
        assert config.cache.enabled
        override = ReproConfig.for_service(planner="rrt")
        assert override.planner == "rrt" and override.backend == "batch"

    def test_fleet_config_validates_fields(self):
        with pytest.raises(ValueError, match="n_shards"):
            FleetConfig(n_shards=0)
        with pytest.raises(ValueError, match="round_robin"):
            FleetConfig(router="sticky")
        with pytest.raises(ValueError, match="inline"):
            FleetConfig(workers="threads")
        with pytest.raises(ValueError, match="region_quantum"):
            FleetConfig(region_quantum=0.0)

    def test_for_fleet_defaults(self):
        config = ReproConfig.for_fleet(4)
        assert config.fleet.n_shards == 4
        assert config.backend == "batch" and config.cache.enabled
        override = ReproConfig.for_fleet(
            2, fleet=FleetConfig(n_shards=2, workers="process")
        )
        assert override.fleet.workers == "process"


class TestRoundTrip:
    def _sample(self):
        return ReproConfig(
            backend="batch",
            planner="prm",
            motion_step=0.1,
            engine=EngineConfig(kind="simulated", n_cdus=4, seed=9),
            resilience=ResilienceConfig(sim_ms=2.0, audit=True),
            cache=CacheConfig(enabled=True, quantum=1e-6, max_entries=128),
            service=ServiceConfig(batch_window=4, default_deadline_ms=5.0),
            fleet=FleetConfig(
                n_shards=4,
                router="region",
                router_seed=3,
                workers="process",
                region_quantum=0.5,
                global_cache=False,
            ),
        )

    def test_dict_round_trip(self):
        config = self._sample()
        rebuilt = ReproConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert isinstance(rebuilt.engine, EngineConfig)
        assert isinstance(rebuilt.cache, CacheConfig)
        assert isinstance(rebuilt.fleet, FleetConfig)
        assert rebuilt.fleet == config.fleet

    def test_json_round_trip(self, tmp_path):
        config = self._sample()
        path = str(tmp_path / "config.json")
        save_config(path, config)
        assert load_config(path) == config
        # Sub-configs round-trip through the same entry points.
        save_config(path, config.engine)
        assert load_config(path) == config.engine

    def test_unknown_key_rejected_by_name(self):
        with pytest.raises(ValueError) as excinfo:
            ReproConfig.from_dict({"backend": "batch", "bogus_knob": 1})
        message = str(excinfo.value)
        assert "bogus_knob" in message and "octree_resolution" in message

    def test_loaded_bad_enum_lists_choices(self, tmp_path):
        path = str(tmp_path / "config.json")
        save_config(path, ReproConfig())
        payload = json.load(open(path))
        payload["config"]["backend"] = "vectorised"
        json.dump(payload, open(path, "w"))
        with pytest.raises(ValueError, match="scalar"):
            load_config(path)

    def test_wrong_version_and_class_rejected(self, tmp_path):
        path = str(tmp_path / "config.json")
        save_config(path, ReproConfig())
        payload = json.load(open(path))
        payload["config_class"] = "TurboConfig"
        json.dump(payload, open(path, "w"))
        with pytest.raises(ValueError, match="TurboConfig"):
            load_config(path)
        payload["config_class"] = "ReproConfig"
        payload["version"] = 99
        json.dump(payload, open(path, "w"))
        with pytest.raises(ValueError, match="version"):
            load_config(path)

    def test_save_rejects_non_config(self, tmp_path):
        with pytest.raises(TypeError):
            save_config(str(tmp_path / "x.json"), {"backend": "batch"})


class TestLegacyShims:
    """Old string kwargs keep working bit-identically, but warn."""

    def test_checker_backend_kwarg_warns(self, world):
        _, octree, robot = world
        with pytest.warns(DeprecationWarning, match="backend"):
            RobotEnvironmentChecker(robot, octree, backend="batch")

    def test_checker_old_equals_new(self, world):
        _, octree, robot = world
        with pytest.warns(DeprecationWarning):
            legacy = RobotEnvironmentChecker(robot, octree, backend="batch")
        typed = RobotEnvironmentChecker.from_config(
            robot, octree, ReproConfig(backend="batch")
        )
        rng = np.random.default_rng(2)
        poses = [robot.random_configuration(rng) for _ in range(10)]
        assert [legacy.check_pose(q) for q in poses] == [
            typed.check_pose(q) for q in poses
        ]
        assert legacy.stats.as_dict() == typed.stats.as_dict()

    def test_make_engine_string_warns_and_matches(self, world):
        _, octree, robot = world

        def run(engine_of):
            checker = RobotEnvironmentChecker.from_config(
                robot, octree, ReproConfig(backend="batch")
            )
            recorder = CDTraceRecorder(checker, engine=engine_of(checker))
            rng = np.random.default_rng(0)
            q_start = checker.sample_free_configuration(rng)
            q_goal = checker.sample_free_configuration(rng)
            path = RRTConnectPlanner(recorder).plan(q_start, q_goal, rng)
            return path, checker.stats.as_dict()

        with pytest.warns(DeprecationWarning, match="make_engine"):
            legacy_path, legacy_stats = run(
                lambda checker: make_engine("batch", checker)
            )
        typed_path, typed_stats = run(
            lambda checker: make_engine(EngineConfig(kind="batch"), checker)
        )
        assert legacy_stats == typed_stats
        assert len(legacy_path) == len(typed_path)
        assert all(
            np.array_equal(a, b) for a, b in zip(legacy_path, typed_path)
        )

    def test_engine_config_parameterizes_simulated(self, world):
        _, octree, robot = world
        checker = RobotEnvironmentChecker.from_config(
            robot, octree, ReproConfig()
        )
        engine = make_engine(
            EngineConfig(kind="simulated", n_cdus=4, seed=3), checker
        )
        assert engine.name == "simulated"
        assert engine.simulator.n_cdus == 4

    def test_typed_engine_kinds(self, world):
        _, octree, robot = world
        checker = RobotEnvironmentChecker.from_config(
            robot, octree, ReproConfig(backend="batch")
        )
        assert isinstance(
            make_engine(EngineConfig(kind="sequential"), checker),
            SequentialEngine,
        )
        assert isinstance(
            make_engine(EngineConfig(kind="batch"), checker), BatchedEngine
        )

    def test_runtime_legacy_kwargs_warn_and_match(self):
        from repro.accel.cecdu import CECDUConfig
        from repro.accel.config import MPAccelConfig
        from repro.accel.runtime import RobotRuntime
        from repro.env.scene import Scene
        from repro.geometry.aabb import AABB

        def scene():
            s = Scene(extent=4.0)
            s.add_obstacle(
                AABB.from_min_max([0.7, -0.4, 0.0], [0.9, 0.4, 0.2])
            )
            return s

        def run(**kwargs):
            runtime = RobotRuntime(
                robot=planar_arm(2),
                scene=scene(),
                config=MPAccelConfig(n_cecdus=8, cecdu=CECDUConfig(n_oocds=4)),
                scene_update=lambda s, tick, r: False,
                **kwargs,
            )
            report = runtime.run(
                np.array([np.pi * 0.9, 0.0]),
                np.array([-np.pi * 0.9, 0.0]),
                n_ticks=1,
                rng=np.random.default_rng(0),
            )
            return [
                (t.phases, t.poses_checked, t.planning_ms) for t in report.ticks
            ], report.final_path

        with pytest.warns(DeprecationWarning, match="RobotRuntime"):
            legacy_ticks, legacy_path = run(
                octree_resolution=32, backend="batch", engine="batch"
            )
        typed_ticks, typed_path = run(
            repro=ReproConfig(
                backend="batch",
                octree_resolution=32,
                engine=EngineConfig(kind="batch"),
            )
        )
        assert legacy_ticks == typed_ticks
        assert all(
            np.array_equal(a, b) for a, b in zip(legacy_path, typed_path)
        )

    def test_runtime_rejects_config_plus_legacy_kwargs(self):
        from repro.accel.cecdu import CECDUConfig
        from repro.accel.config import MPAccelConfig
        from repro.accel.runtime import RobotRuntime
        from repro.env.scene import Scene

        with pytest.raises(ValueError, match="legacy kwarg"):
            RobotRuntime(
                robot=planar_arm(2),
                scene=Scene(extent=4.0),
                config=MPAccelConfig(n_cecdus=8, cecdu=CECDUConfig(n_oocds=4)),
                scene_update=lambda s, tick, r: False,
                backend="batch",
                repro=ReproConfig(backend="batch"),
            )

    def _chaos_run(self, world, fault_injector=None, fault_models=None):
        from repro.collision.checker import RobotEnvironmentChecker
        from repro.serving import PlanningService, PlanRequest

        _, octree, robot = world
        config = ReproConfig.for_service(
            service=ServiceConfig(
                mode="sequential",
                max_fault_retries=4,
                fault_models=fault_models,
                fault_seed=99,
            )
        )
        service = PlanningService(
            robot, octree, config=config, fault_injector=fault_injector
        )
        checker = RobotEnvironmentChecker.from_config(
            robot, octree, ReproConfig()
        )
        rng = np.random.default_rng(11)
        poses = [checker.sample_free_configuration(rng) for _ in range(4)]
        service.submit(
            PlanRequest("a", poses[0], poses[1], planner="rrt_connect", seed=5)
        )
        service.submit(
            PlanRequest("b", poses[2], poses[3], planner="rrt", seed=6)
        )
        report = service.run()
        return {
            rid: (
                resp.success,
                None
                if resp.path is None
                else [q.tolist() for q in resp.path],
                resp.stats.as_dict(),
                resp.status,
            )
            for rid, resp in report.responses.items()
        }, service.fault_injector.events

    def test_service_fault_injector_kwarg_warns_and_matches(self, world):
        """The deprecated fault_injector= shim is pinned bit-identical to
        the typed ServiceConfig.fault_models path."""
        from repro.resilience.faults import FaultInjector, FaultModels

        models = FaultModels(
            engine_exception_rate=0.05, engine_timeout_rate=0.05
        )
        with pytest.warns(DeprecationWarning, match="fault_models"):
            legacy, legacy_events = self._chaos_run(
                world, fault_injector=FaultInjector(models=models, seed=99)
            )
        typed, typed_events = self._chaos_run(world, fault_models=models)
        assert legacy == typed
        assert legacy_events == typed_events

    def test_service_rejects_config_plus_fault_kwarg(self, world):
        from repro.resilience.faults import FaultInjector, FaultModels
        from repro.serving import PlanningService

        _, octree, robot = world
        models = FaultModels(engine_exception_rate=0.1)
        config = ReproConfig.for_service(
            service=ServiceConfig(fault_models=models, fault_seed=99)
        )
        with pytest.raises(ValueError, match="fault_injector"):
            PlanningService(
                robot,
                octree,
                config=config,
                fault_injector=FaultInjector(models=models, seed=99),
            )


@pytest.mark.filterwarnings("error::DeprecationWarning")
class TestFacade:
    """The new API end to end, with DeprecationWarnings escalated to errors:
    any internal use of a legacy shim fails these tests."""

    def test_plan_deterministic(self, world):
        _, octree, robot = world
        checker = api.make_checker(robot, octree)
        rng = np.random.default_rng(1)
        q_start = checker.sample_free_configuration(rng)
        q_goal = checker.sample_free_configuration(rng)
        first = api.plan(robot, octree, q_start, q_goal, seed=4)
        second = api.plan(robot, octree, q_start, q_goal, seed=4)
        assert first.success and second.success
        assert first.stats.as_dict() == second.stats.as_dict()
        assert first.num_phases == second.num_phases
        assert all(
            np.array_equal(a, b) for a, b in zip(first.path, second.path)
        )

    def test_plan_batch_engine_matches_sequential(self, world):
        _, octree, robot = world
        checker = api.make_checker(robot, octree)
        rng = np.random.default_rng(1)
        q_start = checker.sample_free_configuration(rng)
        q_goal = checker.sample_free_configuration(rng)
        reference = api.plan(robot, octree, q_start, q_goal, seed=4)
        batched = api.plan(
            robot,
            octree,
            q_start,
            q_goal,
            ReproConfig(backend="batch", engine=EngineConfig(kind="batch")),
            seed=4,
        )
        assert batched.success
        assert all(
            np.array_equal(a, b)
            for a, b in zip(reference.path, batched.path)
        )

    def test_make_recorder_and_planner(self, world):
        _, octree, robot = world
        recorder = api.make_recorder(robot, octree, ReproConfig(planner="prm"))
        planner = api.make_planner(recorder, "prm")
        assert type(planner).__name__ == "PRMPlanner"
        with pytest.raises(ValueError, match="mpnet"):
            api.make_planner(recorder, "mpnet")
        with pytest.raises(ValueError, match="rrt_connect"):
            api.make_planner(recorder, "dijkstra")

    def test_make_service_default_config(self, world):
        _, octree, robot = world
        service = api.make_service(robot, octree)
        assert service.config.backend == "batch"
        assert service.cache is not None

    def test_make_service_rejects_multi_shard_config(self, world):
        _, octree, robot = world
        with pytest.raises(ValueError, match="make_fleet"):
            api.make_service(robot, octree, ReproConfig.for_fleet(3))

    def test_make_fleet_default_config(self, world):
        _, octree, robot = world
        fleet = api.make_fleet(
            robot, octree, ReproConfig.for_fleet(2)
        )
        assert fleet.n_shards == 2
        assert all(s.config.backend == "batch" for s in fleet.shards)
        assert fleet.global_cache is not None

    def test_make_runtime_typed_only(self):
        from repro.accel.cecdu import CECDUConfig
        from repro.accel.config import MPAccelConfig
        from repro.env.scene import Scene
        from repro.geometry.aabb import AABB

        scene = Scene(extent=4.0)
        scene.add_obstacle(AABB.from_min_max([0.7, -0.4, 0.0], [0.9, 0.4, 0.2]))
        runtime = api.make_runtime(
            planar_arm(2),
            scene,
            MPAccelConfig(n_cecdus=8, cecdu=CECDUConfig(n_oocds=4)),
            lambda s, tick, r: False,
            ReproConfig(backend="batch", octree_resolution=32),
        )
        report = runtime.run(
            np.array([np.pi * 0.9, 0.0]),
            np.array([-np.pi * 0.9, 0.0]),
            n_ticks=1,
            rng=np.random.default_rng(0),
        )
        assert report.ticks
