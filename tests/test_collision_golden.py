"""Golden-trace regression: frozen cascade outcomes for canonical scenes.

Three canonical scenes from :mod:`repro.env.generator` were evaluated once
and their per-pose verdicts plus full operation counts checked into
``tests/fixtures/collision_golden.json``.  Both the scalar and the batch
backend must keep reproducing those traces exactly: a diff here means the
collision semantics (or the operation accounting the energy model prices)
changed, which invalidates every published figure downstream.

Regenerate deliberately (after an intentional semantic change) with::

    PYTHONPATH=src python tests/test_collision_golden.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.collision.checker import RobotEnvironmentChecker
from repro.env.generator import random_scene
from repro.env.octree import Octree
from repro.robot.presets import jaco2

FIXTURE = Path(__file__).parent / "fixtures" / "collision_golden.json"

#: (scene seed, pose-rng seed) per canonical scene.
SCENES = ((1, 101), (2, 202), (3, 303))
RESOLUTION = 16
N_POSES = 24


def _scene_trace(scene_seed: int, pose_seed: int, backend: str) -> dict:
    """Verdicts + stats for one canonical scene through one backend."""
    robot = jaco2()
    octree = Octree.from_scene(random_scene(seed=scene_seed), resolution=RESOLUTION)
    checker = RobotEnvironmentChecker(robot, octree, backend=backend)
    poses = np.random.default_rng(pose_seed).uniform(
        -np.pi, np.pi, (N_POSES, robot.dof)
    )
    verdicts = [bool(v) for v in checker.check_poses(poses)]
    return {
        "scene_seed": scene_seed,
        "pose_seed": pose_seed,
        "resolution": RESOLUTION,
        "n_poses": N_POSES,
        "verdicts": verdicts,
        "stats": checker.stats.as_dict(),
    }


def _generate() -> dict:
    return {
        "scenes": [
            _scene_trace(scene_seed, pose_seed, backend="scalar")
            for scene_seed, pose_seed in SCENES
        ]
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    assert FIXTURE.exists(), f"golden fixture missing: {FIXTURE}"
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("backend", ["scalar", "batch"])
@pytest.mark.parametrize("index", range(len(SCENES)))
def test_backend_reproduces_golden_trace(golden, index, backend):
    frozen = golden["scenes"][index]
    live = _scene_trace(frozen["scene_seed"], frozen["pose_seed"], backend)
    assert live["verdicts"] == frozen["verdicts"], (
        f"scene seed {frozen['scene_seed']} backend {backend}: verdicts diverged"
    )
    assert live["stats"] == frozen["stats"], (
        f"scene seed {frozen['scene_seed']} backend {backend}: stats diverged"
    )


def test_fixture_covers_all_scenes(golden):
    assert [
        (s["scene_seed"], s["pose_seed"]) for s in golden["scenes"]
    ] == list(SCENES)


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to overwrite the golden fixture")
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(_generate(), indent=2) + "\n")
    print(f"wrote {FIXTURE}")
