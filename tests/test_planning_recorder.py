"""Tests for the CD trace recorder."""

import numpy as np
import pytest

from repro.collision.checker import RobotEnvironmentChecker
from repro.env.octree import Octree
from repro.env.scene import Scene
from repro.geometry.aabb import AABB
from repro.planning.motion import FunctionMode
from repro.planning.recorder import CDTraceRecorder
from repro.robot.presets import planar_arm


@pytest.fixture(scope="module")
def world():
    scene = Scene(extent=4.0)
    scene.add_obstacle(AABB.from_min_max([0.7, -0.4, 0.0], [0.9, 0.4, 0.2]))
    octree = Octree.from_scene(scene, resolution=32)
    robot = planar_arm(2)
    checker = RobotEnvironmentChecker(robot, octree, motion_step=0.05)
    return robot, checker


FREE_A = np.array([np.pi, 0.0])  # pointing -x, away from the wall
FREE_B = np.array([np.pi - 0.4, 0.0])
BLOCKED = np.array([0.0, 0.0])  # straight through the wall


class TestSteer:
    def test_free_steer(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        assert recorder.steer(FREE_A, FREE_B)
        assert recorder.num_phases == 1
        phase = recorder.phases[0]
        assert phase.mode is FunctionMode.FEASIBILITY
        assert len(phase.motions) == 1

    def test_blocked_steer(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        assert not recorder.steer(FREE_A, BLOCKED)

    def test_label_recorded(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        recorder.steer(FREE_A, FREE_B, label="xyz")
        assert recorder.phases_by_label("xyz")


class TestFeasibility:
    def test_free_path(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        assert recorder.feasibility([FREE_A, FREE_B, FREE_A]) is None
        assert recorder.phases[0].mode is FunctionMode.FEASIBILITY
        assert len(recorder.phases[0].motions) == 2

    def test_reports_first_bad_segment(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        index = recorder.feasibility([FREE_A, FREE_B, BLOCKED, FREE_A])
        assert index == 1  # segment FREE_B -> BLOCKED collides first

    def test_short_path_trivially_feasible(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        assert recorder.feasibility([FREE_A]) is None
        assert recorder.num_phases == 0


class TestConnectivity:
    def test_first_free_target(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        found = recorder.connectivity(FREE_A, [BLOCKED, FREE_B, FREE_A])
        assert found == 1
        assert recorder.phases[0].mode is FunctionMode.CONNECTIVITY

    def test_none_when_all_blocked(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        assert recorder.connectivity(FREE_A, [BLOCKED]) is None

    def test_empty_targets(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        assert recorder.connectivity(FREE_A, []) is None
        assert recorder.num_phases == 0


class TestComplete:
    def test_per_motion_flags(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        flags = recorder.complete([(FREE_A, FREE_B), (FREE_A, BLOCKED)])
        assert flags == [False, True]
        assert recorder.phases[0].mode is FunctionMode.COMPLETE


class _ExplodingEngine:
    """Engine stub that fails the test if the recorder consults it."""

    name = "exploding"
    checker = None

    def answer(self, phase):
        raise AssertionError("degenerate input must not reach the engine")


class TestDegenerateInputs:
    """The documented contract: no work in -> trivial answer out, no phase
    recorded, engine and checker never consulted."""

    def _recorder(self, world):
        _, checker = world
        return CDTraceRecorder(checker, engine=_ExplodingEngine())

    def test_feasibility_short_path(self, world):
        recorder = self._recorder(world)
        assert recorder.feasibility([]) is None
        assert recorder.feasibility([FREE_A]) is None
        assert recorder.num_phases == 0
        assert recorder.answers == []

    def test_connectivity_no_targets(self, world):
        recorder = self._recorder(world)
        assert recorder.connectivity(FREE_A, []) is None
        assert recorder.num_phases == 0
        assert recorder.answers == []

    def test_complete_no_segments(self, world):
        recorder = self._recorder(world)
        assert recorder.complete([]) == []
        assert recorder.num_phases == 0
        assert recorder.answers == []

    def test_steer_always_records(self, world):
        # steer has no degenerate form: even a zero-length motion is a
        # real single-motion phase (two identical poses).
        _, checker = world
        recorder = CDTraceRecorder(checker)
        assert recorder.steer(FREE_A, FREE_A)
        assert recorder.num_phases == 1
        assert recorder.phases[0].motions[0].num_poses == 2

    @pytest.mark.parametrize("backend,engine_kind", [
        ("scalar", "sequential"),
        ("batch", "batch"),
        ("scalar", "simulated"),
    ])
    def test_contract_holds_across_engines(self, world, backend, engine_kind):
        from repro.planning.engine import make_engine

        robot, base_checker = world
        checker = RobotEnvironmentChecker(
            base_checker.robot, base_checker.octree, motion_step=0.05,
            backend=backend,
        )
        recorder = CDTraceRecorder(
            checker, engine=make_engine(engine_kind, checker)
        )
        assert recorder.feasibility([FREE_A]) is None
        assert recorder.connectivity(FREE_A, []) is None
        assert recorder.complete([]) == []
        assert recorder.num_phases == 0
        assert checker.stats.pose_checks == 0


class TestBookkeeping:
    def test_totals_and_clear(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker)
        recorder.steer(FREE_A, FREE_B)
        recorder.steer(FREE_A, FREE_B)
        assert recorder.total_motions == 2
        assert recorder.total_poses > 0
        recorder.clear()
        assert recorder.num_phases == 0

    def test_record_false_answers_without_recording(self, world):
        _, checker = world
        recorder = CDTraceRecorder(checker, record=False)
        assert recorder.steer(FREE_A, FREE_B)
        assert not recorder.steer(FREE_A, BLOCKED)
        assert recorder.num_phases == 0
